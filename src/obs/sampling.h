// Event-sampled timing. Reading a monotonic clock twice per SAX event
// costs more than the event itself (the recorded obs overhead was >100%
// of the bare pass); sampling every 2^shift-th event and scaling the
// measured duration back to the population makes the estimate cheap
// while staying unbiased for the long homogeneous event streams the
// pruning pipeline produces.

#ifndef XMLPROJ_OBS_SAMPLING_H_
#define XMLPROJ_OBS_SAMPLING_H_

#include <cstdint>

namespace xmlproj {

class SampledTimer {
 public:
  // Samples one event in 2^shift. The default (64 events per sample)
  // drops instrumentation cost to noise while still taking thousands of
  // samples on any document large enough for the timing to matter.
  static constexpr uint32_t kDefaultShift = 6;

  explicit SampledTimer(uint32_t shift = kDefaultShift)
      : shift_(shift), mask_((1u << shift) - 1) {}

  // True when the caller should time this event.
  bool Sample() { return (count_++ & mask_) == 0; }

  // Records one sampled duration, scaled to stand in for the whole
  // stride of events it represents.
  void Add(uint64_t ns) { elapsed_ns_ += ns << shift_; }

  uint64_t elapsed_ns() const { return elapsed_ns_; }
  uint64_t events() const { return count_; }

 private:
  uint32_t shift_;
  uint32_t mask_;
  uint64_t count_ = 0;
  uint64_t elapsed_ns_ = 0;
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_SAMPLING_H_
