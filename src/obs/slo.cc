#include "obs/slo.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace xmlproj {
namespace {

uint64_t WallNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

double BurnOf(uint64_t bad, uint64_t total, double objective) {
  if (total == 0) return 0;
  double budget = 1.0 - objective;
  if (budget <= 0) budget = 1e-9;  // a 100% objective: any failure burns hot
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void AppendDouble(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

// Workload ids are service-minted ("w-<hex>") or the literal "other",
// but escape quotes/backslashes anyway — the tracker is a library.
void AppendQuoted(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

SloTracker::SloTracker(const SloOptions& options) : options_(options) {}

uint64_t SloTracker::NowMs() const {
  return options_.now_ms != nullptr ? options_.now_ms() : WallNowMs();
}

void SloTracker::Record(const std::string& workload, uint64_t duration_ns,
                        bool error) {
  uint64_t minute = NowMs() / 60000;
  bool slow = duration_ns / 1000000 > options_.latency_threshold_ms;
  WindowBurn fast, slowwin;
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workloads_.find(workload);
    if (it == workloads_.end()) {
      // Bounded tenant set: past the cap, new workloads fold into
      // "other" rather than growing per-tenant state without limit.
      key = workloads_.size() < options_.max_workloads ? workload : "other";
      it = workloads_.try_emplace(key).first;
    } else {
      key = workload;
    }
    Bucket& bucket = it->second.ring[minute % kRingMinutes];
    if (bucket.minute != minute) {
      bucket = Bucket{};
      bucket.minute = minute;
    }
    ++bucket.requests;
    if (error) ++bucket.errors;
    if (slow) ++bucket.slow;
    if (options_.metrics != nullptr) {
      fast = BurnLocked(it->second, minute, 5);
      slowwin = BurnLocked(it->second, minute, 60);
    }
  }
  if (options_.metrics != nullptr) {
    // Gauges carry integers; burn rates ride in milli-units (1000 =
    // burning the budget exactly as fast as allowed).
    auto gauge = [&](const char* slo, const char* window, double burn) {
      options_.metrics
          ->GetGauge("xmlproj_slo_burn_milli",
                     {{"slo", slo}, {"window", window}, {"workload", key}})
          ->Set(static_cast<int64_t>(burn * 1000));
    };
    gauge("availability", "5m", fast.availability_burn);
    gauge("availability", "1h", slowwin.availability_burn);
    gauge("latency", "5m", fast.latency_burn);
    gauge("latency", "1h", slowwin.latency_burn);
  }
}

SloTracker::WindowBurn SloTracker::BurnLocked(const Workload& workload,
                                              uint64_t now_minute,
                                              uint64_t window_minutes) const {
  if (window_minutes > kRingMinutes) window_minutes = kRingMinutes;
  WindowBurn burn;
  for (uint64_t back = 0; back < window_minutes; ++back) {
    if (back > now_minute) break;
    uint64_t minute = now_minute - back;
    const Bucket& bucket = workload.ring[minute % kRingMinutes];
    if (bucket.minute != minute) continue;  // stale slot from a prior hour
    burn.requests += bucket.requests;
    burn.errors += bucket.errors;
    burn.slow += bucket.slow;
  }
  burn.availability_burn =
      BurnOf(burn.errors, burn.requests, options_.availability_objective);
  burn.latency_burn =
      BurnOf(burn.slow, burn.requests, options_.latency_objective);
  return burn;
}

SloTracker::WindowBurn SloTracker::Burn(const std::string& workload,
                                        uint64_t window_minutes) const {
  uint64_t minute = NowMs() / 60000;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workloads_.find(workload);
  if (it == workloads_.end()) return WindowBurn{};
  return BurnLocked(it->second, minute, window_minutes);
}

void SloTracker::AppendSloJson(std::string* out) const {
  uint64_t minute = NowMs() / 60000;
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"latency_threshold_ms\":");
  AppendU64(options_.latency_threshold_ms, out);
  out->append(",\"availability_objective\":");
  AppendDouble(options_.availability_objective, out);
  out->append(",\"latency_objective\":");
  AppendDouble(options_.latency_objective, out);
  out->append(",\"workloads\":[");
  bool first = true;
  for (const auto& [id, workload] : workloads_) {
    if (!first) out->push_back(',');
    first = false;
    out->append("\n    {\"workload\":");
    AppendQuoted(id, out);
    for (const auto& [label, minutes] :
         {std::pair<const char*, uint64_t>{"5m", 5}, {"1h", 60}}) {
      WindowBurn burn = BurnLocked(workload, minute, minutes);
      out->append(",\"");
      out->append(label);
      out->append("\":{\"requests\":");
      AppendU64(burn.requests, out);
      out->append(",\"errors\":");
      AppendU64(burn.errors, out);
      out->append(",\"slow\":");
      AppendU64(burn.slow, out);
      out->append(",\"availability_burn\":");
      AppendDouble(burn.availability_burn, out);
      out->append(",\"latency_burn\":");
      AppendDouble(burn.latency_burn, out);
      out->push_back('}');
    }
    out->push_back('}');
  }
  out->append(first ? "]}" : "\n  ]}");
}

}  // namespace xmlproj
