#include "obs/export.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string_view>

namespace xmlproj {
namespace {

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// JSON string escaping. Metric names are library-chosen identifiers, but
// labeled series keys embed the encoded label string, which contains `"`
// and may contain any byte a caller put in a label value.
void AppendQuoted(const std::string& name, std::string* out) {
  out->push_back('"');
  for (char c : name) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// JSON object key for one series: `name` unlabeled, `name{labels}` when
// labeled (the encoded labels are already Prometheus-escaped, which the
// JSON quoting above re-escapes safely).
void AppendSeriesKey(const std::string& name, const std::string& labels,
                     std::string* out) {
  if (labels.empty()) {
    AppendQuoted(name, out);
  } else {
    AppendQuoted(name + "{" + labels + "}", out);
  }
}

std::string PrometheusName(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return safe;
}

// `# HELP` escaping per the exposition format: backslash and newline
// only (quotes are not escaped in help text).
void AppendEscapedHelp(const std::string& help, std::string* out) {
  for (char c : help) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

// Emits the `# HELP` (if any) and `# TYPE` header once per family. The
// registry's ForEach* order groups a family's series contiguously, so a
// family change is simply a name change; the registry's kind guard
// ensures a name never reappears in another section.
class FamilyHeaderWriter {
 public:
  FamilyHeaderWriter(const char* type,
                     const std::map<std::string, std::string>* help,
                     std::string* out)
      : type_(type), help_(help), out_(out) {}

  // Returns the Prometheus-safe family name, emitting headers on change.
  const std::string& Begin(const std::string& name) {
    if (name != current_) {
      current_ = name;
      safe_ = PrometheusName(name);
      auto it = help_->find(name);
      if (it != help_->end()) {
        out_->append("# HELP ").append(safe_).push_back(' ');
        AppendEscapedHelp(it->second, out_);
        out_->push_back('\n');
      }
      out_->append("# TYPE ").append(safe_).push_back(' ');
      out_->append(type_);
      out_->push_back('\n');
    }
    return safe_;
  }

 private:
  const char* type_;
  const std::map<std::string, std::string>* help_;
  std::string* out_;
  std::string current_;
  std::string safe_;
};

// `name` or `name{labels}` — the series reference on a sample line.
void AppendSeriesRef(const std::string& safe_name, const std::string& labels,
                     std::string* out) {
  out->append(safe_name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
}

// Unit convention: histograms are integer-valued and recorded in
// nanoseconds, but a family named `*_seconds` is exported in base
// units — le bounds and _sum scaled by 1e-9 — so the scrape follows
// Prometheus naming rules (promtool-clean) while Record() stays a
// cheap integer path.
bool IsSecondsFamily(const std::string& name) {
  constexpr std::string_view kSuffix = "_seconds";
  return name.size() >= kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

void AppendSeconds(uint64_t ns, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(ns) * 1e-9);
  out->append(buf);
}

void AppendHistogramJson(const Histogram& hist, std::string* out) {
  char buf[48];
  out->append("{\"count\":");
  AppendU64(hist.Count(), out);
  out->append(",\"sum\":");
  AppendU64(hist.Sum(), out);
  out->append(",\"min\":");
  AppendU64(hist.Min(), out);
  out->append(",\"max\":");
  AppendU64(hist.Max(), out);
  std::snprintf(buf, sizeof(buf), ",\"mean\":%.3f", hist.Mean());
  out->append(buf);
  out->append(",\"p50\":");
  AppendU64(hist.ApproxPercentile(0.50), out);
  out->append(",\"p90\":");
  AppendU64(hist.ApproxPercentile(0.90), out);
  out->append(",\"p99\":");
  AppendU64(hist.ApproxPercentile(0.99), out);
  out->append(",\"buckets\":[");
  bool first = true;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    uint64_t n = hist.BucketCount(i);
    if (n == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"le\":");
    AppendU64(Histogram::BucketUpperBound(i), out);
    out->append(",\"count\":");
    AppendU64(n, out);
    out->push_back('}');
  }
  out->append("]}");
}

}  // namespace

void AppendMetricsJson(const MetricsRegistry& registry, std::string* out) {
  out->append("{\n  \"counters\": {");
  bool first = true;
  registry.ForEachCounter([&](const std::string& name,
                              const std::string& labels, const Counter& c) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendSeriesKey(name, labels, out);
    out->append(": ");
    AppendU64(c.Value(), out);
  });
  out->append(first ? "},\n" : "\n  },\n");

  out->append("  \"gauges\": {");
  first = true;
  registry.ForEachGauge([&](const std::string& name, const std::string& labels,
                            const Gauge& g) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendSeriesKey(name, labels, out);
    out->append(": ");
    AppendI64(g.Value(), out);
  });
  out->append(first ? "},\n" : "\n  },\n");

  out->append("  \"histograms\": {");
  first = true;
  registry.ForEachHistogram([&](const std::string& name,
                                const std::string& labels,
                                const Histogram& h) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendSeriesKey(name, labels, out);
    out->append(": ");
    AppendHistogramJson(h, out);
  });
  out->append(first ? "}\n" : "\n  }\n");
  out->append("}\n");
}

void AppendPrometheusText(const MetricsRegistry& registry, std::string* out) {
  const std::map<std::string, std::string> help = registry.HelpTexts();

  FamilyHeaderWriter counter_header("counter", &help, out);
  registry.ForEachCounter([&](const std::string& name,
                              const std::string& labels, const Counter& c) {
    const std::string& safe = counter_header.Begin(name);
    AppendSeriesRef(safe, labels, out);
    out->push_back(' ');
    AppendU64(c.Value(), out);
    out->push_back('\n');
  });

  FamilyHeaderWriter gauge_header("gauge", &help, out);
  registry.ForEachGauge([&](const std::string& name, const std::string& labels,
                            const Gauge& g) {
    const std::string& safe = gauge_header.Begin(name);
    AppendSeriesRef(safe, labels, out);
    out->push_back(' ');
    AppendI64(g.Value(), out);
    out->push_back('\n');
  });

  FamilyHeaderWriter hist_header("histogram", &help, out);
  registry.ForEachHistogram([&](const std::string& name,
                                const std::string& labels,
                                const Histogram& h) {
    const std::string& safe = hist_header.Begin(name);
    const bool seconds = IsSecondsFamily(safe);
    // A labeled `_bucket` line carries the series labels plus `le`.
    std::string bucket_prefix = safe + "_bucket{";
    if (!labels.empty()) {
      bucket_prefix.append(labels);
      bucket_prefix.push_back(',');
    }
    bucket_prefix.append("le=\"");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h.BucketCount(i);
      if (n == 0) continue;
      cumulative += n;
      out->append(bucket_prefix);
      if (seconds) {
        AppendSeconds(Histogram::BucketUpperBound(i), out);
      } else {
        AppendU64(Histogram::BucketUpperBound(i), out);
      }
      out->append("\"} ");
      AppendU64(cumulative, out);
      out->push_back('\n');
    }
    out->append(bucket_prefix).append("+Inf\"} ");
    AppendU64(h.Count(), out);
    out->push_back('\n');
    out->append(safe).append("_sum");
    if (!labels.empty()) {
      out->push_back('{');
      out->append(labels);
      out->push_back('}');
    }
    out->push_back(' ');
    if (seconds) {
      AppendSeconds(h.Sum(), out);
    } else {
      AppendU64(h.Sum(), out);
    }
    out->push_back('\n');
    out->append(safe).append("_count");
    if (!labels.empty()) {
      out->push_back('{');
      out->append(labels);
      out->push_back('}');
    }
    out->push_back(' ');
    AppendU64(h.Count(), out);
    out->push_back('\n');
  });
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool ok = written == content.size();
  return std::fclose(f) == 0 && ok;
}

bool AtomicWriteTextFile(const std::string& path, const std::string& content,
                         bool fsync_file, std::string* error) {
  auto fail = [&](const char* step) {
    if (error != nullptr) {
      *error = std::string(step) + " \"" + path + "\": " +
               std::strerror(errno);
    }
    return false;
  };
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "we");
  if (f == nullptr) return fail("cannot open temp for");
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                content.size() &&
            std::fflush(f) == 0;
  if (ok && fsync_file) ok = ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    return fail("cannot write temp for");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("cannot rename temp over");
  }
  if (fsync_file) {
    // Make the rename itself durable. Directory fsync is best-effort:
    // some filesystems reject it, and the data above is already synced.
    std::string dir = ".";
    size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) dir = path.substr(0, slash + 1);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
  }
  return true;
}

}  // namespace xmlproj
