#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace xmlproj {
namespace {

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendQuoted(const std::string& name, std::string* out) {
  // Metric names are library-chosen identifiers; they never contain
  // JSON-significant characters, so quoting suffices.
  out->push_back('"');
  out->append(name);
  out->push_back('"');
}

std::string PrometheusName(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return safe;
}

void AppendHistogramJson(const Histogram& hist, std::string* out) {
  char buf[48];
  out->append("{\"count\":");
  AppendU64(hist.Count(), out);
  out->append(",\"sum\":");
  AppendU64(hist.Sum(), out);
  out->append(",\"min\":");
  AppendU64(hist.Min(), out);
  out->append(",\"max\":");
  AppendU64(hist.Max(), out);
  std::snprintf(buf, sizeof(buf), ",\"mean\":%.3f", hist.Mean());
  out->append(buf);
  out->append(",\"p50\":");
  AppendU64(hist.ApproxPercentile(0.50), out);
  out->append(",\"p90\":");
  AppendU64(hist.ApproxPercentile(0.90), out);
  out->append(",\"p99\":");
  AppendU64(hist.ApproxPercentile(0.99), out);
  out->append(",\"buckets\":[");
  bool first = true;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    uint64_t n = hist.BucketCount(i);
    if (n == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"le\":");
    AppendU64(Histogram::BucketUpperBound(i), out);
    out->append(",\"count\":");
    AppendU64(n, out);
    out->push_back('}');
  }
  out->append("]}");
}

}  // namespace

void AppendMetricsJson(const MetricsRegistry& registry, std::string* out) {
  out->append("{\n  \"counters\": {");
  bool first = true;
  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(name, out);
    out->append(": ");
    AppendU64(c.Value(), out);
  });
  out->append(first ? "},\n" : "\n  },\n");

  out->append("  \"gauges\": {");
  first = true;
  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(name, out);
    out->append(": ");
    AppendI64(g.Value(), out);
  });
  out->append(first ? "},\n" : "\n  },\n");

  out->append("  \"histograms\": {");
  first = true;
  registry.ForEachHistogram([&](const std::string& name, const Histogram& h) {
    out->append(first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(name, out);
    out->append(": ");
    AppendHistogramJson(h, out);
  });
  out->append(first ? "}\n" : "\n  }\n");
  out->append("}\n");
}

void AppendPrometheusText(const MetricsRegistry& registry, std::string* out) {
  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    std::string safe = PrometheusName(name);
    out->append("# TYPE ").append(safe).append(" counter\n");
    out->append(safe).push_back(' ');
    AppendU64(c.Value(), out);
    out->push_back('\n');
  });
  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    std::string safe = PrometheusName(name);
    out->append("# TYPE ").append(safe).append(" gauge\n");
    out->append(safe).push_back(' ');
    AppendI64(g.Value(), out);
    out->push_back('\n');
  });
  registry.ForEachHistogram([&](const std::string& name, const Histogram& h) {
    std::string safe = PrometheusName(name);
    out->append("# TYPE ").append(safe).append(" histogram\n");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h.BucketCount(i);
      if (n == 0) continue;
      cumulative += n;
      out->append(safe).append("_bucket{le=\"");
      AppendU64(Histogram::BucketUpperBound(i), out);
      out->append("\"} ");
      AppendU64(cumulative, out);
      out->push_back('\n');
    }
    out->append(safe).append("_bucket{le=\"+Inf\"} ");
    AppendU64(h.Count(), out);
    out->push_back('\n');
    out->append(safe).append("_sum ");
    AppendU64(h.Sum(), out);
    out->push_back('\n');
    out->append(safe).append("_count ");
    AppendU64(h.Count(), out);
    out->push_back('\n');
  });
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool ok = written == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace xmlproj
