// Persistent run journal: one JSONL record per pipeline run, appended at
// run end and loaded at startup.
//
// The obs stack so far evaporates with the process: metrics live while
// something scrapes them (obs/server.h) or pushes them (obs/push.h), but
// nothing remembers *previous* runs. The journal is that memory — an
// append-only `journal.jsonl` in an operator-chosen directory, each line
// a self-contained RunRecord: run identity, wall-times, corpus label,
// the PipelineSummary fold, peak per-task metered memory, budget trips,
// and a quarantine digest (failures per stage).
//
// Two consumers read it back:
//  - SuggestBudgets(): auto-tunes the per-task byte budget from the p99
//    of prior runs' peak memory (the ROADMAP's budget-auto-tuning item) —
//    a corpus the service has seen before gets a cap that real behavior
//    justifies instead of a guess.
//  - the circuit breaker (common/circuit.h): seeds its failure window
//    from the most recent record, so a corpus that was failing when the
//    last process died starts degraded instead of naively closed.
//
// Robustness contract: a half-written final line (crash mid-append) or a
// corrupted line must never poison startup — Load() skips unparseable
// lines and reports how many it skipped. Like everything in obs/ this
// file is standard library + POSIX only (no common/status.h — obs sits
// below common in the link order), so errors are bool + message.

#ifndef XMLPROJ_OBS_JOURNAL_H_
#define XMLPROJ_OBS_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xmlproj {

// One pipeline run, as remembered across processes.
struct RunRecord {
  std::string run_id;        // unique per run; see GenerateRunId()
  std::string corpus;        // PipelineOptions::corpus_label ("" = none)
  uint64_t start_unix_ms = 0;
  uint64_t end_unix_ms = 0;
  double wall_seconds = 0;   // PipelineSummary::wall_seconds

  // PipelineSummary fold (completed tasks; `failed` = quarantined).
  uint64_t tasks = 0;
  uint64_t failed = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;

  // Resource accounting for budget auto-tuning: the largest per-task
  // metered peak (xmlproj_memory_peak_bytes) and how many tasks tripped
  // a budget (kResourceExhausted + kDeadlineExceeded).
  uint64_t peak_memory_bytes = 0;
  uint64_t budget_trips = 0;

  // Resume outcome (checkpoint-bearing runs; both 0 otherwise): tasks
  // settled by a prior interrupted run and skipped here, and tasks this
  // process actually executed. A resumed run's `tasks` still counts the
  // whole corpus — these two record how the work split across processes.
  uint64_t resume_skipped = 0;
  uint64_t resume_rerun = 0;

  // Quarantine digest: failures per pipeline stage ("parse", "budget",
  // "circuit", ...), sorted by stage name.
  std::vector<std::pair<std::string, uint64_t>> quarantine;
};

// Time-and-pid run id, e.g. "run-018f3c2a7b1-1a2b" — unique enough for a
// journal that one process appends to at a time.
std::string GenerateRunId();

// Append side. One journal = one `journal.jsonl` inside `dir`.
class RunJournal {
 public:
  RunJournal() = default;
  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  // Creates `dir` if missing (one level) and opens `dir`/journal.jsonl
  // for appending. False with a description in *error.
  bool Open(const std::string& dir, std::string* error);

  // Appends one record as a single JSON line and flushes it to the OS,
  // so a crash after Append never loses the record.
  bool Append(const RunRecord& record, std::string* error);

  // When true, Append also fsync()s so the record survives power loss,
  // not just process death. Off by default (the journal is advisory for
  // plain runs); checkpoint-bearing runs turn it on — a journal that
  // contradicts a durable checkpoint is worse than a missing line.
  void set_fsync(bool fsync) { fsync_ = fsync; }

  const std::string& path() const { return path_; }

  // The file a journal directory maps to (what Open and Load use).
  static std::string PathFor(const std::string& dir);

  // One record as its JSON line (no trailing newline); exposed for tests.
  static std::string FormatRecord(const RunRecord& record);

  // Parses one line. False (out untouched beyond partial writes) on any
  // malformed, truncated, or wrong-shape input.
  static bool ParseRecord(std::string_view line, RunRecord* out);

  // Loads every parseable record from `dir`/journal.jsonl in file order.
  // Corrupt or truncated lines are skipped and counted into
  // *skipped_lines (nullable). A missing journal file is not an error —
  // it loads zero records (first run). False only when the file exists
  // but cannot be read.
  static bool Load(const std::string& dir, std::vector<RunRecord>* records,
                   size_t* skipped_lines, std::string* error);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool fsync_ = false;
};

// Budget auto-tuning from journal history (--auto-budget).
struct BudgetSuggestion {
  // Records that carried a nonzero peak (the sample set). 0 = no history
  // → no suggestion (suggested_max_bytes stays 0 = unlimited).
  size_t runs = 0;
  uint64_t p99_peak_bytes = 0;
  // p99 peak × headroom: the per-task byte cap to run with.
  uint64_t suggested_max_bytes = 0;
};

// Suggests a per-task byte budget: the p99 of `records`' nonzero
// peak_memory_bytes, scaled by `headroom` (caps sized to exactly the
// observed peak would trip on the first slightly-larger document).
// When `corpus` is non-empty only records with that corpus label are
// considered — budgets are corpus-shaped, a 100-byte config corpus must
// not tune the cap for a 100 MB document corpus.
BudgetSuggestion SuggestBudgets(const std::vector<RunRecord>& records,
                                std::string_view corpus = {},
                                double headroom = 1.5);

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_JOURNAL_H_
