// Leveled, rate-limited, one-line-JSON structured logging.
//
// The daemon's log plane: every line is a single JSON object
// (`{"ts_unix_ms":...,"level":"info","event":"http.access",...}`) so
// logs grep/jq-join against the run journal, the OTLP exports, and
// /tracez by trace_id and workload. Standard library only, same
// escaping discipline as the journal writer (obs/journal.cc).
//
// Call sites hold a nullable StructuredLogger* and follow the
// null-pointer idiom of every other instrumentation hook: a null
// logger costs one pointer compare, an off-level line one enum
// compare — no formatting, no lock.
//
// Rate limiting is a per-second budget: past
// `max_lines_per_second` within one wall-clock second, lines are
// dropped and counted; the first line of the next second is preceded
// by a `log.dropped` summary so the gap is visible in the stream
// itself. Error-level lines bypass the limiter — an error burst is
// exactly what the log is for.

#ifndef XMLPROJ_OBS_LOG_H_
#define XMLPROJ_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace xmlproj {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// "debug" | "info" | "warn" | "error" → level; false on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);
const char* LogLevelName(LogLevel level);

// One key/value on a log line. Values are strings or 64-bit integers —
// the two shapes every consumer (jq, grep, a log pipeline) handles
// without schema negotiation.
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), text(v), is_text(true) {}
  LogField(std::string_view k, const char* v)
      : key(k), text(v), is_text(true) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), text(v), is_text(true) {}
  LogField(std::string_view k, int64_t v) : key(k), number(v) {}
  LogField(std::string_view k, uint64_t v)
      : key(k), number(static_cast<int64_t>(v)) {}
  LogField(std::string_view k, int v) : key(k), number(v) {}

  std::string_view key;
  std::string_view text;
  int64_t number = 0;
  bool is_text = false;
};

struct StructuredLoggerOptions {
  LogLevel min_level = LogLevel::kInfo;
  // Lines per wall-clock second before dropping (error lines exempt);
  // 0 disables the limiter.
  uint64_t max_lines_per_second = 1000;
};

class StructuredLogger {
 public:
  StructuredLogger() = default;
  ~StructuredLogger() { Close(); }
  StructuredLogger(const StructuredLogger&) = delete;
  StructuredLogger& operator=(const StructuredLogger&) = delete;

  // Opens the destination: "stderr" (never closed) or a file path
  // (append mode, O_CLOEXEC). False with a description on failure.
  bool Open(const std::string& destination,
            const StructuredLoggerOptions& options, std::string* error);
  bool Open(const std::string& destination, std::string* error) {
    return Open(destination, StructuredLoggerOptions{}, error);
  }

  // Emits one line. Below min_level: one comparison and out. Fields
  // with empty keys are skipped; "ts_unix_ms", "level" and "event" are
  // reserved keys the logger itself writes.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  // The call-site fast path: lock-free, so a disabled level costs two
  // relaxed loads and nothing else.
  bool enabled(LogLevel level) const {
    return open_.load(std::memory_order_relaxed) &&
           static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  uint64_t lines_written() const;
  uint64_t lines_dropped() const;

  // Flushes and closes a file destination (stderr stays open).
  // Idempotent; Open may be called again after.
  void Close();

 private:
  std::atomic<bool> open_{false};
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  StructuredLoggerOptions options_;
  mutable std::mutex mu_;
  uint64_t window_second_ = 0;   // wall-clock second of the open window
  uint64_t window_lines_ = 0;    // lines emitted in the window
  uint64_t window_dropped_ = 0;  // lines dropped in the window
  uint64_t written_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_LOG_H_
