// Exporters for MetricsRegistry snapshots: a JSON document (machine
// consumption, bench trajectories) and Prometheus text exposition format
// (scrapers). Both walk the registry under its lock reading relaxed
// atomics — values are per-metric consistent, not a cross-metric
// snapshot, which is the usual contract for pull-based metrics.
//
// Like the rest of obs/, this depends only on the standard library;
// file-write failures are reported as bool, not Status.

#ifndef XMLPROJ_OBS_EXPORT_H_
#define XMLPROJ_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace xmlproj {

// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
// mean,p50,p90,p99,buckets:[{"le":N,"count":N},...]}}} — buckets with a
// zero count are omitted. Labeled series key as `name{k="v",...}` (the
// canonical EncodeMetricLabels form, JSON-escaped).
void AppendMetricsJson(const MetricsRegistry& registry, std::string* out);

// Prometheus text format: `# HELP` (when set, exposition-escaped) and
// `# TYPE` exactly once per family, counters/gauges as
// `<name>[{labels}] <value>`, histograms as cumulative
// `_bucket{[labels,]le="..."}` series with a `+Inf` bucket plus
// `_sum`/`_count`. Label values are escaped at registration time (see
// EncodeMetricLabels). Metric names are expected to already be
// Prometheus-safe ([a-zA-Z0-9_:]); any other character is rewritten
// to '_'.
void AppendPrometheusText(const MetricsRegistry& registry, std::string* out);

// Convenience for tools: writes `content` to `path`, false on any error.
bool WriteTextFile(const std::string& path, const std::string& content);

// Crash-safe variant: writes `content` to `path + ".tmp"`, optionally
// fsyncs it, then renames over `path` — a reader (or a post-crash
// resume) never sees a torn file, only the old content or the new.
// With `fsync_file` the data is durable before the rename, and the
// parent directory is fsynced after it (best effort — some filesystems
// refuse directory fsync). On failure the temp file is unlinked and
// *error (nullable) describes the failing step.
bool AtomicWriteTextFile(const std::string& path, const std::string& content,
                         bool fsync_file, std::string* error);

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_EXPORT_H_
