#include "obs/metrics.h"

namespace xmlproj {

uint64_t Histogram::ApproxPercentile(double p) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target sample, 1-based rounding up (the median of three
  // samples is the second); p=1 maps onto the last sample.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (static_cast<double>(rank) < p * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += BucketCount(i);
    if (seen >= rank) {
      // Clamp the bucket bound into the observed range so the estimate
      // never exceeds the true max (the top bucket can be very wide).
      uint64_t bound = BucketUpperBound(i);
      uint64_t max = Max();
      return bound < max ? bound : max;
    }
  }
  return Max();
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  if (other.Count() != 0) {
    AtomicMin(&min_, other.min_.load(std::memory_order_relaxed));
    AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
  }
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  if (&other == this) return;  // self-merge would deadlock on mu_
  other.ForEachCounter([this](const std::string& name, const Counter& c) {
    GetCounter(name)->MergeFrom(c);
  });
  other.ForEachGauge([this](const std::string& name, const Gauge& g) {
    GetGauge(name)->MergeFrom(g);
  });
  other.ForEachHistogram([this](const std::string& name, const Histogram& h) {
    GetHistogram(name)->MergeFrom(h);
  });
}

}  // namespace xmlproj
