#include "obs/metrics.h"

#include <algorithm>

namespace xmlproj {

uint64_t Histogram::ApproxPercentile(double p) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target sample, 1-based rounding up (the median of three
  // samples is the second); p=1 maps onto the last sample.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (static_cast<double>(rank) < p * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += BucketCount(i);
    if (seen >= rank) {
      // Clamp the bucket bound into the observed range so the estimate
      // never exceeds the true max (the top bucket can be very wide).
      uint64_t bound = BucketUpperBound(i);
      uint64_t max = Max();
      return bound < max ? bound : max;
    }
  }
  return Max();
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  if (other.Count() != 0) {
    AtomicMin(&min_, other.min_.load(std::memory_order_relaxed));
    AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
  }
}

void AppendEscapedLabelValue(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

std::string EncodeMetricLabels(const MetricLabels& labels) {
  if (labels.empty()) return std::string();
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricLabel& a, const MetricLabel& b) {
              return a.key < b.key;
            });
  std::string out;
  for (const MetricLabel& label : sorted) {
    if (!out.empty()) out.push_back(',');
    out.append(label.key);
    out.append("=\"");
    AppendEscapedLabelValue(label.value, &out);
    out.push_back('"');
  }
  return out;
}

namespace {

// The collapsed label set past the cardinality bound: same keys, every
// value replaced by "other", so the overflow series still parses with the
// family's expected label keys.
std::string OverflowEncoding(const MetricLabels& labels) {
  MetricLabels collapsed = labels;
  for (MetricLabel& label : collapsed) label.value = "other";
  return EncodeMetricLabels(collapsed);
}

// Same collapse, starting from an already-encoded label string (the
// MergeFrom path, where the MetricLabels are gone). Values are escaped,
// so an unescaped `"` terminates a value unambiguously.
std::string CollapseEncodedLabels(const std::string& encoded) {
  std::string out;
  size_t i = 0;
  while (i < encoded.size()) {
    size_t eq = encoded.find("=\"", i);
    if (eq == std::string::npos) break;
    if (!out.empty()) out.push_back(',');
    out.append(encoded, i, eq - i);
    out.append("=\"other\"");
    // Skip the escaped value up to its closing quote.
    size_t j = eq + 2;
    while (j < encoded.size() && encoded[j] != '"') {
      j += (encoded[j] == '\\') ? 2 : 1;
    }
    i = j + 1;
    if (i < encoded.size() && encoded[i] == ',') ++i;
  }
  return out;
}

}  // namespace

template <typename M>
M* MetricsRegistry::GetMetricEncoded(
    std::map<std::string, Family<M>, std::less<>>* families,
    const std::string& name, const std::string& labels, Kind kind,
    bool exempt_from_bound) {
  // Caller holds mu_.
  auto [kind_it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && kind_it->second != kind) {
    kind_conflicts_.fetch_add(1, std::memory_order_relaxed);
    assert(false && "metric name re-registered with a different kind");
    return nullptr;
  }
  Family<M>& family = (*families)[name];
  auto it = family.series.find(labels);
  if (it != family.series.end()) return it->second.get();
  bool counted = !labels.empty() && !exempt_from_bound;
  if (counted && family.labeled_series >= kMaxLabeledSeries) {
    return nullptr;  // caller retries with the overflow encoding
  }
  it = family.series.emplace(labels, std::make_unique<M>()).first;
  if (counted) ++family.labeled_series;
  return it->second.get();
}

template <typename M>
M* MetricsRegistry::GetMetric(
    std::map<std::string, Family<M>, std::less<>>* families,
    std::string_view name, const MetricLabels& labels, Kind kind) {
  std::string encoded = EncodeMetricLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::string name_str(name);
  M* metric = GetMetricEncoded(families, name_str, encoded, kind);
  if (metric == nullptr && !encoded.empty()) {
    // Either a kind conflict (the retry hits the same conflict and stays
    // null) or the family hit the cardinality bound — fold onto the
    // all-"other" overflow series, which lives outside the per-family
    // budget so the fold always lands.
    metric = GetMetricEncoded(families, name_str, OverflowEncoding(labels),
                              kind, /*exempt_from_bound=*/true);
  }
  return metric;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetMetric(&counters_, name, {}, Kind::kCounter);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetMetric(&gauges_, name, {}, Kind::kGauge);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetMetric(&histograms_, name, {}, Kind::kHistogram);
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const MetricLabels& labels) {
  return GetMetric(&counters_, name, labels, Kind::kCounter);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const MetricLabels& labels) {
  return GetMetric(&gauges_, name, labels, Kind::kGauge);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const MetricLabels& labels) {
  return GetMetric(&histograms_, name, labels, Kind::kHistogram);
}

void MetricsRegistry::SetHelp(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[std::string(name)] = std::string(help);
}

std::map<std::string, std::string> MetricsRegistry::HelpTexts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {help_.begin(), help_.end()};
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  if (&other == this) return;  // self-merge would deadlock on mu_
  // Shared find-or-create for the merge path: if the destination family
  // is at its cardinality bound, the source series folds into the
  // all-"other" overflow series rather than being dropped.
  auto resolve = [this](auto* families, const std::string& name,
                        const std::string& labels, Kind kind) -> auto* {
    auto* metric = GetMetricEncoded(families, name, labels, kind);
    if (metric == nullptr && !labels.empty()) {
      metric = GetMetricEncoded(families, name, CollapseEncodedLabels(labels),
                                kind, /*exempt_from_bound=*/true);
    }
    return metric;
  };
  other.ForEachCounter([&](const std::string& name, const std::string& labels,
                           const Counter& c) {
    std::lock_guard<std::mutex> lock(mu_);
    Counter* mine = resolve(&counters_, name, labels, Kind::kCounter);
    if (mine != nullptr) mine->MergeFrom(c);
  });
  other.ForEachGauge([&](const std::string& name, const std::string& labels,
                         const Gauge& g) {
    std::lock_guard<std::mutex> lock(mu_);
    Gauge* mine = resolve(&gauges_, name, labels, Kind::kGauge);
    if (mine != nullptr) mine->MergeFrom(g);
  });
  other.ForEachHistogram([&](const std::string& name,
                             const std::string& labels, const Histogram& h) {
    std::lock_guard<std::mutex> lock(mu_);
    Histogram* mine = resolve(&histograms_, name, labels, Kind::kHistogram);
    if (mine != nullptr) mine->MergeFrom(h);
  });
  for (const auto& [name, help] : other.HelpTexts()) {
    SetHelp(name, help);
  }
}

std::string_view XmlprojVersion() { return "0.7.0"; }

std::string_view XmlprojCompiler() {
#if defined(__clang_version__)
  return "clang " __clang_version__;
#elif defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

void RegisterBuildInfo(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->SetHelp("xmlproj_build_info",
                    "Build identity (value is always 1).");
  Gauge* gauge = registry->GetGauge(
      "xmlproj_build_info",
      {{"version", std::string(XmlprojVersion())},
       {"compiler", std::string(XmlprojCompiler())}});
  if (gauge != nullptr) gauge->Set(1);
}

}  // namespace xmlproj
