// Embedded observability HTTP server: a background thread serving the
// live MetricsRegistry / TraceCollector over plain HTTP while a pipeline
// run is in flight. Built on the reusable loopback HTTP core
// (common/http/http.h) and bound to 127.0.0.1: this is an operator
// scrape surface, not an internet-facing service.
//
// Endpoints:
//   /metrics       Prometheus text exposition (version 0.0.4)
//   /metrics.json  the obs/export.h JSON document
//   /healthz       liveness + failure/degradation counters (JSON)
//   /statusz       pipeline progress: task counts, bytes, stage
//                  latencies, pool state, uptime (JSON)
//   /tracez        most recent sampled trace spans (JSON)
//
// The endpoints only read: relaxed-atomic metric values under the
// registry's iteration lock, never blocking the hot path beyond what an
// exporter already does. With no server started, instrumented code does
// zero additional socket or clock work — the server is an observer, not
// a participant.
//
// Two deployment shapes:
//  - ObsServer: the standalone scrape server (what the pipeline tool's
//    --serve-metrics runs) — owns an HttpServer with the routes above.
//  - MountObsEndpoints(): registers the same routes onto a router the
//    caller owns, so a service daemon (service/service.h) serves its
//    data plane and this observability plane from one port.

#ifndef XMLPROJ_OBS_SERVER_H_
#define XMLPROJ_OBS_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/http/http.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace xmlproj {

struct ObsServerOptions {
  // TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back from
  // ObsServer::port() after Start).
  uint16_t port = 0;
  // Metrics source; must outlive the server. Required.
  const MetricsRegistry* registry = nullptr;
  // Span source for /tracez; optional (null serves an empty span list).
  // /tracez accepts ?trace_id=<32 hex> and ?workload=<id> filters,
  // applied before the max_spans cut.
  const TraceCollector* trace = nullptr;
  // Per-workload SLO burn rates; optional. When set, /statusz gains an
  // "slo" block (objectives plus 5m/1h burn per workload).
  const SloTracker* slo = nullptr;
  // Upper bound on spans returned by /tracez (most recent first dropped
  // counts reported in the payload).
  size_t tracez_max_spans = 256;
  // Live circuit-breaker state for /healthz, as the CircuitState integer
  // (0=closed, 1=half-open, 2=open). A callback rather than a breaker
  // pointer because obs/ sits below common/ (where common/circuit.h
  // lives) in the link order — wire it as
  //   options.circuit_state = [&breaker] { return breaker.state_int(); };
  // With a callback attached /healthz reports the real state machine:
  // status ok/degraded/open following the breaker, HTTP 503 while open
  // so load balancers can act on it. Without one (the default) /healthz
  // keeps the counter-derived heuristic and always returns 200.
  std::function<int()> circuit_state;
};

// Registers the observability endpoints (/metrics, /metrics.json,
// /healthz, /statusz, /tracez) on `server`, which must not have been
// started yet. `options.port` is ignored — the owning router decides
// where to listen. Uptime is measured from the mount. The borrowed
// registry/trace pointers must outlive the server.
void MountObsEndpoints(HttpServer* server, const ObsServerOptions& options);

class ObsServer {
 public:
  ObsServer() = default;
  ~ObsServer() { Stop(); }
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  // Binds, listens, and launches the serving thread. False on any
  // failure (port in use, no registry, ...) with a description in
  // `*error`; the server is then inert and Start may be retried.
  bool Start(const ObsServerOptions& options, std::string* error);

  // Stops the serving threads promptly: the HTTP core's self-pipe wakes
  // every blocked socket wait immediately, so shutdown latency is not
  // floored by a poll interval. Idempotent.
  void Stop();

  bool running() const { return http_.running(); }
  // The bound port (the chosen one when options.port was 0); 0 before
  // a successful Start.
  uint16_t port() const { return http_.port(); }
  // Requests answered since Start (any status code).
  uint64_t requests_served() const { return http_.requests_served(); }

 private:
  HttpServer http_;
  bool mounted_ = false;  // routes registered (Start may be retried)
};

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:<port> (the scrape
// client used by tests and the bench self-scrape; also handy in tools).
// On success fills `*status_line` (e.g. "HTTP/1.1 200 OK") and `*body`,
// true. False on connect/send/recv failure, after `timeout_ms`, or once
// the response exceeds `max_response_bytes` — a misbehaving server must
// not OOM the caller. Thin wrapper over HttpCall (common/http/http.h),
// which the service client library builds on too.
bool HttpGet(uint16_t port, const std::string& path, std::string* status_line,
             std::string* body, int timeout_ms = 5000,
             size_t max_response_bytes = 64u << 20);

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_SERVER_H_
