// Per-workload SLO tracking with multi-window burn rates.
//
// Two objectives per workload, SRE-style:
//   availability — at most (1 - availability_objective) of requests may
//     fail server-side (HTTP 5xx);
//   latency — at most (1 - latency_objective) of requests may run
//     slower than latency_threshold_ms.
// For each objective the tracker reports the *burn rate* over a fast
// (5 min) and a slow (60 min) window: bad_fraction / error_budget,
// so 1.0 means "spending the budget exactly as fast as allowed",
// 14.4 on the fast window is the classic page-now threshold. The pair
// of windows is what makes the signal actionable — the fast window
// catches a new regression in minutes, the slow window holds the alarm
// until a real fraction of the monthly budget is gone.
//
// Mechanics: one ring of 60 one-minute buckets per workload
// ({requests, errors, slow} counters), folded to a bounded workload set
// ("other" past max_workloads — same cardinality discipline as the
// metric labels). Record() is a mutex + ring-slot update plus, when a
// MetricsRegistry is attached, a refresh of that workload's four
// xmlproj_slo_burn_milli gauges. AppendSloJson() renders the /statusz
// "slo" block.

#ifndef XMLPROJ_OBS_SLO_H_
#define XMLPROJ_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace xmlproj {

struct SloOptions {
  // A request slower than this burns latency budget.
  uint64_t latency_threshold_ms = 250;
  // Objectives as fractions of good requests (budget = 1 - objective).
  double availability_objective = 0.999;
  double latency_objective = 0.99;
  // Distinct workloads tracked before folding to "other".
  size_t max_workloads = 32;
  // Optional: burn-rate gauges (milli-units) land here.
  MetricsRegistry* metrics = nullptr;
  // Injectable clock for tests (unix ms); null uses the wall clock.
  uint64_t (*now_ms)() = nullptr;
};

class SloTracker {
 public:
  SloTracker() : SloTracker(SloOptions{}) {}
  explicit SloTracker(const SloOptions& options);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Folds one finished request into its workload's current minute
  // bucket. `error` means a server-side failure (5xx) — client errors
  // do not burn availability budget, mirroring the circuit breaker's
  // admission rule.
  void Record(const std::string& workload, uint64_t duration_ns, bool error);

  // Burn rates for one workload over one window.
  struct WindowBurn {
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
    double availability_burn = 0;  // error fraction / availability budget
    double latency_burn = 0;       // slow fraction / latency budget
  };
  // `window_minutes` is clamped to the 60-minute ring.
  WindowBurn Burn(const std::string& workload, uint64_t window_minutes) const;

  // The /statusz "slo" block: objectives plus per-workload 5m/60m
  // burn rates and counts.
  void AppendSloJson(std::string* out) const;

  const SloOptions& options() const { return options_; }

 private:
  static constexpr size_t kRingMinutes = 60;
  struct Bucket {
    uint64_t minute = 0;  // unix minute this slot currently holds
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
  };
  struct Workload {
    Bucket ring[kRingMinutes];
  };

  uint64_t NowMs() const;
  // Sums the last `window_minutes` buckets ending at `now_minute`.
  WindowBurn BurnLocked(const Workload& workload, uint64_t now_minute,
                        uint64_t window_minutes) const;

  const SloOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Workload> workloads_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_SLO_H_
