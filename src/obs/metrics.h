// Observability primitives: counters, gauges, and latency histograms,
// collected in a MetricsRegistry and exported via obs/export.h.
//
// The paper's value proposition is quantitative — pruning ratios
// (Table 1), query time (Fig. 4), peak memory (Fig. 5) — so the pipeline
// publishes those quantities as first-class metrics instead of ad-hoc
// printf. Design constraints, in order:
//
//  - ~zero cost when disabled: every instrumentation site takes a nullable
//    pointer; a null registry/metric skips even the clock read.
//  - lock-cheap on the hot path: Counter is sharded across cache lines
//    (each thread owns a shard index), Gauge/Histogram use relaxed
//    atomics; only registration (name -> metric lookup) takes a mutex,
//    and callers are expected to resolve metrics once, outside loops.
//  - mergeable: counters and histograms add, gauges take the max (the
//    only gauges we merge are peaks). This lets per-shard or per-run
//    registries fold into one.
//
// This library deliberately depends on nothing but the C++ standard
// library (not even common/status.h), so lower layers such as
// common/thread_pool.h can report into it without a dependency cycle.

#ifndef XMLPROJ_OBS_METRICS_H_
#define XMLPROJ_OBS_METRICS_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xmlproj {

// Monotonic nanoseconds (steady_clock). The single time base for all
// metrics and trace timestamps.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Monotonically increasing counter, sharded to keep concurrent Increment
// calls off each other's cache lines.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void MergeFrom(const Counter& other) { Increment(other.Value()); }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  // Threads round-robin onto shards once, at first use.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
  }

  Shard shards_[kShards];
};

// Point-in-time signed value (queue depth, worker count, peak bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }

  // Raises the gauge to `v` if below it (peak tracking).
  void SetMax(int64_t v) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (current < v &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  // Merging keeps the larger reading: the gauges this library merges are
  // peaks (queue depth, memory), where max is the meaningful fold.
  void MergeFrom(const Gauge& other) { SetMax(other.Value()); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram over non-negative values (latencies in ns, byte
// sizes). Bucket i counts values whose bit width is i, i.e. bucket 0 is
// exactly {0} and bucket i>0 spans [2^(i-1), 2^i - 1] — boundaries are
// compile-time fixed, so any two histograms merge bucket-by-bucket.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit widths 0..64

  Histogram() {
    min_.store(UINT64_MAX, std::memory_order_relaxed);
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min/Max are 0 while the histogram is empty.
  uint64_t Min() const {
    uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Inclusive upper bound of bucket i (0, 1, 3, 7, ..., UINT64_MAX).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  static size_t BucketIndex(uint64_t value) {
    size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width;
  }

  // Upper bound of the bucket containing the p-quantile (p in [0,1]); the
  // usual fixed-bucket estimate, exact enough for p50/p90/p99 summaries.
  uint64_t ApproxPercentile(double p) const;

  void MergeFrom(const Histogram& other);

 private:
  static void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t current = slot->load(std::memory_order_relaxed);
    while (v < current &&
           !slot->compare_exchange_weak(current, v,
                                        std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t current = slot->load(std::memory_order_relaxed);
    while (v > current &&
           !slot->compare_exchange_weak(current, v,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_{0};
};

// One label dimension on a metric series, e.g. {"query_id", "3"}. A
// family (one metric name) can hold many labeled series plus the plain
// unlabeled one; see MetricsRegistry below for the cardinality bound.
struct MetricLabel {
  std::string key;
  std::string value;
};
using MetricLabels = std::vector<MetricLabel>;

// Canonical encoded form of a label set: `k1="v1",k2="v2"`, sorted by
// key, values escaped per the Prometheus text exposition rules (`\\`,
// `\"`, `\n`). The encoding is both the registry's series identity and
// the exact byte sequence exporters splice between `{` and `}`.
std::string EncodeMetricLabels(const MetricLabels& labels);

// Escapes one label value (`\` -> `\\`, `"` -> `\"`, newline -> `\n`).
void AppendEscapedLabelValue(std::string_view value, std::string* out);

// Named metrics, one instance per pipeline run / process / shard.
// Get* registers on first use and returns a stable pointer; resolve once
// and hold the pointer across the hot loop. All methods are thread-safe.
//
// Labels: the Get* overloads taking MetricLabels return the series for
// that exact label set inside the family `name`. Labeled lookups cost a
// mutex + map probe, so they belong at task granularity, never inside a
// SAX loop; the unlabeled overloads are unchanged and unlabeled series
// pay nothing for the label machinery. Cardinality is bounded per
// family: past kMaxLabeledSeries distinct label sets, further lookups
// collapse onto one overflow series whose label values are all "other"
// — a scrape can never grow without bound no matter how many distinct
// query ids a long-lived deployment sees.
//
// A metric name belongs to exactly one kind: asking for `name` as a
// counter after it was registered as a gauge (or vice versa) is a bug in
// the caller — it asserts in debug builds and returns nullptr in release
// builds (every instrumentation site already treats a null handle as
// "disabled", so the mismatch disables the site instead of aliasing two
// unrelated metrics). Histogram bucket layout is compile-time fixed
// (Histogram::kBuckets), so there is no layout to mismatch.
class MetricsRegistry {
 public:
  // Distinct labeled series allowed per family before overflow folding.
  static constexpr size_t kMaxLabeledSeries = 64;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  Counter* GetCounter(std::string_view name, const MetricLabels& labels);
  Gauge* GetGauge(std::string_view name, const MetricLabels& labels);
  Histogram* GetHistogram(std::string_view name, const MetricLabels& labels);

  // Attaches `# HELP` text to a family (exported ahead of its `# TYPE`
  // line, with exposition-format escaping). Idempotent; last write wins.
  void SetHelp(std::string_view name, std::string_view help);

  // Kind-mismatch lookups observed (the nullptr returns documented
  // above); a regression test keeps this at zero for the library's own
  // instrumentation.
  uint64_t kind_conflicts() const {
    return kind_conflicts_.load(std::memory_order_relaxed);
  }

  // Folds `other` into this registry: counters/histograms add, gauges
  // take the max (see Gauge::MergeFrom). Metrics (and labeled series)
  // absent here are created.
  void MergeFrom(const MetricsRegistry& other);

  // Iteration for exporters, in (name, labels) order — the unlabeled
  // series of a family (labels == "") sorts first. `labels` is the
  // EncodeMetricLabels form. The callback must not call back into the
  // registry.
  template <typename Fn>  // Fn(const std::string& name,
                          //    const std::string& labels, const Counter&)
  void ForEachCounter(Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : counters_) {
      for (const auto& [labels, metric] : family.series) {
        fn(name, labels, *metric);
      }
    }
  }
  template <typename Fn>  // Fn(name, labels, const Gauge&)
  void ForEachGauge(Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : gauges_) {
      for (const auto& [labels, metric] : family.series) {
        fn(name, labels, *metric);
      }
    }
  }
  template <typename Fn>  // Fn(name, labels, const Histogram&)
  void ForEachHistogram(Fn fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : histograms_) {
      for (const auto& [labels, metric] : family.series) {
        fn(name, labels, *metric);
      }
    }
  }

  // Snapshot of the help texts (family name -> help), for exporters.
  std::map<std::string, std::string> HelpTexts() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  template <typename M>
  struct Family {
    // Keyed by EncodeMetricLabels; "" is the unlabeled series.
    std::map<std::string, std::unique_ptr<M>, std::less<>> series;
    size_t labeled_series = 0;
  };

  template <typename M>
  M* GetMetric(std::map<std::string, Family<M>, std::less<>>* families,
               std::string_view name, const MetricLabels& labels, Kind kind);
  // Find-or-create by pre-encoded labels (MergeFrom's path: the source
  // registry already canonicalized, and the label keys are gone). With
  // `exempt_from_bound` the series is created outside the per-family
  // cardinality budget — used only for the all-"other" overflow series.
  template <typename M>
  M* GetMetricEncoded(std::map<std::string, Family<M>, std::less<>>* families,
                      const std::string& name, const std::string& labels,
                      Kind kind, bool exempt_from_bound = false);

  mutable std::mutex mu_;
  std::map<std::string, Family<Counter>, std::less<>> counters_;
  std::map<std::string, Family<Gauge>, std::less<>> gauges_;
  std::map<std::string, Family<Histogram>, std::less<>> histograms_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, std::string, std::less<>> help_;
  std::atomic<uint64_t> kind_conflicts_{0};
};

// Build identity, for correlating scraped/pushed series to a binary.
// Version tracks the repo's PR sequence; compiler comes from the
// compiler's own version macros.
std::string_view XmlprojVersion();
std::string_view XmlprojCompiler();

// Registers the conventional `xmlproj_build_info` gauge (value 1,
// `version`/`compiler` labels) into `registry`. Explicit — never called
// by the registry itself — so registries that want a minimal series set
// (tests, per-shard merges) stay untouched. Null registry is a no-op.
void RegisterBuildInfo(MetricsRegistry* registry);

// RAII latency sample: records elapsed nanoseconds into `hist` on
// destruction. A null histogram skips the clock reads entirely.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ns_ = MonotonicNowNs();
  }
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) hist_->Record(MonotonicNowNs() - start_ns_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_ns_ = 0;
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_METRICS_H_
