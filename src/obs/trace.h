// Span-style stage tracing for the pruning pipeline.
//
// A TraceCollector accumulates complete ("X") and counter ("C") events —
// pipeline stages (`parse`, `validate+prune`, `serialize`, `queue-wait`)
// and thread-pool queue depth — and serializes them in the Chrome Trace
// Event JSON format, loadable in chrome://tracing and Perfetto. One event
// object per line, so the file doubles as JSON-lines for ad-hoc grep/jq.
//
// All timestamps are absolute MonotonicNowNs() values (obs/metrics.h);
// the collector rebases them onto its construction time so traces start
// near t=0. Appending an event takes a mutex — events are per *task*
// (a handful per document), not per SAX event, so this is off the hot
// path; a null TraceCollector* at the instrumentation site disables
// tracing with zero cost.

#ifndef XMLPROJ_OBS_TRACE_H_
#define XMLPROJ_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace xmlproj {

// One "key": integer argument attached to a trace event (e.g. task index).
struct TraceArg {
  std::string key;
  int64_t value = 0;
};

struct TraceOptions {
  // Emit spans for every Nth task/chunk only (index % N == 0): at high
  // task counts full tracing costs more than the stages it measures.
  // 1 — the default — traces everything; 0 is treated as 1.
  uint64_t sample_every_n = 1;
};

// The request-scoped identity a span belongs to (W3C Trace Context ids,
// common/http/http.h mints and parses them). While a thread has a
// SpanContext installed (ScopedSpanContext below), every event it
// records is stamped with the trace id and parented under `span_id`;
// AddSpanEvent records the request span itself.
struct SpanContext {
  std::string trace_id;   // 32 lowercase hex
  std::string span_id;    // this span's own id (16 hex)
  std::string parent_id;  // "" for a root span
  std::string workload;   // optional tenant attribution

  bool valid() const { return !trace_id.empty(); }
};

class TraceCollector {
 public:
  TraceCollector() : TraceCollector(TraceOptions{}) {}
  explicit TraceCollector(const TraceOptions& options);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // True when the task/chunk with this zero-based index should emit
  // spans under TraceOptions::sample_every_n. Instrumentation sites gate
  // span emission on this; counter events stay unsampled.
  bool ShouldSample(uint64_t index) const {
    uint64_t n = options_.sample_every_n;
    return n <= 1 || index % n == 0;
  }

  const TraceOptions& options() const { return options_; }

  // Complete event ("ph":"X") on the calling thread's track.
  // `start_ns` is an absolute MonotonicNowNs() timestamp.
  void AddCompleteEvent(std::string name, std::string category,
                        uint64_t start_ns, uint64_t duration_ns,
                        std::vector<TraceArg> args = {});

  // Counter event ("ph":"C"): plots `value` over time (e.g. queue depth).
  void AddCounterEvent(std::string name, uint64_t ts_ns, int64_t value);

  // Complete event recorded *as* `context` — the request span itself:
  // the event's span id is context.span_id, its parent
  // context.parent_id. Stage spans recorded by the same thread while
  // the context is installed become its children.
  void AddSpanEvent(std::string name, std::string category,
                    uint64_t start_ns, uint64_t duration_ns,
                    const SpanContext& context,
                    std::vector<TraceArg> args = {});

  // Installs/clears the calling thread's span context: while installed,
  // AddCompleteEvent stamps each event with the context's trace id and
  // workload, a freshly minted child span id, and parent_id =
  // context.span_id. Prefer ScopedSpanContext.
  void SetThreadSpanContext(const SpanContext& context);
  void ClearThreadSpanContext();

  size_t event_count() const;

  // Serializes {"traceEvents":[...]} with one event per line.
  void AppendChromeTraceJson(std::string* out) const;

  // Serializes the most recent `max_events` events (all, if fewer) as
  // {"spans":[...],"dropped":N} in the same per-event shape as the
  // Chrome trace — the /tracez payload. `dropped` counts the older
  // events not included. Non-empty `trace_id` / `workload` restrict the
  // listing to events stamped with that id / workload (the
  // /tracez?trace_id=&workload= filters).
  void AppendRecentSpansJson(size_t max_events, std::string* out) const;
  void AppendRecentSpansJson(size_t max_events, std::string_view trace_id,
                             std::string_view workload,
                             std::string* out) const;

  // OTLP-shaped trace export: appends one JSON object (a
  // `resourceSpans` batch, single line, no trailing newline) holding
  // every trace-stamped complete event recorded since `*cursor`, and
  // advances the cursor past all current events. Returns false — with
  // `*out` untouched — when no new qualifying span exists. Timestamps
  // are unix nanos (the collector pins a wall-clock epoch at
  // construction). The PushFlusher drives this onto a JsonlFileSink.
  bool AppendOtlpSpansJson(size_t* cursor, std::string* out) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';
    uint64_t ts_ns = 0;  // rebased to the collector epoch
    uint64_t dur_ns = 0;
    int tid = 0;
    int64_t counter_value = 0;
    std::vector<TraceArg> args;
    // Request attribution; empty for events recorded outside any span
    // context (the pre-PR-10 anonymous spans).
    std::string trace_id;
    std::string span_id;
    std::string parent_id;
    std::string workload;
  };

  uint64_t Rebase(uint64_t abs_ns) const {
    return abs_ns > epoch_ns_ ? abs_ns - epoch_ns_ : 0;
  }
  // Small stable per-collector thread numbering, so tracks read
  // "worker 0..N" rather than opaque platform ids. Caller holds mu_.
  int TidLocked();
  // One event as a JSON object (no trailing separator). Caller holds mu_.
  void AppendEventJsonLocked(const Event& event, std::string* out) const;
  // Stamps `event` from the calling thread's span context (if any),
  // minting a child span id. Caller holds mu_.
  void StampFromThreadContextLocked(Event* event);

  const TraceOptions options_;
  const uint64_t epoch_ns_;
  const uint64_t unix_epoch_ns_;  // wall clock at construction (OTLP)
  uint64_t next_child_span_ = 0;  // child span id sequence (under mu_)
  mutable std::mutex mu_;
  std::map<std::thread::id, int> tids_;
  std::map<std::thread::id, SpanContext> contexts_;
  std::vector<Event> events_;
};

// RAII installation of a span context on the current thread. Null
// collector (tracing disabled) is a no-op, matching the null-pointer
// idiom of every other instrumentation site.
class ScopedSpanContext {
 public:
  ScopedSpanContext(TraceCollector* collector, const SpanContext& context)
      : collector_(collector) {
    if (collector_ != nullptr) collector_->SetThreadSpanContext(context);
  }
  ~ScopedSpanContext() {
    if (collector_ != nullptr) collector_->ClearThreadSpanContext();
  }
  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  TraceCollector* collector_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_TRACE_H_
