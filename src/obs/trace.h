// Span-style stage tracing for the pruning pipeline.
//
// A TraceCollector accumulates complete ("X") and counter ("C") events —
// pipeline stages (`parse`, `validate+prune`, `serialize`, `queue-wait`)
// and thread-pool queue depth — and serializes them in the Chrome Trace
// Event JSON format, loadable in chrome://tracing and Perfetto. One event
// object per line, so the file doubles as JSON-lines for ad-hoc grep/jq.
//
// All timestamps are absolute MonotonicNowNs() values (obs/metrics.h);
// the collector rebases them onto its construction time so traces start
// near t=0. Appending an event takes a mutex — events are per *task*
// (a handful per document), not per SAX event, so this is off the hot
// path; a null TraceCollector* at the instrumentation site disables
// tracing with zero cost.

#ifndef XMLPROJ_OBS_TRACE_H_
#define XMLPROJ_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace xmlproj {

// One "key": integer argument attached to a trace event (e.g. task index).
struct TraceArg {
  std::string key;
  int64_t value = 0;
};

struct TraceOptions {
  // Emit spans for every Nth task/chunk only (index % N == 0): at high
  // task counts full tracing costs more than the stages it measures.
  // 1 — the default — traces everything; 0 is treated as 1.
  uint64_t sample_every_n = 1;
};

class TraceCollector {
 public:
  TraceCollector() : TraceCollector(TraceOptions{}) {}
  explicit TraceCollector(const TraceOptions& options)
      : options_(options), epoch_ns_(MonotonicNowNs()) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // True when the task/chunk with this zero-based index should emit
  // spans under TraceOptions::sample_every_n. Instrumentation sites gate
  // span emission on this; counter events stay unsampled.
  bool ShouldSample(uint64_t index) const {
    uint64_t n = options_.sample_every_n;
    return n <= 1 || index % n == 0;
  }

  const TraceOptions& options() const { return options_; }

  // Complete event ("ph":"X") on the calling thread's track.
  // `start_ns` is an absolute MonotonicNowNs() timestamp.
  void AddCompleteEvent(std::string name, std::string category,
                        uint64_t start_ns, uint64_t duration_ns,
                        std::vector<TraceArg> args = {});

  // Counter event ("ph":"C"): plots `value` over time (e.g. queue depth).
  void AddCounterEvent(std::string name, uint64_t ts_ns, int64_t value);

  size_t event_count() const;

  // Serializes {"traceEvents":[...]} with one event per line.
  void AppendChromeTraceJson(std::string* out) const;

  // Serializes the most recent `max_events` events (all, if fewer) as
  // {"spans":[...],"dropped":N} in the same per-event shape as the
  // Chrome trace — the /tracez payload. `dropped` counts the older
  // events not included.
  void AppendRecentSpansJson(size_t max_events, std::string* out) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';
    uint64_t ts_ns = 0;  // rebased to the collector epoch
    uint64_t dur_ns = 0;
    int tid = 0;
    int64_t counter_value = 0;
    std::vector<TraceArg> args;
  };

  uint64_t Rebase(uint64_t abs_ns) const {
    return abs_ns > epoch_ns_ ? abs_ns - epoch_ns_ : 0;
  }
  // Small stable per-collector thread numbering, so tracks read
  // "worker 0..N" rather than opaque platform ids. Caller holds mu_.
  int TidLocked();
  // One event as a JSON object (no trailing separator). Caller holds mu_.
  void AppendEventJsonLocked(const Event& event, std::string* out) const;

  const TraceOptions options_;
  const uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::map<std::thread::id, int> tids_;
  std::vector<Event> events_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_TRACE_H_
