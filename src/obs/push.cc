#include "obs/push.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/trace.h"

namespace xmlproj {

namespace {

// Delta-map key: name and encoded labels cannot collide across families
// because \x1f never appears in a metric name.
std::string SeriesKey(const std::string& name, const std::string& labels) {
  std::string key = name;
  key.push_back('\x1f');
  key += labels;
  return key;
}

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Formats a double the way both statsd and JSON want it: integral values
// without a fractional part, everything else with enough digits.
void AppendNumber(double v, std::string* out) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

// statsd tag values cannot carry the protocol's structural bytes; replace
// them rather than dropping the sample (tag values here are query ids and
// corpus labels, which are already tame — this is a guard rail).
void AppendTagSanitized(std::string_view s, std::string* out) {
  for (char c : s) {
    const bool structural = c == ':' || c == '|' || c == ',' || c == '#' ||
                            c == '\n' || c == '@';
    out->push_back(structural ? '_' : c);
  }
}

}  // namespace

MetricLabels DecodeMetricLabels(std::string_view encoded) {
  MetricLabels labels;
  size_t i = 0;
  while (i < encoded.size()) {
    // key
    size_t eq = encoded.find('=', i);
    if (eq == std::string_view::npos || eq + 1 >= encoded.size() ||
        encoded[eq + 1] != '"') {
      break;
    }
    MetricLabel label;
    label.key.assign(encoded.substr(i, eq - i));
    // value: scan to the closing unescaped quote, unescaping as we go.
    size_t j = eq + 2;
    bool closed = false;
    while (j < encoded.size()) {
      char c = encoded[j];
      if (c == '\\' && j + 1 < encoded.size()) {
        char next = encoded[j + 1];
        if (next == 'n') {
          label.value.push_back('\n');
        } else {
          label.value.push_back(next);  // \\ and \" (and anything else: keep)
        }
        j += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++j;
        break;
      }
      label.value.push_back(c);
      ++j;
    }
    if (!closed) break;
    labels.push_back(std::move(label));
    if (j < encoded.size() && encoded[j] == ',') ++j;
    i = j;
  }
  return labels;
}

// ---------------------------------------------------------------------------
// StatsdSink

StatsdSink::~StatsdSink() {
  if (fd_ >= 0) ::close(fd_);
}

bool StatsdSink::Open(const std::string& host_port, std::string* error) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    if (error != nullptr) {
      *error = "statsd target must be HOST:PORT, got \"" + host_port + "\"";
    }
    return false;
  }
  std::string host = host_port.substr(0, colon);
  std::string port = host_port.substr(colon + 1);
  for (char c : port) {
    if (c < '0' || c > '9') {
      if (error != nullptr) {
        *error = "statsd port must be numeric, got \"" + port + "\"";
      }
      return false;
    }
  }

  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* result = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &result);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "cannot resolve statsd target \"" + host_port +
               "\": " + ::gai_strerror(rc);
    }
    return false;
  }

  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // connect() on a UDP socket just pins the peer address, so Push can
    // use send() and the kernel reports unreachable-host errors to us
    // (which we ignore — fire and forget) rather than to nobody.
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open UDP socket to \"" + host_port +
               "\": " + std::strerror(errno);
    }
    return false;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  target_ = host_port;
  return true;
}

std::string StatsdSink::FormatLine(const PushSample& sample) {
  std::string line = sample.name;
  line.push_back(':');
  AppendNumber(sample.value, &line);
  line.append(sample.is_counter ? "|c" : "|g");
  if (!sample.labels.empty()) {
    line.append("|#");
    bool first = true;
    for (const MetricLabel& label : sample.labels) {
      if (!first) line.push_back(',');
      first = false;
      AppendTagSanitized(label.key, &line);
      line.push_back(':');
      AppendTagSanitized(label.value, &line);
    }
  }
  return line;
}

bool StatsdSink::Push(const PushBatch& batch) {
  if (fd_ < 0) return false;
  bool ok = true;
  std::string datagram;
  datagram.reserve(max_datagram_bytes);
  auto send_datagram = [&]() {
    if (datagram.empty()) return;
    ssize_t sent = ::send(fd_, datagram.data(), datagram.size(), 0);
    // ECONNREFUSED from a previous datagram's ICMP reply is the normal
    // no-listener case for fire-and-forget UDP — not an error.
    if (sent < 0 && errno != ECONNREFUSED) ok = false;
    ++datagrams_sent_;
    datagram.clear();
  };
  for (const PushSample& sample : batch.samples) {
    std::string line = FormatLine(sample);
    if (!datagram.empty() &&
        datagram.size() + 1 + line.size() > max_datagram_bytes) {
      send_datagram();
    }
    if (!datagram.empty()) datagram.push_back('\n');
    datagram += line;
  }
  send_datagram();
  return ok;
}

// ---------------------------------------------------------------------------
// JsonlFileSink

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

bool JsonlFileSink::Open(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open push JSONL file \"" + path +
               "\": " + std::strerror(errno);
    }
    return false;
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  path_ = path;
  return true;
}

std::string JsonlFileSink::FormatBatch(const PushBatch& batch) {
  std::string out;
  out.reserve(256 + batch.samples.size() * 96);
  out.append("{\"resource\":{\"service.name\":\"xmlproj\",\"service.version\":\"");
  AppendJsonEscaped(XmlprojVersion(), &out);
  out.append("\",\"compiler\":\"");
  AppendJsonEscaped(XmlprojCompiler(), &out);
  out.append("\"},\"time_unix_ms\":");
  AppendNumber(static_cast<double>(batch.unix_ms), &out);
  out.append(",\"sequence\":");
  AppendNumber(static_cast<double>(batch.sequence), &out);
  out.append(",\"metrics\":[");
  bool first = true;
  for (const PushSample& sample : batch.samples) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendJsonEscaped(sample.name, &out);
    out.append("\",\"type\":\"");
    // OTLP vocabulary: a counter delta is a sum with delta temporality.
    out.append(sample.is_counter ? "sum\",\"temporality\":\"delta\""
                                 : "gauge\"");
    if (!sample.labels.empty()) {
      out.append(",\"attributes\":{");
      bool first_label = true;
      for (const MetricLabel& label : sample.labels) {
        if (!first_label) out.push_back(',');
        first_label = false;
        out.push_back('"');
        AppendJsonEscaped(label.key, &out);
        out.append("\":\"");
        AppendJsonEscaped(label.value, &out);
        out.push_back('"');
      }
      out.push_back('}');
    }
    out.append(",\"value\":");
    AppendNumber(sample.value, &out);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

bool JsonlFileSink::Push(const PushBatch& batch) {
  if (file_ == nullptr) return false;
  std::string line = FormatBatch(batch);
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  return std::fflush(file_) == 0;
}

bool JsonlFileSink::WriteLine(const std::string& line) {
  if (file_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  if (std::fwrite("\n", 1, 1, file_) != 1) return false;
  return std::fflush(file_) == 0;
}

// ---------------------------------------------------------------------------
// PushFlusher

bool PushFlusher::Start(const PushFlusherOptions& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "push flusher already running";
    return false;
  }
  const bool has_trace = options.trace != nullptr && options.trace_sink != nullptr;
  if (!options.sinks.empty() && options.registry == nullptr) {
    if (error != nullptr) *error = "push flusher needs a registry";
    return false;
  }
  if (options.sinks.empty() && !has_trace) {
    if (error != nullptr) *error = "push flusher needs at least one sink";
    return false;
  }
  if (options.interval_ms == 0) {
    if (error != nullptr) *error = "push interval must be > 0 ms";
    return false;
  }
  options_ = options;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&PushFlusher::Loop, this);
  return true;
}

void PushFlusher::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The final flush: ships everything since the last interval tick, so a
  // run shorter than one interval still pushes exactly once.
  FlushNow();
  running_.store(false, std::memory_order_release);
}

void PushFlusher::Loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    FlushNow();
    lock.lock();
  }
}

void PushFlusher::BuildBatch(PushBatch* batch) {
  const MetricsRegistry* registry = options_.registry;
  batch->unix_ms = UnixNowMs();
  batch->sequence = sequence_++;

  // Counters: delta since the previous flush; zero deltas are skipped
  // once a series has appeared (its first flush always ships, so a sink
  // learns the series exists even when the value is still 0 — and the
  // common case of counters incremented before the first flush ships the
  // full initial value as the first delta).
  registry->ForEachCounter([&](const std::string& name,
                               const std::string& labels,
                               const Counter& counter) {
    uint64_t value = counter.Value();
    std::string key = SeriesKey(name, labels);
    auto it = last_values_.find(key);
    const bool known = it != last_values_.end();
    uint64_t last = known ? it->second : 0;
    uint64_t delta = value >= last ? value - last : value;
    last_values_[std::move(key)] = value;
    if (known && delta == 0) return;
    PushSample sample;
    sample.name = name;
    sample.labels = DecodeMetricLabels(labels);
    sample.value = static_cast<double>(delta);
    sample.is_counter = true;
    batch->samples.push_back(std::move(sample));
  });

  registry->ForEachGauge([&](const std::string& name,
                             const std::string& labels, const Gauge& gauge) {
    PushSample sample;
    sample.name = name;
    sample.labels = DecodeMetricLabels(labels);
    sample.value = static_cast<double>(gauge.Value());
    sample.is_counter = false;
    batch->samples.push_back(std::move(sample));
  });

  // Histograms: neither wire format has a pre-aggregated histogram, so
  // synthesize _count/_sum counter deltas plus p50/p99 level gauges.
  registry->ForEachHistogram([&](const std::string& name,
                                 const std::string& labels,
                                 const Histogram& hist) {
    MetricLabels decoded = DecodeMetricLabels(labels);
    auto counter_sample = [&](const std::string& suffix, uint64_t value) {
      std::string full = name + suffix;
      std::string key = SeriesKey(full, labels);
      auto it = last_values_.find(key);
      const bool known = it != last_values_.end();
      uint64_t last = known ? it->second : 0;
      uint64_t delta = value >= last ? value - last : value;
      last_values_[std::move(key)] = value;
      if (known && delta == 0) return;
      PushSample sample;
      sample.name = std::move(full);
      sample.labels = decoded;
      sample.value = static_cast<double>(delta);
      sample.is_counter = true;
      batch->samples.push_back(std::move(sample));
    };
    counter_sample("_count", hist.Count());
    counter_sample("_sum", hist.Sum());
    if (hist.Count() > 0) {
      for (const auto& [suffix, p] :
           {std::pair<const char*, double>{"_p50", 0.50}, {"_p99", 0.99}}) {
        PushSample sample;
        sample.name = name + suffix;
        sample.labels = decoded;
        sample.value = static_cast<double>(hist.ApproxPercentile(p));
        sample.is_counter = false;
        batch->samples.push_back(std::move(sample));
      }
    }
  });
}

bool PushFlusher::FlushNow() {
  const bool metrics_ready =
      options_.registry != nullptr && !options_.sinks.empty();
  const bool trace_ready =
      options_.trace != nullptr && options_.trace_sink != nullptr;
  if (!metrics_ready && !trace_ready) return false;
  bool ok = true;
  if (metrics_ready) {
    PushBatch batch;
    {
      std::lock_guard<std::mutex> lock(delta_mu_);
      BuildBatch(&batch);
    }
    for (PushSink* sink : options_.sinks) {
      if (!sink->Push(batch)) {
        ok = false;
        sink_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (trace_ready) {
    // Spans accumulated since the previous flush, as one OTLP line. The
    // cursor shares delta_mu_ with the counter state: FlushNow may race
    // between the flusher thread and Stop's final flush.
    std::string line;
    bool have;
    {
      std::lock_guard<std::mutex> lock(delta_mu_);
      have = options_.trace->AppendOtlpSpansJson(&trace_cursor_, &line);
    }
    if (have && !options_.trace_sink->WriteLine(line)) {
      ok = false;
      sink_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

}  // namespace xmlproj
