// Push-mode telemetry sinks: the other half of the observability layer.
//
// The scrape surface (obs/server.h) only works while a process is alive
// and something polls it — a batch pruning run that finishes between two
// scrape intervals leaves no trace. This module inverts the direction:
// a PushFlusher thread snapshots the MetricsRegistry on an interval,
// turns counters into deltas since the previous flush, and hands the
// batch to any number of PushSinks:
//
//   StatsdSink     UDP statsd line protocol, one metric per line, with
//                  DogStatsD-style `|#key:value` tags mapped from
//                  MetricLabels — fire-and-forget datagrams, safe to
//                  point at a dead host.
//   JsonlFileSink  OTLP-shaped JSON lines appended to a file, one
//                  document per flush, for offline ingestion.
//
// Design constraints, matching the rest of obs/:
//  - zero cost when unused: no sink + no flusher means no thread, no
//    socket, no clock reads — the registry is untouched.
//  - the flusher only *reads* the registry (relaxed atomics under the
//    iteration lock, same as an exporter); instrumented code never
//    blocks on a push.
//  - a guaranteed final flush on Stop(), so a run shorter than the
//    interval still ships its telemetry.
//  - standard library + POSIX sockets only (obs/ sits below common/ in
//    the link order).

#ifndef XMLPROJ_OBS_PUSH_H_
#define XMLPROJ_OBS_PUSH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace xmlproj {

class TraceCollector;

// Inverse of EncodeMetricLabels: parses the canonical `k1="v1",k2="v2"`
// form back into decoded key/value pairs (unescaping `\\`, `\"`, `\n`).
// Malformed input yields the pairs decoded so far (best effort; the
// encoder is the only producer, so this is a safety net, not a parser).
MetricLabels DecodeMetricLabels(std::string_view encoded);

// One series sample in a flush batch. Counters (and histogram _count /
// _sum synthetics) carry the DELTA since the previous flush — the
// natural unit for statsd `|c` and for OTLP delta temporality — while
// gauges (and histogram quantile synthetics) carry the current level.
struct PushSample {
  std::string name;    // metric family name (synthetic suffixes applied)
  MetricLabels labels; // decoded label pairs, empty for unlabeled
  double value = 0;
  bool is_counter = false;  // true: delta; false: gauge level
};

// One flush: every changed counter and every gauge, stamped with the
// wall-clock time of the snapshot and the flush sequence number.
struct PushBatch {
  uint64_t unix_ms = 0;
  uint64_t sequence = 0;  // 0 for the first flush after Start
  std::vector<PushSample> samples;
};

// A push destination. Implementations must tolerate being called from
// the flusher thread (and once more from Stop()'s final flush); they are
// never called concurrently with themselves.
class PushSink {
 public:
  virtual ~PushSink() = default;
  // Ships one batch. False on a transport error (the flusher counts it
  // and keeps going — push telemetry is best-effort by design).
  virtual bool Push(const PushBatch& batch) = 0;
  // Sink identity for diagnostics, e.g. "statsd://127.0.0.1:8125".
  virtual std::string Describe() const = 0;
};

// statsd over UDP. Lines follow the classic protocol with DogStatsD
// tags: `<name>:<value>|c|#k:v,k2:v2` for counter deltas and `|g` for
// gauges. Lines are packed into datagrams up to max_datagram_bytes
// (1432 default — conservative for a 1500-MTU path), never splitting a
// line across datagrams. UDP is fire-and-forget: a dead or absent
// listener costs nothing and fails nothing.
class StatsdSink : public PushSink {
 public:
  StatsdSink() = default;
  ~StatsdSink() override;
  StatsdSink(const StatsdSink&) = delete;
  StatsdSink& operator=(const StatsdSink&) = delete;

  // Resolves `host_port` ("HOST:PORT", numeric or named host) and opens
  // the socket. False with a description in *error on a malformed spec
  // or resolution failure; Open may be retried.
  bool Open(const std::string& host_port, std::string* error);

  bool Push(const PushBatch& batch) override;
  std::string Describe() const override { return "statsd://" + target_; }

  // Datagrams sent since Open (tests assert framing against a loopback
  // receiver).
  uint64_t datagrams_sent() const { return datagrams_sent_; }

  // Formats one statsd line (without trailing newline); exposed for
  // tests of the label→tag mapping.
  static std::string FormatLine(const PushSample& sample);

  // Maximum datagram payload; tunable before Open for tests that want
  // to force multi-datagram flushes.
  size_t max_datagram_bytes = 1432;

 private:
  int fd_ = -1;
  std::string target_;
  uint64_t datagrams_sent_ = 0;
};

// OTLP-shaped JSON lines appended to a file: one self-contained JSON
// document per flush, carrying a resource block (service name, version,
// compiler) and a flat metrics array with delta sums and gauges —
// trivially ingestible by anything that speaks JSONL, and close enough
// to OTLP's metrics data model (sum with delta temporality / gauge) to
// convert mechanically.
class JsonlFileSink : public PushSink {
 public:
  JsonlFileSink() = default;
  ~JsonlFileSink() override;
  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  // Opens `path` for appending. False with a description in *error.
  bool Open(const std::string& path, std::string* error);

  bool Push(const PushBatch& batch) override;
  std::string Describe() const override { return "jsonl://" + path_; }

  // Appends one pre-serialized JSON document as its own line — the
  // trace-export path, whose OTLP spans the TraceCollector serializes
  // itself. False on a write error or before Open.
  bool WriteLine(const std::string& line);

  // Serializes one batch to its JSON line (without trailing newline);
  // exposed for tests.
  static std::string FormatBatch(const PushBatch& batch);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

struct PushFlusherOptions {
  // Snapshot source; must outlive the flusher. Required when `sinks`
  // is non-empty.
  const MetricsRegistry* registry = nullptr;
  // Destinations; borrowed, must outlive the flusher.
  std::vector<PushSink*> sinks;
  // Flush cadence. The final flush on Stop() happens regardless, so a
  // run shorter than one interval still pushes exactly once.
  uint64_t interval_ms = 1000;
  // Optional trace export: each flush drains the collector's new
  // trace-stamped spans (see TraceCollector::AppendOtlpSpansJson) into
  // `trace_sink` as one OTLP resourceSpans JSON line. Both pointers are
  // borrowed; a flusher may run trace-only (empty `sinks`).
  const TraceCollector* trace = nullptr;
  JsonlFileSink* trace_sink = nullptr;
};

// Background flusher: snapshot → counter deltas → every sink, on an
// interval and once more at Stop(). Histograms are synthesized into
// `<name>_count` / `<name>_sum` counter deltas plus `<name>_p50` /
// `<name>_p99` gauges (statsd and JSONL have no native pre-aggregated
// histogram). Counters with a zero delta are skipped after their first
// appearance, so idle series cost no bandwidth.
class PushFlusher {
 public:
  PushFlusher() = default;
  ~PushFlusher() { Stop(); }
  PushFlusher(const PushFlusher&) = delete;
  PushFlusher& operator=(const PushFlusher&) = delete;

  // Validates options and launches the flusher thread. False with a
  // description in *error (metric sinks without a registry, nothing to
  // flush at all, zero interval).
  bool Start(const PushFlusherOptions& options, std::string* error);

  // Final flush, then joins the thread. Idempotent.
  void Stop();

  // One synchronous flush on the calling thread (also what the interval
  // loop and Stop() run). True when every sink accepted the batch.
  // Callable without Start for single-shot pushes.
  bool FlushNow();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  uint64_t sink_errors() const {
    return sink_errors_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  // Builds the batch under delta_mu_ (the only state the flusher
  // mutates between flushes).
  void BuildBatch(PushBatch* batch);

  PushFlusherOptions options_;
  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> sink_errors_{0};

  // Previous-flush values for delta computation, keyed by
  // "<name>\x1f<encoded labels>". Guarded by delta_mu_ so FlushNow is
  // safe from both the flusher thread and Stop().
  std::mutex delta_mu_;
  std::map<std::string, uint64_t> last_values_;
  uint64_t sequence_ = 0;
  size_t trace_cursor_ = 0;  // events already exported (same guard)
};

}  // namespace xmlproj

#endif  // XMLPROJ_OBS_PUSH_H_
