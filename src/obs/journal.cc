#include "obs/journal.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace xmlproj {

namespace {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendKeyU64(const char* key, uint64_t value, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(buf);
}

// Micro JSON reader, sized to the records this file writes: objects,
// strings, non-negative numbers (integer or decimal), one level of
// nesting for the quarantine digest. Strict — anything it does not
// recognize fails the line, which is exactly the corrupt-line-tolerance
// contract Load() builds on.
class JsonReader {
 public:
  explicit JsonReader(std::string_view in) : in_(in) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ >= in_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < in_.size() && in_[pos_] == c;
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= in_.size()) return false;
        char esc = in_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > in_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = in_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The writer only emits \u for control bytes; decode those and
            // reject anything needing real UTF-16 handling.
            if (code > 0x7f) return false;
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool ReadDouble(double* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '.' || in_[pos_] == '-' || in_[pos_] == '+' ||
            in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    std::string num(in_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(num.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') return false;
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    double v = 0;
    if (!ReadDouble(&v)) return false;
    if (v < 0) return false;
    *out = static_cast<uint64_t>(v);
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

std::string GenerateRunId() {
  uint64_t ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  char buf[48];
  std::snprintf(buf, sizeof(buf), "run-%011" PRIx64 "-%04x", ms,
                static_cast<unsigned>(::getpid()) & 0xffff);
  return buf;
}

RunJournal::~RunJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string RunJournal::PathFor(const std::string& dir) {
  if (dir.empty() || dir.back() == '/') return dir + "journal.jsonl";
  return dir + "/journal.jsonl";
}

bool RunJournal::Open(const std::string& dir, std::string* error) {
  if (dir.empty()) {
    if (error != nullptr) *error = "journal directory must be non-empty";
    return false;
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "cannot create journal directory \"" + dir +
               "\": " + std::strerror(errno);
    }
    return false;
  }
  std::string path = PathFor(dir);
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open journal \"" + path + "\": " + std::strerror(errno);
    }
    return false;
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  path_ = std::move(path);
  return true;
}

std::string RunJournal::FormatRecord(const RunRecord& record) {
  std::string out;
  out.reserve(384);
  out.append("{\"run_id\":\"");
  AppendJsonEscaped(record.run_id, &out);
  out.append("\",\"corpus\":\"");
  AppendJsonEscaped(record.corpus, &out);
  out.append("\",");
  AppendKeyU64("start_unix_ms", record.start_unix_ms, &out);
  out.push_back(',');
  AppendKeyU64("end_unix_ms", record.end_unix_ms, &out);
  out.append(",\"wall_seconds\":");
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", record.wall_seconds);
  out.append(buf);
  out.push_back(',');
  AppendKeyU64("tasks", record.tasks, &out);
  out.push_back(',');
  AppendKeyU64("failed", record.failed, &out);
  out.push_back(',');
  AppendKeyU64("degraded", record.degraded, &out);
  out.push_back(',');
  AppendKeyU64("retries", record.retries, &out);
  out.push_back(',');
  AppendKeyU64("input_bytes", record.input_bytes, &out);
  out.push_back(',');
  AppendKeyU64("output_bytes", record.output_bytes, &out);
  out.push_back(',');
  AppendKeyU64("peak_memory_bytes", record.peak_memory_bytes, &out);
  out.push_back(',');
  AppendKeyU64("budget_trips", record.budget_trips, &out);
  out.push_back(',');
  AppendKeyU64("resume_skipped", record.resume_skipped, &out);
  out.push_back(',');
  AppendKeyU64("resume_rerun", record.resume_rerun, &out);
  out.append(",\"quarantine\":{");
  bool first = true;
  for (const auto& [stage, count] : record.quarantine) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(stage, &out);
    out.append("\":");
    std::snprintf(buf, sizeof(buf), "%" PRIu64, count);
    out.append(buf);
  }
  out.append("}}");
  return out;
}

bool RunJournal::ParseRecord(std::string_view line, RunRecord* out) {
  JsonReader r(line);
  if (!r.Consume('{')) return false;
  RunRecord record;
  bool first = true;
  while (!r.Peek('}')) {
    if (!first && !r.Consume(',')) return false;
    first = false;
    std::string key;
    if (!r.ReadString(&key) || !r.Consume(':')) return false;
    if (key == "run_id") {
      if (!r.ReadString(&record.run_id)) return false;
    } else if (key == "corpus") {
      if (!r.ReadString(&record.corpus)) return false;
    } else if (key == "start_unix_ms") {
      if (!r.ReadU64(&record.start_unix_ms)) return false;
    } else if (key == "end_unix_ms") {
      if (!r.ReadU64(&record.end_unix_ms)) return false;
    } else if (key == "wall_seconds") {
      if (!r.ReadDouble(&record.wall_seconds)) return false;
    } else if (key == "tasks") {
      if (!r.ReadU64(&record.tasks)) return false;
    } else if (key == "failed") {
      if (!r.ReadU64(&record.failed)) return false;
    } else if (key == "degraded") {
      if (!r.ReadU64(&record.degraded)) return false;
    } else if (key == "retries") {
      if (!r.ReadU64(&record.retries)) return false;
    } else if (key == "input_bytes") {
      if (!r.ReadU64(&record.input_bytes)) return false;
    } else if (key == "output_bytes") {
      if (!r.ReadU64(&record.output_bytes)) return false;
    } else if (key == "peak_memory_bytes") {
      if (!r.ReadU64(&record.peak_memory_bytes)) return false;
    } else if (key == "budget_trips") {
      if (!r.ReadU64(&record.budget_trips)) return false;
    } else if (key == "resume_skipped") {
      if (!r.ReadU64(&record.resume_skipped)) return false;
    } else if (key == "resume_rerun") {
      if (!r.ReadU64(&record.resume_rerun)) return false;
    } else if (key == "quarantine") {
      if (!r.Consume('{')) return false;
      bool first_stage = true;
      while (!r.Peek('}')) {
        if (!first_stage && !r.Consume(',')) return false;
        first_stage = false;
        std::string stage;
        uint64_t count = 0;
        if (!r.ReadString(&stage) || !r.Consume(':') || !r.ReadU64(&count)) {
          return false;
        }
        record.quarantine.emplace_back(std::move(stage), count);
      }
      if (!r.Consume('}')) return false;
    } else {
      // Unknown scalar from a newer writer: accept a string or a number
      // so the format can grow without breaking old readers.
      std::string sink_s;
      double sink_d = 0;
      if (!r.ReadString(&sink_s) && !r.ReadDouble(&sink_d)) return false;
    }
  }
  if (!r.Consume('}') || !r.AtEnd()) return false;
  if (record.run_id.empty()) return false;  // not one of ours
  *out = std::move(record);
  return true;
}

bool RunJournal::Append(const RunRecord& record, std::string* error) {
  if (file_ == nullptr) {
    if (error != nullptr) *error = "journal is not open";
    return false;
  }
  std::string line = FormatRecord(record);
  line.push_back('\n');
  bool ok = std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
            std::fflush(file_) == 0;
  if (ok && fsync_) ok = ::fsync(::fileno(file_)) == 0;
  if (!ok) {
    if (error != nullptr) {
      *error = "cannot append to journal \"" + path_ +
               "\": " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

bool RunJournal::Load(const std::string& dir, std::vector<RunRecord>* records,
                      size_t* skipped_lines, std::string* error) {
  records->clear();
  if (skipped_lines != nullptr) *skipped_lines = 0;
  std::string path = PathFor(dir);
  std::FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) {
    if (errno == ENOENT) return true;  // first run: empty history
    if (error != nullptr) {
      *error = "cannot read journal \"" + path + "\": " + std::strerror(errno);
    }
    return false;
  }
  std::string line;
  char buf[4096];
  auto flush_line = [&]() {
    if (line.empty()) return;
    RunRecord record;
    if (RunJournal::ParseRecord(line, &record)) {
      records->push_back(std::move(record));
    } else if (skipped_lines != nullptr) {
      ++*skipped_lines;
    }
    line.clear();
  };
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.append(buf);
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      flush_line();
    }
  }
  // A final line without '\n' is a truncated append — try it anyway (it
  // may parse if only the newline is missing), else it counts as skipped.
  flush_line();
  std::fclose(f);
  return true;
}

BudgetSuggestion SuggestBudgets(const std::vector<RunRecord>& records,
                                std::string_view corpus, double headroom) {
  BudgetSuggestion suggestion;
  std::vector<uint64_t> peaks;
  peaks.reserve(records.size());
  for (const RunRecord& record : records) {
    if (!corpus.empty() && record.corpus != corpus) continue;
    if (record.peak_memory_bytes == 0) continue;
    peaks.push_back(record.peak_memory_bytes);
  }
  suggestion.runs = peaks.size();
  if (peaks.empty()) return suggestion;
  std::sort(peaks.begin(), peaks.end());
  // 1-based rank-ceil p99, the same convention as Histogram's percentile.
  size_t rank = static_cast<size_t>(0.99 * static_cast<double>(peaks.size()));
  if (static_cast<double>(rank) < 0.99 * static_cast<double>(peaks.size())) {
    ++rank;
  }
  if (rank == 0) rank = 1;
  if (rank > peaks.size()) rank = peaks.size();
  suggestion.p99_peak_bytes = peaks[rank - 1];
  if (headroom < 1.0) headroom = 1.0;
  double scaled = static_cast<double>(suggestion.p99_peak_bytes) * headroom;
  suggestion.suggested_max_bytes = static_cast<uint64_t>(scaled);
  return suggestion;
}

}  // namespace xmlproj
