#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace xmlproj {
namespace {

// Trace event names/categories are library-chosen identifiers, but escape
// the JSON-significant characters anyway so a hostile name cannot corrupt
// the file.
void AppendJsonString(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Chrome trace timestamps are microseconds; keep ns precision as a
// decimal fraction.
void AppendMicros(uint64_t ns, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out->append(buf);
}

uint64_t UnixNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceCollector::TraceCollector(const TraceOptions& options)
    : options_(options),
      epoch_ns_(MonotonicNowNs()),
      unix_epoch_ns_(UnixNowNs()) {}

int TraceCollector::TidLocked() {
  auto [it, inserted] = tids_.emplace(std::this_thread::get_id(),
                                      static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

void TraceCollector::StampFromThreadContextLocked(Event* event) {
  auto it = contexts_.find(std::this_thread::get_id());
  if (it == contexts_.end() || !it->second.valid()) return;
  const SpanContext& context = it->second;
  event->trace_id = context.trace_id;
  event->parent_id = context.span_id;
  event->workload = context.workload;
  // Child span ids come from a per-collector sequence: 16 hex chars,
  // never zero, unique within the process — exactly what joining stage
  // spans to their request span needs.
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, ++next_child_span_);
  event->span_id = buf;
}

void TraceCollector::AddCompleteEvent(std::string name, std::string category,
                                      uint64_t start_ns, uint64_t duration_ns,
                                      std::vector<TraceArg> args) {
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_ns = Rebase(start_ns);
  event.dur_ns = duration_ns;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = TidLocked();
  StampFromThreadContextLocked(&event);
  events_.push_back(std::move(event));
}

void TraceCollector::AddSpanEvent(std::string name, std::string category,
                                  uint64_t start_ns, uint64_t duration_ns,
                                  const SpanContext& context,
                                  std::vector<TraceArg> args) {
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_ns = Rebase(start_ns);
  event.dur_ns = duration_ns;
  event.args = std::move(args);
  event.trace_id = context.trace_id;
  event.span_id = context.span_id;
  event.parent_id = context.parent_id;
  event.workload = context.workload;
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = TidLocked();
  events_.push_back(std::move(event));
}

void TraceCollector::SetThreadSpanContext(const SpanContext& context) {
  std::lock_guard<std::mutex> lock(mu_);
  contexts_[std::this_thread::get_id()] = context;
}

void TraceCollector::ClearThreadSpanContext() {
  std::lock_guard<std::mutex> lock(mu_);
  contexts_.erase(std::this_thread::get_id());
}

void TraceCollector::AddCounterEvent(std::string name, uint64_t ts_ns,
                                     int64_t value) {
  Event event;
  event.name = std::move(name);
  event.phase = 'C';
  event.ts_ns = Rebase(ts_ns);
  event.counter_value = value;
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = TidLocked();
  events_.push_back(std::move(event));
}

size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::AppendEventJsonLocked(const Event& event,
                                           std::string* out) const {
  char buf[64];
  out->append("{\"name\":");
  AppendJsonString(event.name, out);
  if (!event.category.empty()) {
    out->append(",\"cat\":");
    AppendJsonString(event.category, out);
  }
  std::snprintf(buf, sizeof(buf), ",\"ph\":\"%c\",\"pid\":1,\"tid\":%d",
                event.phase, event.tid);
  out->append(buf);
  out->append(",\"ts\":");
  AppendMicros(event.ts_ns, out);
  if (event.phase == 'X') {
    out->append(",\"dur\":");
    AppendMicros(event.dur_ns, out);
  }
  if (event.phase == 'C') {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRId64 "}",
                  event.counter_value);
    out->append(buf);
  } else if (!event.args.empty()) {
    out->append(",\"args\":{");
    for (size_t a = 0; a < event.args.size(); ++a) {
      if (a != 0) out->push_back(',');
      AppendJsonString(event.args[a].key, out);
      std::snprintf(buf, sizeof(buf), ":%" PRId64, event.args[a].value);
      out->append(buf);
    }
    out->push_back('}');
  }
  if (!event.trace_id.empty()) {
    out->append(",\"trace_id\":");
    AppendJsonString(event.trace_id, out);
    out->append(",\"span_id\":");
    AppendJsonString(event.span_id, out);
    if (!event.parent_id.empty()) {
      out->append(",\"parent_id\":");
      AppendJsonString(event.parent_id, out);
    }
    if (!event.workload.empty()) {
      out->append(",\"workload\":");
      AppendJsonString(event.workload, out);
    }
  }
  out->push_back('}');
}

void TraceCollector::AppendChromeTraceJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"traceEvents\":[\n");
  for (size_t i = 0; i < events_.size(); ++i) {
    AppendEventJsonLocked(events_[i], out);
    if (i + 1 < events_.size()) out->push_back(',');
    out->push_back('\n');
  }
  out->append("]}\n");
}

void TraceCollector::AppendRecentSpansJson(size_t max_events,
                                           std::string* out) const {
  AppendRecentSpansJson(max_events, {}, {}, out);
}

void TraceCollector::AppendRecentSpansJson(size_t max_events,
                                           std::string_view trace_id,
                                           std::string_view workload,
                                           std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Matching indices, then the most recent `max_events` of them: the
  // filters narrow the listing, the cap still bounds the payload.
  std::vector<size_t> matches;
  matches.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    if (!trace_id.empty() && events_[i].trace_id != trace_id) continue;
    if (!workload.empty() && events_[i].workload != workload) continue;
    matches.push_back(i);
  }
  size_t start = matches.size() > max_events ? matches.size() - max_events : 0;
  out->append("{\"dropped\":");
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", start);
  out->append(buf);
  out->append(",\"spans\":[\n");
  for (size_t m = start; m < matches.size(); ++m) {
    AppendEventJsonLocked(events_[matches[m]], out);
    if (m + 1 < matches.size()) out->push_back(',');
    out->push_back('\n');
  }
  out->append("]}\n");
}

bool TraceCollector::AppendOtlpSpansJson(size_t* cursor,
                                         std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t from = *cursor;
  *cursor = events_.size();
  std::string spans;
  bool first = true;
  // Sized for the longest fragment: 30 chars of key syntax plus a
  // 20-digit uint64 nanos string plus quote and NUL.
  char buf[64];
  for (size_t i = from; i < events_.size(); ++i) {
    const Event& event = events_[i];
    // Only trace-stamped complete events are OTLP spans; counter events
    // and anonymous stage spans stay local to /tracez.
    if (event.phase != 'X' || event.trace_id.empty()) continue;
    if (!first) spans.push_back(',');
    first = false;
    spans.append("{\"traceId\":");
    AppendJsonString(event.trace_id, &spans);
    spans.append(",\"spanId\":");
    AppendJsonString(event.span_id, &spans);
    if (!event.parent_id.empty()) {
      spans.append(",\"parentSpanId\":");
      AppendJsonString(event.parent_id, &spans);
    }
    spans.append(",\"name\":");
    AppendJsonString(event.name, &spans);
    // OTLP JSON carries 64-bit nanos as strings.
    uint64_t start_unix = unix_epoch_ns_ + event.ts_ns;
    std::snprintf(buf, sizeof(buf),
                  ",\"kind\":1,\"startTimeUnixNano\":\"%" PRIu64 "\"",
                  start_unix);
    spans.append(buf);
    std::snprintf(buf, sizeof(buf), ",\"endTimeUnixNano\":\"%" PRIu64 "\"",
                  start_unix + event.dur_ns);
    spans.append(buf);
    spans.append(",\"attributes\":[");
    bool first_attr = true;
    if (!event.workload.empty()) {
      spans.append("{\"key\":\"workload\",\"value\":{\"stringValue\":");
      AppendJsonString(event.workload, &spans);
      spans.append("}}");
      first_attr = false;
    }
    if (!event.category.empty()) {
      if (!first_attr) spans.push_back(',');
      spans.append("{\"key\":\"category\",\"value\":{\"stringValue\":");
      AppendJsonString(event.category, &spans);
      spans.append("}}");
      first_attr = false;
    }
    for (const TraceArg& arg : event.args) {
      if (!first_attr) spans.push_back(',');
      first_attr = false;
      spans.append("{\"key\":");
      AppendJsonString(arg.key, &spans);
      std::snprintf(buf, sizeof(buf),
                    ",\"value\":{\"intValue\":\"%" PRId64 "\"}}", arg.value);
      spans.append(buf);
    }
    spans.append("]}");
  }
  if (first) return false;  // nothing new to export
  out->append(
      "{\"resourceSpans\":[{\"resource\":{\"attributes\":[{\"key\":"
      "\"service.name\",\"value\":{\"stringValue\":\"xmlproj\"}}]},"
      "\"scopeSpans\":[{\"scope\":{\"name\":\"xmlproj.obs\"},\"spans\":[");
  out->append(spans);
  out->append("]}]}]}");
  return true;
}

}  // namespace xmlproj
