#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace xmlproj {
namespace {

// Trace event names/categories are library-chosen identifiers, but escape
// the JSON-significant characters anyway so a hostile name cannot corrupt
// the file.
void AppendJsonString(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Chrome trace timestamps are microseconds; keep ns precision as a
// decimal fraction.
void AppendMicros(uint64_t ns, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out->append(buf);
}

}  // namespace

int TraceCollector::TidLocked() {
  auto [it, inserted] = tids_.emplace(std::this_thread::get_id(),
                                      static_cast<int>(tids_.size()));
  (void)inserted;
  return it->second;
}

void TraceCollector::AddCompleteEvent(std::string name, std::string category,
                                      uint64_t start_ns, uint64_t duration_ns,
                                      std::vector<TraceArg> args) {
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_ns = Rebase(start_ns);
  event.dur_ns = duration_ns;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = TidLocked();
  events_.push_back(std::move(event));
}

void TraceCollector::AddCounterEvent(std::string name, uint64_t ts_ns,
                                     int64_t value) {
  Event event;
  event.name = std::move(name);
  event.phase = 'C';
  event.ts_ns = Rebase(ts_ns);
  event.counter_value = value;
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = TidLocked();
  events_.push_back(std::move(event));
}

size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::AppendEventJsonLocked(const Event& event,
                                           std::string* out) const {
  char buf[64];
  out->append("{\"name\":");
  AppendJsonString(event.name, out);
  if (!event.category.empty()) {
    out->append(",\"cat\":");
    AppendJsonString(event.category, out);
  }
  std::snprintf(buf, sizeof(buf), ",\"ph\":\"%c\",\"pid\":1,\"tid\":%d",
                event.phase, event.tid);
  out->append(buf);
  out->append(",\"ts\":");
  AppendMicros(event.ts_ns, out);
  if (event.phase == 'X') {
    out->append(",\"dur\":");
    AppendMicros(event.dur_ns, out);
  }
  if (event.phase == 'C') {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRId64 "}",
                  event.counter_value);
    out->append(buf);
  } else if (!event.args.empty()) {
    out->append(",\"args\":{");
    for (size_t a = 0; a < event.args.size(); ++a) {
      if (a != 0) out->push_back(',');
      AppendJsonString(event.args[a].key, out);
      std::snprintf(buf, sizeof(buf), ":%" PRId64, event.args[a].value);
      out->append(buf);
    }
    out->push_back('}');
  }
  out->push_back('}');
}

void TraceCollector::AppendChromeTraceJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"traceEvents\":[\n");
  for (size_t i = 0; i < events_.size(); ++i) {
    AppendEventJsonLocked(events_[i], out);
    if (i + 1 < events_.size()) out->push_back(',');
    out->push_back('\n');
  }
  out->append("]}\n");
}

void TraceCollector::AppendRecentSpansJson(size_t max_events,
                                           std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t start = events_.size() > max_events ? events_.size() - max_events : 0;
  out->append("{\"dropped\":");
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%zu", start);
  out->append(buf);
  out->append(",\"spans\":[\n");
  for (size_t i = start; i < events_.size(); ++i) {
    AppendEventJsonLocked(events_[i], out);
    if (i + 1 < events_.size()) out->push_back(',');
    out->push_back('\n');
  }
  out->append("]}\n");
}

}  // namespace xmlproj
