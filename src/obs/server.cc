#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/export.h"

namespace xmlproj {
namespace {

// How long socket waits sleep between checks of the stop flag. Bounds
// Stop() latency; small enough to be invisible next to a scrape interval.
constexpr int kPollIntervalMs = 50;
// A scrape request fits in one line; anything larger is not ours.
constexpr size_t kMaxRequestBytes = 4096;
// Per-connection budget: a client that dribbles bytes or never finishes
// its request gets cut off rather than pinning the serving thread.
constexpr int kConnectionDeadlineMs = 2000;

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// Point-in-time view of the unlabeled series, keyed by name — the
// /healthz and /statusz builders read specific metrics out of it. Taken
// via the registry's ForEach* (the only const access path), so it costs
// one pass over the registry per request.
struct RegistrySnapshot {
  struct HistStats {
    uint64_t count = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistStats> histograms;

  explicit RegistrySnapshot(const MetricsRegistry& registry) {
    registry.ForEachCounter([this](const std::string& name,
                                   const std::string& labels,
                                   const Counter& c) {
      if (labels.empty()) counters[name] = c.Value();
    });
    registry.ForEachGauge([this](const std::string& name,
                                 const std::string& labels, const Gauge& g) {
      if (labels.empty()) gauges[name] = g.Value();
    });
    registry.ForEachHistogram([this](const std::string& name,
                                     const std::string& labels,
                                     const Histogram& h) {
      if (labels.empty()) {
        histograms[name] = {h.Count(), h.ApproxPercentile(0.50),
                            h.ApproxPercentile(0.99)};
      }
    });
  }

  uint64_t CounterOr0(const char* name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  int64_t GaugeOr0(const char* name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
};

// Minimal JSON string escaping for the build block (version/compiler
// strings; metric-derived values elsewhere never need escaping).
void AppendJsonString(std::string_view s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// `circuit` is the CircuitState integer from the circuit_state callback,
// or -1 when no breaker is attached (the pre-breaker heuristic then).
void AppendHealthz(const MetricsRegistry& registry, uint64_t uptime_ns,
                   uint64_t requests, int circuit, std::string* out) {
  RegistrySnapshot snap(registry);
  uint64_t isolated = snap.CounterOr0("xmlproj_pipeline_isolated_total");
  uint64_t degraded = snap.CounterOr0("xmlproj_pipeline_degraded_total");
  // Status follows the breaker state machine when one is wired in:
  // closed → ok, half-open → degraded (probing), open → open (and the
  // endpoint returns 503, see BuildResponse).
  const char* status = "ok";
  if (circuit == 1) status = "degraded";
  if (circuit == 2) status = "open";
  out->append("{\"status\":\"");
  out->append(status);
  out->append("\",\"uptime_ms\":");
  AppendU64(uptime_ns / 1000000, out);
  out->append(",\"requests\":");
  AppendU64(requests, out);
  out->append(",\"failures\":{\"errors\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_errors_total"), out);
  out->append(",\"isolated\":");
  AppendU64(isolated, out);
  out->append(",\"retries\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_retries_total"), out);
  out->append(",\"degraded\":");
  AppendU64(degraded, out);
  out->append(",\"deadline_exceeded\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_deadline_exceeded_total"), out);
  out->append(",\"resource_exhausted\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_resource_exhausted_total"),
            out);
  out->append("},\"circuit\":\"");
  if (circuit >= 0) {
    // The real state machine (common/circuit.h via the callback).
    out->append(circuit == 0 ? "closed" : circuit == 1 ? "half-open" : "open");
    out->append("\",\"circuit_state\":");
    AppendU64(static_cast<uint64_t>(circuit), out);
    out->append(",\"fast_failed\":");
    AppendU64(snap.CounterOr0("xmlproj_circuit_fast_fail_total"), out);
    out->append("}\n");
    return;
  }
  // No breaker attached: the PR 3 error policies quarantine or degrade
  // rather than trip one; "degrading" reports those paths have fired.
  out->append(isolated != 0 || degraded != 0 ? "degrading" : "closed");
  out->append("\"}\n");
}

void AppendStageStats(const RegistrySnapshot& snap, const char* json_name,
                      const char* metric, bool* first, std::string* out) {
  auto it = snap.histograms.find(metric);
  if (it == snap.histograms.end()) return;
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(json_name);
  out->append("\":{\"count\":");
  AppendU64(it->second.count, out);
  out->append(",\"p50_ns\":");
  AppendU64(it->second.p50, out);
  out->append(",\"p99_ns\":");
  AppendU64(it->second.p99, out);
  out->push_back('}');
}

void AppendStatusz(const MetricsRegistry& registry, uint64_t uptime_ns,
                   std::string* out) {
  RegistrySnapshot snap(registry);
  out->append("{\"uptime_ms\":");
  AppendU64(uptime_ns / 1000000, out);
  out->append(",\"build\":{\"version\":\"");
  AppendJsonString(XmlprojVersion(), out);
  out->append("\",\"compiler\":\"");
  AppendJsonString(XmlprojCompiler(), out);
  out->append("\"},\"threads\":");
  AppendI64(snap.GaugeOr0("xmlproj_pipeline_threads"), out);
  // Progress gauges are updated at task granularity by the pipeline:
  // completed + failed == tasks at the end of a run, inflight == 0.
  out->append(",\"progress\":{\"tasks\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_tasks"), out);
  out->append(",\"completed\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_completed"), out);
  out->append(",\"failed\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_failed"), out);
  out->append(",\"inflight\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_inflight"), out);
  out->append(",\"isolated\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_isolated_total"), out);
  out->append(",\"degraded\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_degraded_total"), out);
  out->append("},\"checkpoint\":{\"appends\":");
  AppendU64(snap.CounterOr0("xmlproj_checkpoint_appends"), out);
  out->append(",\"tasks_skipped\":");
  AppendU64(snap.CounterOr0("xmlproj_checkpoint_tasks_skipped"), out);
  out->append(",\"resumes\":");
  AppendU64(snap.CounterOr0("xmlproj_checkpoint_resume_total"), out);
  out->append(",\"drained\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_drained_total"), out);
  out->append(",\"watchdog_fired\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_watchdog_total"), out);
  out->append("},\"bytes\":{\"in\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_input_bytes_total"), out);
  out->append(",\"out\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_output_bytes_total"), out);
  out->append("},\"pool\":{\"queue_depth\":");
  AppendI64(snap.GaugeOr0("xmlproj_pool_queue_depth"), out);
  out->append(",\"queue_depth_peak\":");
  AppendI64(snap.GaugeOr0("xmlproj_pool_queue_depth_peak"), out);
  out->append(",\"active_workers\":");
  AppendI64(snap.GaugeOr0("xmlproj_pool_active_workers"), out);
  out->append("},\"stages\":{");
  bool first = true;
  AppendStageStats(snap, "parse", "xmlproj_stage_parse_ns", &first, out);
  AppendStageStats(snap, "prune", "xmlproj_stage_prune_ns", &first, out);
  AppendStageStats(snap, "serialize", "xmlproj_stage_serialize_ns", &first,
                   out);
  AppendStageStats(snap, "task", "xmlproj_stage_task_ns", &first, out);
  AppendStageStats(snap, "queue_wait", "xmlproj_stage_queue_wait_ns", &first,
                   out);
  out->append("}}\n");
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string response("HTTP/1.1 ");
  response.append(status);
  response.append("\r\nContent-Type: ");
  response.append(content_type);
  response.append("\r\nContent-Length: ");
  AppendU64(body.size(), &response);
  response.append("\r\nConnection: close\r\n\r\n");
  response.append(body);
  return response;
}

// Waits for readability, re-checking `stop` at kPollIntervalMs. Returns
// false on stop, error, or `deadline_ms` elapsed without readiness.
bool WaitReadable(int fd, const std::atomic<bool>* stop, int deadline_ms) {
  int waited = 0;
  while (stop == nullptr || !stop->load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, kPollIntervalMs);
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP)) != 0;
    if (rc < 0 && errno != EINTR) return false;
    waited += kPollIntervalMs;
    if (deadline_ms > 0 && waited >= deadline_ms) return false;
  }
  return false;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool ObsServer::Start(const ObsServerOptions& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  if (options.registry == nullptr) {
    if (error != nullptr) *error = "ObsServerOptions.registry is required";
    return false;
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    close(fd);
    return false;
  }
  if (listen(fd, 16) < 0) {
    if (error != nullptr) *error = std::string("listen: ") + strerror(errno);
    close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + strerror(errno);
    }
    close(fd);
    return false;
  }
  options_ = options;
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  start_ns_ = MonotonicNowNs();
  requests_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&ObsServer::ServeLoop, this);
  return true;
}

void ObsServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void ObsServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!WaitReadable(listen_fd_, &stop_, /*deadline_ms=*/0)) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    close(fd);
  }
}

void ObsServer::HandleConnection(int fd) {
  // Read until the end of the request headers. Scrapers send one small
  // GET; the loop re-checks stop_ so an open idle connection cannot
  // stall shutdown.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    if (!WaitReadable(fd, &stop_, kConnectionDeadlineMs)) return;
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer closed or error before a full request
    }
    request.append(buf, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = request.find("\r\n");
  std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(fd, HttpResponse("400 Bad Request", "text/plain; charset=utf-8",
                             "malformed request line\n"));
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  SendAll(fd, BuildResponse(method, target));
}

std::string ObsServer::BuildResponse(const std::string& method,
                                     const std::string& target) const {
  if (method != "GET") {
    return HttpResponse("405 Method Not Allowed", "text/plain; charset=utf-8",
                        "only GET is supported\n");
  }
  // Strip any query string; scrape paths take no parameters.
  std::string path = target.substr(0, target.find('?'));
  uint64_t uptime_ns = MonotonicNowNs() - start_ns_;
  std::string body;
  if (path == "/metrics") {
    AppendPrometheusText(*options_.registry, &body);
    return HttpResponse("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                        body);
  }
  if (path == "/metrics.json") {
    AppendMetricsJson(*options_.registry, &body);
    return HttpResponse("200 OK", "application/json", body);
  }
  if (path == "/healthz") {
    int circuit = options_.circuit_state ? options_.circuit_state() : -1;
    AppendHealthz(*options_.registry, uptime_ns,
                  requests_.load(std::memory_order_relaxed), circuit, &body);
    // An open breaker is the one condition a load balancer should act
    // on: stop routing until the cooldown lets probes through.
    return HttpResponse(circuit == 2 ? "503 Service Unavailable" : "200 OK",
                        "application/json", body);
  }
  if (path == "/statusz") {
    AppendStatusz(*options_.registry, uptime_ns, &body);
    return HttpResponse("200 OK", "application/json", body);
  }
  if (path == "/tracez") {
    if (options_.trace != nullptr) {
      options_.trace->AppendRecentSpansJson(options_.tracez_max_spans, &body);
    } else {
      body = "{\"dropped\":0,\"spans\":[]}\n";
    }
    return HttpResponse("200 OK", "application/json", body);
  }
  if (path == "/") {
    body =
        "xmlproj obs server\n"
        "endpoints: /metrics /metrics.json /healthz /statusz /tracez\n";
    return HttpResponse("200 OK", "text/plain; charset=utf-8", body);
  }
  return HttpResponse("404 Not Found", "text/plain; charset=utf-8",
                      "unknown path\n");
}

bool HttpGet(uint16_t port, const std::string& path, std::string* status_line,
             std::string* body, int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return false;
  }
  std::string request("GET ");
  request.append(path);
  request.append(" HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n");
  if (!SendAll(fd, request)) {
    close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  while (true) {
    if (!WaitReadable(fd, nullptr, timeout_ms)) {
      close(fd);
      return false;
    }
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  size_t line_end = response.find("\r\n");
  size_t header_end = response.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    return false;
  }
  if (status_line != nullptr) *status_line = response.substr(0, line_end);
  if (body != nullptr) *body = response.substr(header_end + 4);
  return true;
}

}  // namespace xmlproj
