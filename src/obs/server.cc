#include "obs/server.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/export.h"

namespace xmlproj {
namespace {

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// Point-in-time view of the unlabeled series, keyed by name — the
// /healthz and /statusz builders read specific metrics out of it. Taken
// via the registry's ForEach* (the only const access path), so it costs
// one pass over the registry per request.
struct RegistrySnapshot {
  struct HistStats {
    uint64_t count = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistStats> histograms;

  explicit RegistrySnapshot(const MetricsRegistry& registry) {
    registry.ForEachCounter([this](const std::string& name,
                                   const std::string& labels,
                                   const Counter& c) {
      if (labels.empty()) counters[name] = c.Value();
    });
    registry.ForEachGauge([this](const std::string& name,
                                 const std::string& labels, const Gauge& g) {
      if (labels.empty()) gauges[name] = g.Value();
    });
    registry.ForEachHistogram([this](const std::string& name,
                                     const std::string& labels,
                                     const Histogram& h) {
      if (labels.empty()) {
        histograms[name] = {h.Count(), h.ApproxPercentile(0.50),
                            h.ApproxPercentile(0.99)};
      }
    });
  }

  uint64_t CounterOr0(const char* name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  int64_t GaugeOr0(const char* name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
};

// Minimal JSON string escaping for the build block (version/compiler
// strings; metric-derived values elsewhere never need escaping).
void AppendJsonString(std::string_view s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// `circuit` is the CircuitState integer from the circuit_state callback,
// or -1 when no breaker is attached (the pre-breaker heuristic then).
void AppendHealthz(const MetricsRegistry& registry, uint64_t uptime_ns,
                   uint64_t requests, int circuit, std::string* out) {
  RegistrySnapshot snap(registry);
  uint64_t isolated = snap.CounterOr0("xmlproj_pipeline_isolated_total");
  uint64_t degraded = snap.CounterOr0("xmlproj_pipeline_degraded_total");
  // Status follows the breaker state machine when one is wired in:
  // closed → ok, half-open → degraded (probing), open → open (and the
  // endpoint returns 503, see MountObsEndpoints).
  const char* status = "ok";
  if (circuit == 1) status = "degraded";
  if (circuit == 2) status = "open";
  out->append("{\"status\":\"");
  out->append(status);
  out->append("\",\"uptime_ms\":");
  AppendU64(uptime_ns / 1000000, out);
  out->append(",\"requests\":");
  AppendU64(requests, out);
  out->append(",\"failures\":{\"errors\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_errors_total"), out);
  out->append(",\"isolated\":");
  AppendU64(isolated, out);
  out->append(",\"retries\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_retries_total"), out);
  out->append(",\"degraded\":");
  AppendU64(degraded, out);
  out->append(",\"deadline_exceeded\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_deadline_exceeded_total"), out);
  out->append(",\"resource_exhausted\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_resource_exhausted_total"),
            out);
  out->append("},\"circuit\":\"");
  if (circuit >= 0) {
    // The real state machine (common/circuit.h via the callback).
    out->append(circuit == 0 ? "closed" : circuit == 1 ? "half-open" : "open");
    out->append("\",\"circuit_state\":");
    AppendU64(static_cast<uint64_t>(circuit), out);
    out->append(",\"fast_failed\":");
    AppendU64(snap.CounterOr0("xmlproj_circuit_fast_fail_total"), out);
    out->append("}\n");
    return;
  }
  // No breaker attached: the PR 3 error policies quarantine or degrade
  // rather than trip one; "degrading" reports those paths have fired.
  out->append(isolated != 0 || degraded != 0 ? "degrading" : "closed");
  out->append("\"}\n");
}

void AppendStageStats(const RegistrySnapshot& snap, const char* json_name,
                      const char* metric, bool* first, std::string* out) {
  auto it = snap.histograms.find(metric);
  if (it == snap.histograms.end()) return;
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(json_name);
  out->append("\":{\"count\":");
  AppendU64(it->second.count, out);
  out->append(",\"p50_ns\":");
  AppendU64(it->second.p50, out);
  out->append(",\"p99_ns\":");
  AppendU64(it->second.p99, out);
  out->push_back('}');
}

void AppendStatusz(const MetricsRegistry& registry, uint64_t uptime_ns,
                   const SloTracker* slo, std::string* out) {
  RegistrySnapshot snap(registry);
  out->append("{\"uptime_ms\":");
  AppendU64(uptime_ns / 1000000, out);
  out->append(",\"build\":{\"version\":\"");
  AppendJsonString(XmlprojVersion(), out);
  out->append("\",\"compiler\":\"");
  AppendJsonString(XmlprojCompiler(), out);
  out->append("\"},\"threads\":");
  AppendI64(snap.GaugeOr0("xmlproj_pipeline_threads"), out);
  // Progress gauges are updated at task granularity by the pipeline:
  // completed + failed == tasks at the end of a run, inflight == 0.
  out->append(",\"progress\":{\"tasks\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_tasks"), out);
  out->append(",\"completed\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_completed"), out);
  out->append(",\"failed\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_failed"), out);
  out->append(",\"inflight\":");
  AppendI64(snap.GaugeOr0("xmlproj_progress_inflight"), out);
  out->append(",\"isolated\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_isolated_total"), out);
  out->append(",\"degraded\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_degraded_total"), out);
  out->append("},\"checkpoint\":{\"appends\":");
  AppendU64(snap.CounterOr0("xmlproj_checkpoint_appends"), out);
  out->append(",\"tasks_skipped\":");
  AppendU64(snap.CounterOr0("xmlproj_checkpoint_tasks_skipped"), out);
  out->append(",\"resumes\":");
  AppendU64(snap.CounterOr0("xmlproj_checkpoint_resume_total"), out);
  out->append(",\"drained\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_drained_total"), out);
  out->append(",\"watchdog_fired\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_watchdog_total"), out);
  out->append("},\"bytes\":{\"in\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_input_bytes_total"), out);
  out->append(",\"out\":");
  AppendU64(snap.CounterOr0("xmlproj_pipeline_output_bytes_total"), out);
  out->append("},\"pool\":{\"queue_depth\":");
  AppendI64(snap.GaugeOr0("xmlproj_pool_queue_depth"), out);
  out->append(",\"queue_depth_peak\":");
  AppendI64(snap.GaugeOr0("xmlproj_pool_queue_depth_peak"), out);
  out->append(",\"active_workers\":");
  AppendI64(snap.GaugeOr0("xmlproj_pool_active_workers"), out);
  out->append("},\"stages\":{");
  bool first = true;
  AppendStageStats(snap, "parse", "xmlproj_stage_parse_ns", &first, out);
  AppendStageStats(snap, "prune", "xmlproj_stage_prune_ns", &first, out);
  AppendStageStats(snap, "serialize", "xmlproj_stage_serialize_ns", &first,
                   out);
  AppendStageStats(snap, "task", "xmlproj_stage_task_ns", &first, out);
  AppendStageStats(snap, "queue_wait", "xmlproj_stage_queue_wait_ns", &first,
                   out);
  out->push_back('}');
  if (slo != nullptr) {
    out->append(",\"slo\":");
    slo->AppendSloJson(out);
  }
  out->append("}\n");
}

}  // namespace

void MountObsEndpoints(HttpServer* server, const ObsServerOptions& options) {
  const MetricsRegistry* registry = options.registry;
  const TraceCollector* trace = options.trace;
  const size_t tracez_max_spans = options.tracez_max_spans;
  const std::function<int()> circuit_state = options.circuit_state;
  const uint64_t start_ns = MonotonicNowNs();

  server->Handle("GET", "/metrics", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    AppendPrometheusText(*registry, &response.body);
    return response;
  });
  server->Handle("GET", "/metrics.json", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    AppendMetricsJson(*registry, &response.body);
    return response;
  });
  // `server` outlives its handlers, so requests_served() is safe to read.
  HttpServer* owner = server;
  server->Handle(
      "GET", "/healthz",
      [registry, circuit_state, start_ns, owner](const HttpRequest&) {
        int circuit = circuit_state ? circuit_state() : -1;
        std::string body;
        AppendHealthz(*registry, MonotonicNowNs() - start_ns,
                      owner->requests_served(), circuit, &body);
        // An open breaker is the one condition a load balancer should
        // act on: stop routing until the cooldown lets probes through.
        return JsonResponse(circuit == 2 ? 503 : 200, std::move(body));
      });
  const SloTracker* slo = options.slo;
  server->Handle("GET", "/statusz",
                 [registry, slo, start_ns](const HttpRequest&) {
                   std::string body;
                   AppendStatusz(*registry, MonotonicNowNs() - start_ns, slo,
                                 &body);
                   return JsonResponse(200, std::move(body));
                 });
  server->Handle(
      "GET", "/tracez",
      [trace, tracez_max_spans](const HttpRequest& request) {
        std::string body;
        if (trace != nullptr) {
          trace->AppendRecentSpansJson(tracez_max_spans,
                                       request.QueryParam("trace_id"),
                                       request.QueryParam("workload"), &body);
        } else {
          body = "{\"dropped\":0,\"spans\":[]}\n";
        }
        return JsonResponse(200, std::move(body));
      });
}

bool ObsServer::Start(const ObsServerOptions& options, std::string* error) {
  if (http_.running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  if (options.registry == nullptr) {
    if (error != nullptr) *error = "ObsServerOptions.registry is required";
    return false;
  }
  if (!mounted_) {
    MountObsEndpoints(&http_, options);
    http_.Handle("GET", "/", [](const HttpRequest&) {
      return TextResponse(
          200,
          "xmlproj obs server\n"
          "endpoints: /metrics /metrics.json /healthz /statusz /tracez\n");
    });
    mounted_ = true;
  }
  HttpServerOptions http_options;
  http_options.port = options.port;
  return http_.Start(http_options, error);
}

void ObsServer::Stop() { http_.Stop(); }

bool HttpGet(uint16_t port, const std::string& path, std::string* status_line,
             std::string* body, int timeout_ms, size_t max_response_bytes) {
  HttpClientOptions options;
  options.timeout_ms = timeout_ms;
  options.max_response_bytes = max_response_bytes;
  HttpClientResult result;
  if (!HttpCall(port, "GET", path, /*body=*/{}, /*content_type=*/{}, &result,
                options)) {
    return false;
  }
  if (status_line != nullptr) *status_line = result.status_line;
  if (body != nullptr) *body = std::move(result.body);
  return true;
}

}  // namespace xmlproj
