#include "obs/log.h"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstring>

namespace xmlproj {
namespace {

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Same escaping as the journal/push writers: the JSON-significant
// characters plus control bytes. Values come from request headers and
// error messages, so hostile bytes are expected, not exceptional.
void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendQuoted(std::string_view text, std::string* out) {
  out->push_back('"');
  AppendJsonEscaped(text, out);
  out->push_back('"');
}

void FormatLine(uint64_t ts_unix_ms, LogLevel level, std::string_view event,
                std::initializer_list<LogField> fields, std::string* out) {
  char buf[32];
  out->append("{\"ts_unix_ms\":");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, ts_unix_ms);
  out->append(buf);
  out->append(",\"level\":\"");
  out->append(LogLevelName(level));
  out->append("\",\"event\":");
  AppendQuoted(event, out);
  for (const LogField& field : fields) {
    if (field.key.empty()) continue;
    out->push_back(',');
    AppendQuoted(field.key, out);
    out->push_back(':');
    if (field.is_text) {
      AppendQuoted(field.text, out);
    } else {
      std::snprintf(buf, sizeof(buf), "%" PRId64, field.number);
      out->append(buf);
    }
  }
  out->append("}\n");
}

}  // namespace

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

bool StructuredLogger::Open(const std::string& destination,
                            const StructuredLoggerOptions& options,
                            std::string* error) {
  Close();
  std::FILE* file;
  bool owns;
  if (destination == "stderr") {
    file = stderr;
    owns = false;
  } else {
    file = std::fopen(destination.c_str(), "ae");
    if (file == nullptr) {
      if (error != nullptr) {
        *error = "cannot open log file \"" + destination +
                 "\": " + std::strerror(errno);
      }
      return false;
    }
    owns = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  file_ = file;
  owns_file_ = owns;
  options_ = options;
  window_second_ = 0;
  window_lines_ = 0;
  window_dropped_ = 0;
  written_ = 0;
  dropped_ = 0;
  min_level_.store(static_cast<int>(options.min_level),
                   std::memory_order_relaxed);
  open_.store(true, std::memory_order_release);
  return true;
}

void StructuredLogger::Log(LogLevel level, std::string_view event,
                           std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  uint64_t now_ms = UnixNowMs();
  std::string line;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;  // raced with Close
  uint64_t second = now_ms / 1000;
  if (second != window_second_) {
    // New wall-clock second: surface what the limiter swallowed before
    // anything else, so the stream itself records the gap.
    if (window_dropped_ > 0) {
      std::string summary;
      FormatLine(now_ms, LogLevel::kWarn, "log.dropped",
                 {{"lines", window_dropped_}, {"window_s", uint64_t{1}}},
                 &summary);
      std::fwrite(summary.data(), 1, summary.size(), file_);
      ++written_;
    }
    window_second_ = second;
    window_lines_ = 0;
    window_dropped_ = 0;
  }
  if (options_.max_lines_per_second != 0 &&
      window_lines_ >= options_.max_lines_per_second &&
      level < LogLevel::kError) {
    ++window_dropped_;
    ++dropped_;
    return;
  }
  FormatLine(now_ms, level, event, fields, &line);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++window_lines_;
  ++written_;
}

uint64_t StructuredLogger::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t StructuredLogger::lines_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void StructuredLogger::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  open_.store(false, std::memory_order_release);
  if (file_ == nullptr) return;
  std::fflush(file_);
  if (owns_file_) std::fclose(file_);
  file_ = nullptr;
  owns_file_ = false;
}

}  // namespace xmlproj
