// Abstract syntax for the FLWR core of XQuery (paper §5):
//
//   q ::= () | q, q | <tag>q</tag> | x | if (Exp) then q else q
//       | for x in q return q | let x := q return q | Exp
//
// where Exp extends the XPath expressions of xpath/ast.h with variables
// ($x, $x/Q). `where` clauses and `order by` are parsed as part of the for
// clause (the paper folds `where` into `if`; we keep it explicit so the
// §5 heuristic can recognize both forms).

#ifndef XMLPROJ_XQUERY_AST_H_
#define XMLPROJ_XQUERY_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "xpath/ast.h"

namespace xmlproj {

struct XQueryExpr;
using XQueryPtr = std::unique_ptr<XQueryExpr>;

enum class XQueryKind : uint8_t {
  kEmpty,     // ()
  kSequence,  // q1, q2, ...
  kElement,   // <tag attr="...">q</tag>
  kText,      // literal text inside an element constructor
  kFor,       // for $x in q (where Exp)? (order by Exp)? return q
  kLet,       // let $x := q return q
  kIf,        // if (q) then q1 else q2
  kScalar,    // an Exp: path, comparison, arithmetic, function call, ...
  kSome,      // some $x in q satisfies q   (existential quantifier)
  kEvery,     // every $x in q satisfies q  (universal quantifier)
};

// One piece of an attribute value template: literal text or an embedded
// expression ("{...}").
struct AttrValuePart {
  std::string text;   // used when expr == nullptr
  ExprPtr expr;
};

struct ConstructedAttr {
  std::string name;
  std::vector<AttrValuePart> parts;
};

struct XQueryExpr {
  XQueryKind kind = XQueryKind::kEmpty;

  std::vector<XQueryPtr> items;  // kSequence

  // kElement
  std::string tag;
  std::vector<ConstructedAttr> attributes;
  XQueryPtr content;  // may be null (empty element)

  std::string text;  // kText

  // kFor / kLet / kSome / kEvery
  std::string variable;
  XQueryPtr binding;   // for/some/every: the sequence; let: the value
  XQueryPtr where;     // for only; may be null
  ExprPtr order_key;   // for only; may be null
  bool order_descending = false;
  XQueryPtr body;      // the return expression / the satisfies condition

  // kIf
  XQueryPtr condition;
  XQueryPtr then_branch;
  XQueryPtr else_branch;  // null means ()

  // kScalar
  ExprPtr scalar;
};

XQueryPtr MakeEmptyQuery();
XQueryPtr MakeScalarQuery(ExprPtr expr);

// Unparser for diagnostics.
std::string ToString(const XQueryExpr& q);

}  // namespace xmlproj

#endif  // XMLPROJ_XQUERY_AST_H_
