// Evaluator for the FLWR-core XQuery dialect — the query-engine side of
// the reproduction (together with xpath/evaluator.h it plays the role
// Galax plays in the paper's §6 experiments).
//
// Values are item sequences; items are input-document nodes, constructed
// elements (element constructors deep-copy by reference into an owned
// tree, per the paper's "no navigation on constructed nodes" assumption),
// or atomics. Scalar expressions are delegated to the XPath evaluator
// with a variable bridge.
//
// Memory accounting: every materialized sequence and constructed node is
// reported to the optional MemoryMeter; benchmarks add the document arena
// to reproduce Figure 5.

#ifndef XMLPROJ_XQUERY_EVALUATOR_H_
#define XMLPROJ_XQUERY_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_meter.h"
#include "common/status.h"
#include "xml/document.h"
#include "xpath/evaluator.h"
#include "xquery/ast.h"

namespace xmlproj {

struct ConstructedNode;

struct Item {
  enum class Kind : uint8_t {
    kNode,         // node of the input document
    kConstructed,  // element built by a constructor
    kString,
    kNumber,
    kBool,
  };
  Kind kind = Kind::kNode;
  XNode node;
  std::shared_ptr<ConstructedNode> constructed;
  std::string string;
  double number = 0;
  bool boolean = false;

  static Item Node(XNode n) {
    Item out;
    out.kind = Kind::kNode;
    out.node = n;
    return out;
  }
  static Item String(std::string s) {
    Item out;
    out.kind = Kind::kString;
    out.string = std::move(s);
    return out;
  }
  static Item Number(double v) {
    Item out;
    out.kind = Kind::kNumber;
    out.number = v;
    return out;
  }
  static Item Bool(bool v) {
    Item out;
    out.kind = Kind::kBool;
    out.boolean = v;
    return out;
  }
};

using Sequence = std::vector<Item>;

struct ConstructedNode {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attributes;
  Sequence children;

  size_t MemoryBytes() const;
};

class XQueryEvaluator {
 public:
  explicit XQueryEvaluator(const Document& doc, MemoryMeter* meter = nullptr)
      : doc_(doc), meter_(meter) {}

  // Evaluates a closed query (absolute paths only at the top level).
  Result<Sequence> Evaluate(const XQueryExpr& query);

  // Serializes a result sequence as XML text (input nodes serialize their
  // subtree; atomics their lexical form; adjacent atomics are separated by
  // a space, per the XQuery serialization rules).
  std::string Serialize(const Sequence& sequence) const;

  const Document& doc() const { return doc_; }

 private:
  Result<Sequence> Eval(const XQueryExpr& query);
  Result<Sequence> EvalScalar(const Expr& expr);
  Result<XPathValue> EvalScalarValue(const Expr& expr);
  Result<Sequence> EvalFor(const XQueryExpr& query);
  Result<Sequence> EvalElement(const XQueryExpr& query);
  Result<bool> EffectiveBooleanOf(const XQueryExpr& query);

  // Bridges $var lookups into the XPath evaluator.
  Result<XPathValue> LookupVariable(std::string_view name) const;

  std::string ItemString(const Item& item) const;
  double ItemNumber(const Item& item) const;
  void SerializeItem(const Item& item, bool* last_was_atomic,
                     std::string* out) const;

  void Meter(size_t bytes) {
    if (meter_ != nullptr) meter_->Add(bytes);
  }
  void Unmeter(size_t bytes) {
    if (meter_ != nullptr) meter_->Sub(bytes);
  }

  const Document& doc_;
  MemoryMeter* meter_;
  // Variable scopes: name -> stack of bindings (innermost last).
  std::map<std::string, std::vector<Sequence>, std::less<>> variables_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_XQUERY_EVALUATOR_H_
