#include "xquery/ast.h"

namespace xmlproj {

XQueryPtr MakeEmptyQuery() {
  auto q = std::make_unique<XQueryExpr>();
  q->kind = XQueryKind::kEmpty;
  return q;
}

XQueryPtr MakeScalarQuery(ExprPtr expr) {
  auto q = std::make_unique<XQueryExpr>();
  q->kind = XQueryKind::kScalar;
  q->scalar = std::move(expr);
  return q;
}

std::string ToString(const XQueryExpr& q) {
  switch (q.kind) {
    case XQueryKind::kEmpty:
      return "()";
    case XQueryKind::kSequence: {
      std::string out = "(";
      for (size_t i = 0; i < q.items.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(*q.items[i]);
      }
      out += ")";
      return out;
    }
    case XQueryKind::kElement: {
      std::string out = "<" + q.tag;
      for (const ConstructedAttr& a : q.attributes) {
        out += " " + a.name + "=\"";
        for (const AttrValuePart& part : a.parts) {
          if (part.expr != nullptr) {
            out += "{" + ToString(*part.expr) + "}";
          } else {
            out += part.text;
          }
        }
        out += "\"";
      }
      if (q.content == nullptr) return out + "/>";
      out += ">{" + ToString(*q.content) + "}</" + q.tag + ">";
      return out;
    }
    case XQueryKind::kText:
      return "'" + q.text + "'";
    case XQueryKind::kFor: {
      std::string out =
          "for $" + q.variable + " in " + ToString(*q.binding);
      if (q.where != nullptr) out += " where " + ToString(*q.where);
      if (q.order_key != nullptr) {
        out += " order by " + ToString(*q.order_key);
        if (q.order_descending) out += " descending";
      }
      out += " return " + ToString(*q.body);
      return out;
    }
    case XQueryKind::kLet:
      return "let $" + q.variable + " := " + ToString(*q.binding) +
             " return " + ToString(*q.body);
    case XQueryKind::kIf: {
      std::string out = "if (" + ToString(*q.condition) + ") then " +
                        ToString(*q.then_branch) + " else ";
      out += q.else_branch != nullptr ? ToString(*q.else_branch) : "()";
      return out;
    }
    case XQueryKind::kScalar:
      return ToString(*q.scalar);
    case XQueryKind::kSome:
    case XQueryKind::kEvery:
      return std::string(q.kind == XQueryKind::kSome ? "some" : "every") +
             " $" + q.variable + " in " + ToString(*q.binding) +
             " satisfies " + ToString(*q.body);
  }
  return "?";
}

}  // namespace xmlproj
