#include "xquery/path_extraction.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "projection/projector_inference.h"
#include "xpath/approximate.h"

namespace xmlproj {
namespace {

// Rewrites $var-rooted paths into context-relative paths, recursively
// (used by the §5 heuristic: inside the pushed-down qualifier, the binding
// node *is* the context node).
void RewriteVariableToContext(Expr* expr, const std::string& variable) {
  if (expr->kind == ExprKind::kPath) {
    if (expr->path.start == PathStart::kVariable &&
        expr->path.variable == variable) {
      expr->path.start = PathStart::kContext;
      expr->path.variable.clear();
    }
    for (Step& s : expr->path.steps) {
      for (ExprPtr& p : s.predicates) {
        RewriteVariableToContext(p.get(), variable);
      }
    }
  }
  for (ExprPtr& arg : expr->args) {
    RewriteVariableToContext(arg.get(), variable);
  }
}

void CollectFreeVariables(const Expr& expr, std::set<std::string>* out) {
  if (expr.kind == ExprKind::kPath &&
      expr.path.start == PathStart::kVariable) {
    out->insert(expr.path.variable);
  }
  if (expr.kind == ExprKind::kPath) {
    for (const Step& s : expr.path.steps) {
      for (const ExprPtr& p : s.predicates) CollectFreeVariables(*p, out);
    }
  }
  for (const ExprPtr& arg : expr.args) CollectFreeVariables(*arg, out);
}

// Appends descendant-or-self::node() unless the path already ends with it.
void AppendDos(LPath* path) {
  if (!path->steps.empty()) {
    const LStep& last = path->steps.back();
    if (last.axis == Axis::kDescendantOrSelf &&
        last.test == TestKind::kNode && last.cond.empty()) {
      return;
    }
  }
  path->steps.push_back(MakeLStep(Axis::kDescendantOrSelf, TestKind::kNode));
}

LPath Concat(const LPath& prefix, const LPath& suffix) {
  LPath out = prefix;
  for (const LStep& s : suffix.steps) out.steps.push_back(s);
  return out;
}

class Extractor {
 public:
  explicit Extractor(const ExtractOptions& options) : options_(options) {}

  Result<std::vector<LPath>> Run(const XQueryExpr& query) {
    std::vector<LPath> result;
    XMLPROJ_RETURN_IF_ERROR(
        ExtractQ(query, /*m=*/1, /*add_results=*/true, &result));
    // Deduplicate the global set.
    std::sort(global_.begin(), global_.end(),
              [](const LPath& a, const LPath& b) {
                return ToString(a) < ToString(b);
              });
    global_.erase(std::unique(global_.begin(), global_.end(),
                              [](const LPath& a, const LPath& b) {
                                return ToString(a) == ToString(b);
                              }),
                  global_.end());
    return global_;
  }

 private:
  struct Binding {
    bool is_for = false;
    std::vector<LPath> paths;  // document-rooted
  };

  // All paths bound by enclosing `for` clauses ({P | (x; for P) ∈ Γ}).
  std::vector<LPath> ForPaths() const {
    std::vector<LPath> out;
    for (const auto& [name, stack] : gamma_) {
      for (const Binding& b : stack) {
        if (!b.is_for) continue;
        out.insert(out.end(), b.paths.begin(), b.paths.end());
      }
    }
    return out;
  }
  // {P | (x; -P) ∈ Γ}: for and let alike.
  std::vector<LPath> AllBindingPaths() const {
    std::vector<LPath> out;
    for (const auto& [name, stack] : gamma_) {
      for (const Binding& b : stack) {
        out.insert(out.end(), b.paths.begin(), b.paths.end());
      }
    }
    return out;
  }

  // Resolves the extras/var-conditions accumulated while approximating a
  // path into global paths.
  Status ResolveAccumulator(ApproximatedQuery* acc) {
    for (LPath& extra : acc->extra_paths) {
      global_.push_back(std::move(extra));
    }
    acc->extra_paths.clear();
    for (auto& vc : acc->var_conditions) {
      auto it = gamma_.find(vc.variable);
      if (it == gamma_.end() || it->second.empty()) {
        return InvalidError("free variable $" + vc.variable +
                            " in a predicate");
      }
      for (const LPath& base : it->second.back().paths) {
        global_.push_back(Concat(base, vc.relative));
      }
    }
    acc->var_conditions.clear();
    return Status::Ok();
  }

  // Lines 6-12: a path expression. Fills `result` with the paths denoting
  // the expression's result nodes (already pushed to global by the caller
  // when appropriate).
  Status ExtractPathExpr(const LocationPath& path, bool need_subtree,
                         std::vector<LPath>* result) {
    ApproximatedQuery acc;
    LPath spine;
    XMLPROJ_RETURN_IF_ERROR(ApproximateSteps(path.steps, &acc, &spine));
    XMLPROJ_RETURN_IF_ERROR(ResolveAccumulator(&acc));
    // Attribute values are inline: no subtree needed.
    if (!path.steps.empty() &&
        path.steps.back().axis == Axis::kAttribute) {
      need_subtree = false;
    }
    switch (path.start) {
      case PathStart::kRoot: {
        if (need_subtree) AppendDos(&spine);
        result->push_back(std::move(spine));
        return Status::Ok();
      }
      case PathStart::kVariable: {
        auto it = gamma_.find(path.variable);
        if (it == gamma_.end() || it->second.empty()) {
          return InvalidError("free variable $" + path.variable);
        }
        for (const LPath& base : it->second.back().paths) {
          LPath full = Concat(base, spine);
          if (need_subtree) AppendDos(&full);
          result->push_back(std::move(full));
        }
        return Status::Ok();
      }
      case PathStart::kContext:
        return UnsupportedError(
            "relative paths have no context at XQuery top level; root them "
            "at '/' or at a variable");
    }
    return InternalError("unreachable path start");
  }

  // E over scalar expressions (lines 2-3 and 13-14, plus the value-needed
  // strengthening documented in the header).
  Status ExtractScalar(const Expr& expr, int m, bool value_needed,
                       std::vector<LPath>* result) {
    switch (expr.kind) {
      case ExprKind::kPath:
        return ExtractPathExpr(expr.path, m == 1 || value_needed, result);
      case ExprKind::kBinary:
        switch (expr.op) {
          case BinaryOp::kOr:
          case BinaryOp::kAnd: {
            std::vector<LPath> ignored;
            XMLPROJ_RETURN_IF_ERROR(
                ExtractScalar(*expr.args[0], 0, false, &ignored));
            XMLPROJ_RETURN_IF_ERROR(
                ExtractScalar(*expr.args[1], 0, false, &ignored));
            for (LPath& p : ignored) global_.push_back(std::move(p));
            return Status::Ok();
          }
          case BinaryOp::kUnion:
            XMLPROJ_RETURN_IF_ERROR(
                ExtractScalar(*expr.args[0], m, value_needed, result));
            return ExtractScalar(*expr.args[1], m, value_needed, result);
          default: {
            // Comparison or arithmetic: operand values are consumed.
            std::vector<LPath> operands;
            XMLPROJ_RETURN_IF_ERROR(
                ExtractScalar(*expr.args[0], 0, true, &operands));
            XMLPROJ_RETURN_IF_ERROR(
                ExtractScalar(*expr.args[1], 0, true, &operands));
            for (LPath& p : operands) global_.push_back(std::move(p));
            return Status::Ok();
          }
        }
      case ExprKind::kNegate: {
        std::vector<LPath> operands;
        XMLPROJ_RETURN_IF_ERROR(
            ExtractScalar(*expr.args[0], 0, true, &operands));
        for (LPath& p : operands) global_.push_back(std::move(p));
        return Status::Ok();
      }
      case ExprKind::kFunction: {
        // Line 14: argument paths suffixed per the F table.
        for (size_t i = 0; i < expr.args.size(); ++i) {
          std::vector<LPath> arg_paths;
          XMLPROJ_RETURN_IF_ERROR(ExtractScalar(
              *expr.args[i], 0, FunctionNeedsSubtree(expr.function, i),
              &arg_paths));
          for (LPath& p : arg_paths) global_.push_back(std::move(p));
        }
        return Status::Ok();
      }
      case ExprKind::kLiteral:
      case ExprKind::kNumber:
        // Line 2: a materialized base value depends on the enclosing
        // iteration.
        if (m == 1) {
          for (LPath& p : ForPaths()) global_.push_back(std::move(p));
        }
        return Status::Ok();
    }
    return InternalError("unreachable expression kind");
  }

  // The §5 heuristic: extracts from `cond` (whose only free variable is
  // `variable`) the disjunction of simple paths qualifying the binding.
  // Returns false (leaving *conds untouched) if the heuristic does not
  // apply.
  Result<bool> ConditionQualifier(const Expr& cond,
                                  const std::string& variable,
                                  std::vector<LPath>* conds) {
    std::set<std::string> free;
    CollectFreeVariables(cond, &free);
    free.erase(variable);
    if (!free.empty()) return false;  // a join: cannot qualify
    // Inside the qualifier, the binding node is the context node: rewrite
    // $x-rooted paths to relative ones so they participate in the
    // restriction (instead of being reported as opaque var-conditions).
    ExprPtr rewritten = CloneExpr(cond);
    RewriteVariableToContext(rewritten.get(), variable);
    ApproximatedQuery acc;
    auto paths = ExtractConditionPaths(*rewritten, &acc);
    if (!paths.ok()) return paths.status();
    for (LPath& extra : acc.extra_paths) global_.push_back(std::move(extra));
    if (!acc.var_conditions.empty()) {
      return InternalError("unexpected free variable after check");
    }
    for (LPath& p : *paths) conds->push_back(std::move(p));
    return true;
  }

  Status ExtractQ(const XQueryExpr& q, int m, bool add_results,
                  std::vector<LPath>* result) {
    switch (q.kind) {
      case XQueryKind::kEmpty:
      case XQueryKind::kText:
        return Status::Ok();
      case XQueryKind::kScalar: {
        std::vector<LPath> paths;
        XMLPROJ_RETURN_IF_ERROR(ExtractScalar(*q.scalar, m, false, &paths));
        if (add_results) {
          for (const LPath& p : paths) global_.push_back(p);
        }
        result->insert(result->end(),
                       std::make_move_iterator(paths.begin()),
                       std::make_move_iterator(paths.end()));
        return Status::Ok();
      }
      case XQueryKind::kSequence:
        for (const XQueryPtr& item : q.items) {
          XMLPROJ_RETURN_IF_ERROR(ExtractQ(*item, m, add_results, result));
        }
        return Status::Ok();
      case XQueryKind::kElement: {
        // Line 5: constructing output depends on the enclosing iteration.
        for (LPath& p : ForPaths()) global_.push_back(std::move(p));
        for (const ConstructedAttr& attr : q.attributes) {
          for (const AttrValuePart& part : attr.parts) {
            if (part.expr == nullptr) continue;
            std::vector<LPath> paths;
            XMLPROJ_RETURN_IF_ERROR(
                ExtractScalar(*part.expr, 0, true, &paths));
            for (LPath& p : paths) global_.push_back(std::move(p));
          }
        }
        if (q.content != nullptr) {
          std::vector<LPath> ignored;
          XMLPROJ_RETURN_IF_ERROR(ExtractQ(*q.content, 1, true, &ignored));
        }
        return Status::Ok();
      }
      case XQueryKind::kIf: {
        // Line 15.
        std::vector<LPath> ignored;
        XMLPROJ_RETURN_IF_ERROR(ExtractQ(*q.condition, 0, true, &ignored));
        XMLPROJ_RETURN_IF_ERROR(
            ExtractQ(*q.then_branch, 1, add_results, result));
        if (q.else_branch != nullptr) {
          XMLPROJ_RETURN_IF_ERROR(
              ExtractQ(*q.else_branch, 1, add_results, result));
        }
        for (LPath& p : AllBindingPaths()) global_.push_back(std::move(p));
        return Status::Ok();
      }
      case XQueryKind::kSome:
      case XQueryKind::kEvery: {
        // Quantifiers behave like a for whose body is consumed as a
        // boolean (m=0). For `some`, binding nodes that can never satisfy
        // the condition are irrelevant to the existential, so the §5
        // qualifier applies; for `every`, failing nodes *determine* the
        // answer and must be kept.
        std::vector<LPath> binding_paths;
        XMLPROJ_RETURN_IF_ERROR(
            ExtractQ(*q.binding, 0, /*add_results=*/false, &binding_paths));
        if (q.kind == XQueryKind::kSome &&
            options_.enable_for_if_heuristic &&
            q.body->kind == XQueryKind::kScalar) {
          std::vector<LPath> qualifier;
          XMLPROJ_ASSIGN_OR_RETURN(
              bool applies,
              ConditionQualifier(*q.body->scalar, q.variable, &qualifier));
          if (applies && !qualifier.empty()) {
            for (LPath& p : binding_paths) {
              if (p.steps.empty()) continue;
              for (const LPath& c : qualifier) {
                p.steps.back().cond.push_back(c);
              }
            }
          }
        }
        for (const LPath& p : binding_paths) global_.push_back(p);
        gamma_[q.variable].push_back(
            Binding{/*is_for=*/true, std::move(binding_paths)});
        std::vector<LPath> ignored;
        Status status = ExtractQ(*q.body, 0, true, &ignored);
        auto it = gamma_.find(q.variable);
        it->second.pop_back();
        if (it->second.empty()) gamma_.erase(it);
        return status;
      }
      case XQueryKind::kLet:
      case XQueryKind::kFor: {
        // Lines 16-17 plus the §5 heuristic.
        std::vector<LPath> binding_paths;
        XMLPROJ_RETURN_IF_ERROR(
            ExtractQ(*q.binding, 0, /*add_results=*/false, &binding_paths));

        const bool is_for = q.kind == XQueryKind::kFor;
        if (is_for) {
          // Candidate condition: a scalar `where`, or a body of the form
          // `if (C) then q' else ()`.
          const Expr* cond = nullptr;
          if (q.where != nullptr && q.where->kind == XQueryKind::kScalar) {
            cond = q.where->scalar.get();
          } else if (q.where == nullptr &&
                     q.body->kind == XQueryKind::kIf &&
                     q.body->condition->kind == XQueryKind::kScalar &&
                     (q.body->else_branch == nullptr ||
                      q.body->else_branch->kind == XQueryKind::kEmpty)) {
            cond = q.body->condition->scalar.get();
          }
          if (cond != nullptr && options_.enable_for_if_heuristic) {
            std::vector<LPath> qualifier;
            XMLPROJ_ASSIGN_OR_RETURN(
                bool applies, ConditionQualifier(*cond, q.variable,
                                                 &qualifier));
            if (applies && !qualifier.empty()) {
              for (LPath& p : binding_paths) {
                if (p.steps.empty()) continue;
                for (const LPath& c : qualifier) {
                  p.steps.back().cond.push_back(c);
                }
              }
            }
          }
        }

        for (const LPath& p : binding_paths) global_.push_back(p);
        gamma_[q.variable].push_back(
            Binding{is_for, std::move(binding_paths)});

        Status status = Status::Ok();
        if (q.where != nullptr) {
          std::vector<LPath> ignored;
          status = ExtractQ(*q.where, 0, true, &ignored);
          if (status.ok()) {
            for (LPath& p : AllBindingPaths()) {
              global_.push_back(std::move(p));
            }
          }
        }
        if (status.ok() && q.order_key != nullptr) {
          std::vector<LPath> key_paths;
          status = ExtractScalar(*q.order_key, 0, true, &key_paths);
          for (LPath& p : key_paths) global_.push_back(std::move(p));
        }
        if (status.ok()) {
          status = ExtractQ(*q.body, m, add_results, result);
        }

        auto it = gamma_.find(q.variable);
        it->second.pop_back();
        if (it->second.empty()) gamma_.erase(it);
        return status;
      }
    }
    return InternalError("unreachable query kind");
  }

  ExtractOptions options_;
  std::map<std::string, std::vector<Binding>> gamma_;
  std::vector<LPath> global_;
};

}  // namespace

Result<std::vector<LPath>> ExtractPaths(const XQueryExpr& query) {
  return ExtractPaths(query, ExtractOptions());
}

Result<std::vector<LPath>> ExtractPaths(const XQueryExpr& query,
                                        const ExtractOptions& options) {
  Extractor extractor(options);
  return extractor.Run(query);
}

Result<NameSet> InferProjectorForQuery(const Dtd& dtd,
                                       const XQueryExpr& query) {
  XMLPROJ_ASSIGN_OR_RETURN(std::vector<LPath> paths, ExtractPaths(query));
  ProjectorInference inference(dtd);
  return inference.InferForPaths(paths, /*materialize_result=*/false,
                                 /*start_at_document_node=*/true);
}

}  // namespace xmlproj
