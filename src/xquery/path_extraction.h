// XQuery path extraction — the function E of Figure 3 (paper §5).
//
// E(q, Γ, m) walks the FLWR query q with an environment Γ of variable
// bindings ((x; for P) / (x; let P)) and a materialization flag m, and
// produces the set of XPath^ℓ paths describing q's data needs. All
// returned paths are document-rooted; the projector for q is the union of
// the projectors of the extracted paths (projectors are closed by union).
//
// Deviations from the figure, both strengthening soundness:
//  - value-consuming operators (comparisons, arithmetic) and functions
//    (per the F table of §3.3) suffix their path operands with
//    descendant-or-self::node() / self::node() exactly as predicates do in
//    §3.3 — the figure's plain union would prune the text below compared
//    elements;
//  - attribute-valued operands skip the suffix (attributes live inline on
//    their element).
//
// The §5 heuristic is applied on the fly: for a clause
//     for x in Q (where C(x))? return (if C(x) then q else ())? q
// whose condition refers only to x and contains no other variables, the
// extracted binding paths receive the qualifier [or(P(C))], which lets the
// projector drop binding nodes that can never satisfy the condition
// instead of degenerating when Q ends in descendant-or-self::node().

#ifndef XMLPROJ_XQUERY_PATH_EXTRACTION_H_
#define XMLPROJ_XQUERY_PATH_EXTRACTION_H_

#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "xpath/xpathl.h"
#include "xquery/ast.h"

namespace xmlproj {

struct ExtractOptions {
  // The §5 for/if rewriting heuristic. Disabled only by the ablation
  // benchmark (bench/bench_ablation.cc) to quantify its effect.
  bool enable_for_if_heuristic = true;
};

// E(q, ∅, 1): the data-need paths of a closed query.
Result<std::vector<LPath>> ExtractPaths(const XQueryExpr& query);
Result<std::vector<LPath>> ExtractPaths(const XQueryExpr& query,
                                        const ExtractOptions& options);

// Convenience: extraction + projector inference (union over all extracted
// paths, document-rooted, no extra materialization — the m-flag already
// inserted the descendant-or-self steps).
Result<NameSet> InferProjectorForQuery(const Dtd& dtd,
                                       const XQueryExpr& query);

}  // namespace xmlproj

#endif  // XMLPROJ_XQUERY_PATH_EXTRACTION_H_
