// Parser for the FLWR-core XQuery dialect of ast.h.
//
// Grammar (whitespace-insensitive):
//   Query       ::= QuerySingle (',' QuerySingle)*
//   QuerySingle ::= FLWR | If | Constructor | '(' Query? ')' | Exp
//   FLWR        ::= (ForClause | LetClause)+ ('where' QuerySingle)?
//                   ('order' 'by' Exp ('ascending'|'descending')?)?
//                   'return' QuerySingle
//   ForClause   ::= 'for' '$'Name 'in' QuerySingle
//                   (',' '$'Name 'in' QuerySingle)*
//   LetClause   ::= 'let' '$'Name ':=' QuerySingle
//   If          ::= 'if' '(' Query ')' 'then' QuerySingle
//                   'else' QuerySingle
//   Constructor ::= '<'Tag (Attr)* ('/>' | '>' Content '</'Tag'>')
//   Content     ::= (text | '{' Query '}' | Constructor)*
//
// Scalar expressions (Exp) are delegated to the XPath parser
// (xpath/parser.h); their textual extent is found by scanning to the next
// top-level XQuery keyword or unbalanced delimiter. Consequently, element
// names that collide with XQuery keywords (return, where, order, ...)
// cannot be used inside paths — none of the benchmark schemas use such
// names. Element constructors cannot be nested inside scalar expressions
// (wrap them in a let binding instead), matching the paper's FLWR core.

#ifndef XMLPROJ_XQUERY_PARSER_H_
#define XMLPROJ_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace xmlproj {

Result<XQueryPtr> ParseXQuery(std::string_view text);

}  // namespace xmlproj

#endif  // XMLPROJ_XQUERY_PARSER_H_
