#include "xquery/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "xml/serializer.h"

namespace xmlproj {

size_t ConstructedNode::MemoryBytes() const {
  size_t bytes = sizeof(ConstructedNode) + tag.capacity();
  for (const auto& [name, value] : attributes) {
    bytes += name.capacity() + value.capacity();
  }
  bytes += children.capacity() * sizeof(Item);
  for (const Item& c : children) {
    if (c.kind == Item::Kind::kConstructed && c.constructed != nullptr) {
      bytes += c.constructed->MemoryBytes();
    }
    bytes += c.string.capacity();
  }
  return bytes;
}

Result<XPathValue> XQueryEvaluator::LookupVariable(
    std::string_view name) const {
  auto it = variables_.find(name);
  if (it == variables_.end() || it->second.empty()) {
    return NotFoundError("unbound variable $" + std::string(name));
  }
  const Sequence& seq = it->second.back();
  // Single atomics keep their kind; anything else becomes a node set.
  if (seq.size() == 1) {
    const Item& item = seq.front();
    switch (item.kind) {
      case Item::Kind::kString:
        return XPathValue::String(item.string);
      case Item::Kind::kNumber:
        return XPathValue::Number(item.number);
      case Item::Kind::kBool:
        return XPathValue::Bool(item.boolean);
      default:
        break;
    }
  }
  NodeList nodes;
  nodes.reserve(seq.size());
  for (const Item& item : seq) {
    if (item.kind == Item::Kind::kNode) {
      nodes.push_back(item.node);
    } else if (item.kind == Item::Kind::kConstructed) {
      return UnsupportedError(
          "navigation over constructed elements is outside the supported "
          "fragment (paper §5)");
    } else {
      return InvalidError(
          "a mixed atomic/node sequence cannot be used as a node set");
    }
  }
  return XPathValue::NodeSet(std::move(nodes));
}

Result<XPathValue> XQueryEvaluator::EvalScalarValue(const Expr& expr) {
  XPathEvaluator::Options options;
  options.variable_lookup = [this](std::string_view name) {
    return LookupVariable(name);
  };
  options.meter = meter_;
  XPathEvaluator eval(doc_, std::move(options));
  return eval.EvaluateExpr(expr, XNode{doc_.document_node(), -1});
}

Result<Sequence> XQueryEvaluator::EvalScalar(const Expr& expr) {
  // Bare variable references keep their sequence (which may hold
  // constructed items the XPath bridge cannot represent).
  if (expr.kind == ExprKind::kPath &&
      expr.path.start == PathStart::kVariable && expr.path.steps.empty()) {
    auto it = variables_.find(expr.path.variable);
    if (it == variables_.end() || it->second.empty()) {
      return NotFoundError("unbound variable $" + expr.path.variable);
    }
    return it->second.back();
  }
  XMLPROJ_ASSIGN_OR_RETURN(XPathValue value, EvalScalarValue(expr));
  Sequence out;
  switch (value.kind) {
    case ValueKind::kNodeSet:
      out.reserve(value.nodes.size());
      for (const XNode& n : value.nodes) out.push_back(Item::Node(n));
      break;
    case ValueKind::kBool:
      out.push_back(Item::Bool(value.boolean));
      break;
    case ValueKind::kNumber:
      out.push_back(Item::Number(value.number));
      break;
    case ValueKind::kString:
      out.push_back(Item::String(std::move(value.string)));
      break;
  }
  Meter(out.capacity() * sizeof(Item));
  Unmeter(out.capacity() * sizeof(Item));
  return out;
}

std::string XQueryEvaluator::ItemString(const Item& item) const {
  switch (item.kind) {
    case Item::Kind::kNode:
      if (item.node.attr >= 0) {
        return doc_.attr(item.node.node,
                         static_cast<uint32_t>(item.node.attr))
            .value;
      }
      return doc_.StringValue(item.node.node);
    case Item::Kind::kConstructed: {
      std::string out;
      for (const Item& c : item.constructed->children) {
        out += ItemString(c);
      }
      return out;
    }
    case Item::Kind::kString:
      return item.string;
    case Item::Kind::kNumber:
      return XPathNumberToString(item.number);
    case Item::Kind::kBool:
      return item.boolean ? "true" : "false";
  }
  return "";
}

double XQueryEvaluator::ItemNumber(const Item& item) const {
  if (item.kind == Item::Kind::kNumber) return item.number;
  if (item.kind == Item::Kind::kBool) return item.boolean ? 1 : 0;
  std::string s = ItemString(item);
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return std::nan("");
  return v;
}

Result<bool> XQueryEvaluator::EffectiveBooleanOf(const XQueryExpr& query) {
  if (query.kind == XQueryKind::kScalar) {
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, EvalScalarValue(*query.scalar));
    return XPathEvaluator::EffectiveBoolean(v);
  }
  XMLPROJ_ASSIGN_OR_RETURN(Sequence seq, Eval(query));
  if (seq.empty()) return false;
  if (seq.size() == 1) {
    const Item& item = seq.front();
    switch (item.kind) {
      case Item::Kind::kBool:
        return item.boolean;
      case Item::Kind::kNumber:
        return item.number != 0 && !std::isnan(item.number);
      case Item::Kind::kString:
        return !item.string.empty();
      default:
        return true;
    }
  }
  return true;
}

Result<Sequence> XQueryEvaluator::EvalFor(const XQueryExpr& query) {
  XMLPROJ_ASSIGN_OR_RETURN(Sequence binding, Eval(*query.binding));
  Sequence out;
  MeteredBytes binding_guard(meter_, binding.capacity() * sizeof(Item));

  struct Keyed {
    Sequence items;
    std::string key_string;
    double key_number = 0;
    bool key_is_number = false;
  };
  std::vector<Keyed> ordered;
  const bool ordering = query.order_key != nullptr;

  for (const Item& item : binding) {
    variables_[query.variable].push_back(Sequence{item});
    auto cleanup = [this, &query]() {
      auto it = variables_.find(query.variable);
      it->second.pop_back();
      if (it->second.empty()) variables_.erase(it);
    };
    if (query.where != nullptr) {
      auto keep = EffectiveBooleanOf(*query.where);
      if (!keep.ok()) {
        cleanup();
        return keep.status();
      }
      if (!*keep) {
        cleanup();
        continue;
      }
    }
    auto result = Eval(*query.body);
    if (!result.ok()) {
      cleanup();
      return result.status();
    }
    if (ordering) {
      Keyed k;
      auto key = EvalScalarValue(*query.order_key);
      if (!key.ok()) {
        cleanup();
        return key.status();
      }
      if (key->kind == ValueKind::kNumber) {
        k.key_is_number = true;
        k.key_number = key->number;
      } else {
        XPathEvaluator eval(doc_);
        k.key_string = eval.ToStringValue(*key);
        // Sort numerically when every key parses as a number.
        char* end = nullptr;
        double v = std::strtod(k.key_string.c_str(), &end);
        if (end != k.key_string.c_str() && *end == '\0') {
          k.key_is_number = true;
          k.key_number = v;
        }
      }
      k.items = std::move(*result);
      ordered.push_back(std::move(k));
    } else {
      out.insert(out.end(), std::make_move_iterator(result->begin()),
                 std::make_move_iterator(result->end()));
    }
    cleanup();
  }

  if (ordering) {
    std::stable_sort(
        ordered.begin(), ordered.end(),
        [&query](const Keyed& a, const Keyed& b) {
          int cmp;
          if (a.key_is_number && b.key_is_number) {
            cmp = a.key_number < b.key_number   ? -1
                  : a.key_number > b.key_number ? 1
                                                : 0;
          } else {
            cmp = a.key_string.compare(b.key_string);
          }
          return query.order_descending ? cmp > 0 : cmp < 0;
        });
    for (Keyed& k : ordered) {
      out.insert(out.end(), std::make_move_iterator(k.items.begin()),
                 std::make_move_iterator(k.items.end()));
    }
  }
  Meter(out.capacity() * sizeof(Item));
  Unmeter(out.capacity() * sizeof(Item));
  return out;
}

Result<Sequence> XQueryEvaluator::EvalElement(const XQueryExpr& query) {
  auto node = std::make_shared<ConstructedNode>();
  node->tag = query.tag;
  for (const ConstructedAttr& attr : query.attributes) {
    std::string value;
    for (const AttrValuePart& part : attr.parts) {
      if (part.expr == nullptr) {
        value += part.text;
      } else {
        XMLPROJ_ASSIGN_OR_RETURN(Sequence seq, EvalScalar(*part.expr));
        for (size_t i = 0; i < seq.size(); ++i) {
          if (i > 0) value += " ";
          value += ItemString(seq[i]);
        }
      }
    }
    node->attributes.emplace_back(attr.name, std::move(value));
  }
  if (query.content != nullptr) {
    XMLPROJ_ASSIGN_OR_RETURN(node->children, Eval(*query.content));
  }
  Meter(node->MemoryBytes());
  Unmeter(node->MemoryBytes());
  Item item;
  item.kind = Item::Kind::kConstructed;
  item.constructed = std::move(node);
  return Sequence{std::move(item)};
}

Result<Sequence> XQueryEvaluator::Eval(const XQueryExpr& query) {
  switch (query.kind) {
    case XQueryKind::kEmpty:
      return Sequence{};
    case XQueryKind::kSequence: {
      Sequence out;
      for (const XQueryPtr& item : query.items) {
        XMLPROJ_ASSIGN_OR_RETURN(Sequence part, Eval(*item));
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      Meter(out.capacity() * sizeof(Item));
      Unmeter(out.capacity() * sizeof(Item));
      return out;
    }
    case XQueryKind::kElement:
      return EvalElement(query);
    case XQueryKind::kText:
      return Sequence{Item::String(query.text)};
    case XQueryKind::kFor:
      return EvalFor(query);
    case XQueryKind::kLet: {
      XMLPROJ_ASSIGN_OR_RETURN(Sequence value, Eval(*query.binding));
      MeteredBytes guard(meter_, value.capacity() * sizeof(Item));
      variables_[query.variable].push_back(std::move(value));
      auto result = Eval(*query.body);
      auto it = variables_.find(query.variable);
      it->second.pop_back();
      if (it->second.empty()) variables_.erase(it);
      return result;
    }
    case XQueryKind::kIf: {
      XMLPROJ_ASSIGN_OR_RETURN(bool cond,
                               EffectiveBooleanOf(*query.condition));
      if (cond) return Eval(*query.then_branch);
      if (query.else_branch == nullptr) return Sequence{};
      return Eval(*query.else_branch);
    }
    case XQueryKind::kScalar:
      return EvalScalar(*query.scalar);
    case XQueryKind::kSome:
    case XQueryKind::kEvery: {
      XMLPROJ_ASSIGN_OR_RETURN(Sequence binding, Eval(*query.binding));
      MeteredBytes guard(meter_, binding.capacity() * sizeof(Item));
      const bool is_every = query.kind == XQueryKind::kEvery;
      bool verdict = is_every;
      for (const Item& item : binding) {
        variables_[query.variable].push_back(Sequence{item});
        auto holds = EffectiveBooleanOf(*query.body);
        auto it = variables_.find(query.variable);
        it->second.pop_back();
        if (it->second.empty()) variables_.erase(it);
        XMLPROJ_RETURN_IF_ERROR(holds.status());
        if (is_every && !*holds) {
          verdict = false;
          break;
        }
        if (!is_every && *holds) {
          verdict = true;
          break;
        }
      }
      return Sequence{Item::Bool(verdict)};
    }
  }
  return InternalError("unreachable query kind");
}

Result<Sequence> XQueryEvaluator::Evaluate(const XQueryExpr& query) {
  variables_.clear();
  return Eval(query);
}

void XQueryEvaluator::SerializeItem(const Item& item, bool* last_was_atomic,
                                    std::string* out) const {
  switch (item.kind) {
    case Item::Kind::kNode:
      if (item.node.attr >= 0) {
        // Serializing a bare attribute: name="value" form.
        const Attribute& a =
            doc_.attr(item.node.node, static_cast<uint32_t>(item.node.attr));
        out->append(doc_.symbols().NameOf(a.name));
        out->append("=\"");
        AppendEscaped(a.value, /*for_attribute=*/true, out);
        out->append("\"");
      } else {
        out->append(SerializeSubtree(doc_, item.node.node));
      }
      *last_was_atomic = false;
      break;
    case Item::Kind::kConstructed: {
      const ConstructedNode& n = *item.constructed;
      out->push_back('<');
      out->append(n.tag);
      for (const auto& [name, value] : n.attributes) {
        out->push_back(' ');
        out->append(name);
        out->append("=\"");
        AppendEscaped(value, /*for_attribute=*/true, out);
        out->push_back('"');
      }
      if (n.children.empty()) {
        out->append("/>");
      } else {
        out->push_back('>');
        bool atomic = false;
        for (const Item& c : n.children) {
          SerializeItem(c, &atomic, out);
        }
        out->append("</");
        out->append(n.tag);
        out->push_back('>');
      }
      *last_was_atomic = false;
      break;
    }
    default: {
      if (*last_was_atomic) out->push_back(' ');
      AppendEscaped(ItemString(item), /*for_attribute=*/false, out);
      *last_was_atomic = true;
      break;
    }
  }
}

std::string XQueryEvaluator::Serialize(const Sequence& sequence) const {
  std::string out;
  bool last_was_atomic = false;
  for (const Item& item : sequence) {
    SerializeItem(item, &last_was_atomic, &out);
  }
  return out;
}

}  // namespace xmlproj
