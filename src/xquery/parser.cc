#include "xquery/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/strings.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xmlproj {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

// Keywords that terminate a scalar-expression scan at nesting depth 0.
bool IsStopKeyword(std::string_view word) {
  return word == "return" || word == "where" || word == "order" ||
         word == "for" || word == "let" || word == "if" ||
         word == "then" || word == "else" || word == "in" ||
         word == "ascending" || word == "descending" || word == "by" ||
         word == "stable" || word == "some" || word == "every" ||
         word == "satisfies";
}

class XQueryParser {
 public:
  explicit XQueryParser(std::string_view input) : input_(input) {}

  Result<XQueryPtr> Run() {
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr q, ParseQuery());
    SkipSpace();
    if (!AtEnd()) return Error("trailing content after query");
    return q;
  }

 private:
  Status Error(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') ++line;
    }
    return ParseError(
        StringPrintf("XQuery line %zu: %s", line, message.c_str()));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void SkipSpace() {
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      } else if (Peek() == '(' && Peek(1) == ':') {
        // XQuery comment (: ... :), possibly nested.
        int depth = 0;
        while (!AtEnd()) {
          if (Peek() == '(' && Peek(1) == ':') {
            ++depth;
            pos_ += 2;
          } else if (Peek() == ':' && Peek(1) == ')') {
            --depth;
            pos_ += 2;
            if (depth == 0) break;
          } else {
            ++pos_;
          }
        }
      } else {
        break;
      }
    }
  }

  // Returns the keyword starting at pos_ (after SkipSpace), or empty.
  std::string_view PeekWord() const {
    if (AtEnd() || !IsNameStart(Peek())) return {};
    size_t end = pos_;
    while (end < input_.size() && IsNameChar(input_[end])) ++end;
    return input_.substr(pos_, end - pos_);
  }

  bool EatKeyword(std::string_view word) {
    SkipSpace();
    if (PeekWord() == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseVariableName() {
    SkipSpace();
    if (AtEnd() || Peek() != '$') return Error("expected '$variable'");
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a variable name after '$'");
    return std::string(input_.substr(start, pos_ - start));
  }

  // --- Scalar expressions ----------------------------------------------

  // Finds the end of a scalar expression starting at pos_: scans until a
  // stop keyword, ',', ')', '}', ']' at depth 0, or end of input.
  size_t ScalarExtent() const {
    size_t i = pos_;
    int depth = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (c == '(' && i + 1 < input_.size() && input_[i + 1] == ':') {
        // Skip an XQuery comment (nested).
        int comment_depth = 0;
        while (i < input_.size()) {
          if (input_[i] == '(' && i + 1 < input_.size() &&
              input_[i + 1] == ':') {
            ++comment_depth;
            i += 2;
          } else if (input_[i] == ':' && i + 1 < input_.size() &&
                     input_[i + 1] == ')') {
            --comment_depth;
            i += 2;
            if (comment_depth == 0) break;
          } else {
            ++i;
          }
        }
        continue;
      }
      if (c == '\'' || c == '"') {
        size_t close = input_.find(c, i + 1);
        if (close == std::string_view::npos) return input_.size();
        i = close + 1;
        continue;
      }
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
        ++i;
        continue;
      }
      if (c == ')' || c == ']' || c == '}') {
        if (depth == 0) return i;
        --depth;
        ++i;
        continue;
      }
      if (c == ',' && depth == 0) return i;
      if (IsNameStart(c) && depth == 0 &&
          (i == pos_ || !IsNameChar(input_[i - 1]))) {
        size_t end = i;
        while (end < input_.size() && IsNameChar(input_[end])) ++end;
        std::string_view word = input_.substr(i, end - i);
        if (IsStopKeyword(word)) return i;
        i = end;
        continue;
      }
      ++i;
    }
    return input_.size();
  }

  Result<ExprPtr> ParseScalar() {
    SkipSpace();
    size_t end = ScalarExtent();
    std::string_view raw = input_.substr(pos_, end - pos_);
    // Blank out comments so the XPath tokenizer never sees them.
    std::string text(raw);
    for (size_t i = 0; i + 1 < text.size();) {
      if (text[i] == '(' && text[i + 1] == ':') {
        int depth = 0;
        size_t j = i;
        while (j < text.size()) {
          if (j + 1 < text.size() && text[j] == '(' && text[j + 1] == ':') {
            ++depth;
            text[j] = text[j + 1] = ' ';
            j += 2;
          } else if (j + 1 < text.size() && text[j] == ':' &&
                     text[j + 1] == ')') {
            --depth;
            text[j] = text[j + 1] = ' ';
            j += 2;
            if (depth == 0) break;
          } else {
            text[j] = ' ';
            ++j;
          }
        }
        i = j;
      } else {
        ++i;
      }
    }
    if (StripWhitespace(text).empty()) {
      return Error("expected an expression");
    }
    auto expr = ParseXPathExpr(text);
    if (!expr.ok()) return expr.status();
    pos_ = end;
    return std::move(expr).value();
  }

  // --- Query expressions -------------------------------------------------

  Result<XQueryPtr> ParseQuery() {
    std::vector<XQueryPtr> items;
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr first, ParseQuerySingle());
    items.push_back(std::move(first));
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != ',') break;
      ++pos_;
      XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr next, ParseQuerySingle());
      items.push_back(std::move(next));
    }
    if (items.size() == 1) return std::move(items[0]);
    auto seq = std::make_unique<XQueryExpr>();
    seq->kind = XQueryKind::kSequence;
    seq->items = std::move(items);
    return XQueryPtr(std::move(seq));
  }

  Result<XQueryPtr> ParseQuerySingle() {
    SkipSpace();
    if (AtEnd()) return Error("expected a query expression");
    std::string_view word = PeekWord();
    if (word == "for" || word == "let") return ParseFlwr();
    if (word == "if") return ParseIf();
    if (word == "some" || word == "every") return ParseQuantified();
    if (Peek() == '<' && IsNameStart(Peek(1))) return ParseConstructor();
    if (Peek() == '(') {
      // '()' is the empty sequence; '(' followed by a structural query is
      // a parenthesized query; anything else is a scalar expression whose
      // parentheses the XPath parser handles.
      size_t save = pos_;
      ++pos_;
      SkipSpace();
      if (Peek() == ')') {
        ++pos_;
        return MakeEmptyQuery();
      }
      std::string_view inner = PeekWord();
      if (inner == "for" || inner == "let" || inner == "if" ||
          inner == "some" || inner == "every" ||
          (Peek() == '<' && IsNameStart(Peek(1)))) {
        XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr q, ParseQuery());
        SkipSpace();
        if (AtEnd() || Peek() != ')') return Error("expected ')'");
        ++pos_;
        return q;
      }
      pos_ = save;
    }
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr scalar, ParseScalar());
    return MakeScalarQuery(std::move(scalar));
  }

  Result<XQueryPtr> ParseFlwr() {
    struct Clause {
      bool is_for;
      std::string variable;
      XQueryPtr binding;
    };
    std::vector<Clause> clauses;
    while (true) {
      if (EatKeyword("for")) {
        while (true) {
          Clause c;
          c.is_for = true;
          XMLPROJ_ASSIGN_OR_RETURN(c.variable, ParseVariableName());
          if (!EatKeyword("in")) return Error("expected 'in'");
          XMLPROJ_ASSIGN_OR_RETURN(c.binding, ParseQuerySingle());
          clauses.push_back(std::move(c));
          SkipSpace();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
        continue;
      }
      if (EatKeyword("let")) {
        Clause c;
        c.is_for = false;
        XMLPROJ_ASSIGN_OR_RETURN(c.variable, ParseVariableName());
        SkipSpace();
        if (Peek() != ':' || Peek(1) != '=') return Error("expected ':='");
        pos_ += 2;
        XMLPROJ_ASSIGN_OR_RETURN(c.binding, ParseQuerySingle());
        clauses.push_back(std::move(c));
        continue;
      }
      break;
    }
    if (clauses.empty()) return Error("expected 'for' or 'let'");

    XQueryPtr where;
    if (EatKeyword("where")) {
      XMLPROJ_ASSIGN_OR_RETURN(where, ParseQuerySingle());
    }
    ExprPtr order_key;
    bool order_descending = false;
    EatKeyword("stable");
    if (EatKeyword("order")) {
      if (!EatKeyword("by")) return Error("expected 'by' after 'order'");
      XMLPROJ_ASSIGN_OR_RETURN(order_key, ParseScalar());
      if (EatKeyword("descending")) {
        order_descending = true;
      } else {
        EatKeyword("ascending");
      }
    }
    if (!EatKeyword("return")) return Error("expected 'return'");
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr body, ParseQuerySingle());

    // Build nested For/Let nodes, innermost first. `where` and `order by`
    // attach to the innermost *for* clause (trailing lets become part of
    // its body), which matches tuple-stream semantics for filtering;
    // ordering across multiple for-clauses is lexicographic by clause,
    // which the benchmark queries (single for) do not exercise. A where
    // or order key may not reference let-variables introduced after the
    // last for clause.
    size_t attach = clauses.size();
    for (size_t i = clauses.size(); i-- > 0;) {
      if (clauses[i].is_for) {
        attach = i;
        break;
      }
    }
    if (attach == clauses.size() && order_key != nullptr) {
      return Error("'order by' requires a 'for' clause");
    }
    for (size_t i = clauses.size(); i-- > 0;) {
      Clause& c = clauses[i];
      auto node = std::make_unique<XQueryExpr>();
      node->kind = c.is_for ? XQueryKind::kFor : XQueryKind::kLet;
      node->variable = std::move(c.variable);
      node->binding = std::move(c.binding);
      node->body = std::move(body);
      if (i == attach) {
        node->where = std::move(where);
        node->order_key = std::move(order_key);
        node->order_descending = order_descending;
      } else if (i + 1 == clauses.size() && attach == clauses.size() &&
                 where != nullptr) {
        // where on a pure-let FLWR: wrap the body in an if.
        auto cond = std::make_unique<XQueryExpr>();
        cond->kind = XQueryKind::kIf;
        cond->condition = std::move(where);
        cond->then_branch = std::move(node->body);
        cond->else_branch = MakeEmptyQuery();
        node->body = std::move(cond);
      }
      body = std::move(node);
    }
    return body;
  }

  Result<XQueryPtr> ParseQuantified() {
    bool is_every = false;
    if (EatKeyword("some")) {
      is_every = false;
    } else if (EatKeyword("every")) {
      is_every = true;
    } else {
      return Error("expected 'some' or 'every'");
    }
    auto node = std::make_unique<XQueryExpr>();
    node->kind = is_every ? XQueryKind::kEvery : XQueryKind::kSome;
    XMLPROJ_ASSIGN_OR_RETURN(node->variable, ParseVariableName());
    if (!EatKeyword("in")) return Error("expected 'in'");
    XMLPROJ_ASSIGN_OR_RETURN(node->binding, ParseQuerySingle());
    if (!EatKeyword("satisfies")) return Error("expected 'satisfies'");
    XMLPROJ_ASSIGN_OR_RETURN(node->body, ParseQuerySingle());
    return XQueryPtr(std::move(node));
  }

  Result<XQueryPtr> ParseIf() {
    if (!EatKeyword("if")) return Error("expected 'if'");
    SkipSpace();
    if (Peek() != '(') return Error("expected '(' after 'if'");
    ++pos_;
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr condition, ParseQuery());
    SkipSpace();
    if (Peek() != ')') return Error("expected ')' after if-condition");
    ++pos_;
    if (!EatKeyword("then")) return Error("expected 'then'");
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr then_branch, ParseQuerySingle());
    if (!EatKeyword("else")) return Error("expected 'else'");
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr else_branch, ParseQuerySingle());
    auto node = std::make_unique<XQueryExpr>();
    node->kind = XQueryKind::kIf;
    node->condition = std::move(condition);
    node->then_branch = std::move(then_branch);
    node->else_branch = std::move(else_branch);
    return XQueryPtr(std::move(node));
  }

  Result<XQueryPtr> ParseConstructor() {
    // pos_ is at '<'.
    ++pos_;
    size_t tag_start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == tag_start) return Error("expected an element name");
    auto node = std::make_unique<XQueryExpr>();
    node->kind = XQueryKind::kElement;
    node->tag = std::string(input_.substr(tag_start, pos_ - tag_start));

    // Attributes.
    while (true) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated element constructor");
      if (Peek() == '>' || Peek() == '/') break;
      ConstructedAttr attr;
      size_t name_start = pos_;
      while (!AtEnd() && IsNameChar(Peek())) ++pos_;
      if (pos_ == name_start) return Error("expected an attribute name");
      attr.name = std::string(input_.substr(name_start, pos_ - name_start));
      SkipSpace();
      if (Peek() != '=') return Error("expected '=' in attribute");
      ++pos_;
      SkipSpace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected a quoted attribute value");
      }
      ++pos_;
      std::string literal;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '{') {
          if (!literal.empty()) {
            AttrValuePart part;
            part.text = std::move(literal);
            literal.clear();
            attr.parts.push_back(std::move(part));
          }
          ++pos_;
          XMLPROJ_ASSIGN_OR_RETURN(ExprPtr expr, ParseScalar());
          SkipSpace();
          if (Peek() != '}') return Error("expected '}'");
          ++pos_;
          AttrValuePart part;
          part.expr = std::move(expr);
          attr.parts.push_back(std::move(part));
        } else {
          literal.push_back(Peek());
          ++pos_;
        }
      }
      if (AtEnd()) return Error("unterminated attribute value");
      ++pos_;  // closing quote
      if (!literal.empty()) {
        AttrValuePart part;
        part.text = std::move(literal);
        attr.parts.push_back(std::move(part));
      }
      node->attributes.push_back(std::move(attr));
    }

    if (Peek() == '/') {
      ++pos_;
      if (Peek() != '>') return Error("expected '/>'");
      ++pos_;
      return XQueryPtr(std::move(node));
    }
    ++pos_;  // '>'

    // Content: text runs, embedded queries, nested constructors.
    std::vector<XQueryPtr> content;
    std::string text;
    auto flush_text = [&content, &text]() {
      if (IsAllXmlWhitespace(text)) {
        text.clear();
        return;
      }
      auto t = std::make_unique<XQueryExpr>();
      t->kind = XQueryKind::kText;
      t->text = std::move(text);
      text.clear();
      content.push_back(std::move(t));
    };
    while (true) {
      if (AtEnd()) return Error("unterminated element constructor");
      char c = Peek();
      if (c == '<') {
        if (Peek(1) == '/') {
          flush_text();
          pos_ += 2;
          size_t close_start = pos_;
          while (!AtEnd() && IsNameChar(Peek())) ++pos_;
          std::string_view close =
              input_.substr(close_start, pos_ - close_start);
          if (close != node->tag) {
            return Error("mismatched closing tag </" + std::string(close) +
                         ">");
          }
          SkipSpace();
          if (Peek() != '>') return Error("expected '>'");
          ++pos_;
          break;
        }
        if (!IsNameStart(Peek(1))) return Error("stray '<' in content");
        flush_text();
        XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr child, ParseConstructor());
        content.push_back(std::move(child));
      } else if (c == '{') {
        flush_text();
        ++pos_;
        XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr q, ParseQuery());
        SkipSpace();
        if (Peek() != '}') return Error("expected '}'");
        ++pos_;
        content.push_back(std::move(q));
      } else if (c == '&') {
        size_t end = input_.find(';', pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated entity reference");
        }
        auto decoded =
            DecodeXmlReferences(input_.substr(pos_, end - pos_ + 1));
        if (!decoded.ok()) return decoded.status();
        text += *decoded;
        pos_ = end + 1;
      } else {
        text.push_back(c);
        ++pos_;
      }
    }

    if (content.size() == 1) {
      node->content = std::move(content[0]);
    } else if (!content.empty()) {
      auto seq = std::make_unique<XQueryExpr>();
      seq->kind = XQueryKind::kSequence;
      seq->items = std::move(content);
      node->content = std::move(seq);
    }
    return XQueryPtr(std::move(node));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<XQueryPtr> ParseXQuery(std::string_view text) {
  XQueryParser parser(text);
  return parser.Run();
}

}  // namespace xmlproj
