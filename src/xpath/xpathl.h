// XPath^ℓ — the analyzable fragment (paper §3.1–3.2).
//
//   Path  ::= Step | Step[Cond] | Path/Path
//   Step  ::= Axis :: Test      Axis ∈ {child, descendant, self, parent,
//                                       ancestor} (+ the -or-self variants,
//                                       which §3.1 omits "for presentation"
//                                       but the implementation supports)
//   Test  ::= tag | node | text     (plus the element() wildcard)
//   Cond  ::= SPath | Cond or Cond  (disjunction of *simple* paths:
//                                    conditions are not nested)
//
// LPath is the input language of the static analysis (projection/): full
// XPath and XQuery are compiled into it by approximate.h and
// xquery/path_extraction.h.

#ifndef XMLPROJ_XPATH_XPATHL_H_
#define XMLPROJ_XPATH_XPATHL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"

namespace xmlproj {

struct LPath;

struct LStep {
  Axis axis = Axis::kChild;          // must satisfy IsLAxis()
  TestKind test = TestKind::kNode;
  std::string tag;                   // TestKind::kName only
  // Disjunction of simple paths; empty means no condition. Simple means:
  // every step in every path has an empty cond.
  std::vector<LPath> cond;
};

struct LPath {
  std::vector<LStep> steps;
};

// The axes admitted by XPath^ℓ.
bool IsLAxis(Axis axis);

// True if every step of the path (recursively) carries no condition.
bool IsSimplePath(const LPath& path);

// Validates the XPath^ℓ well-formedness rules: only ℓ axes, conditions
// only contain simple paths.
Status ValidateLPath(const LPath& path);

std::string ToString(const LPath& path);

// Convenience constructors.
LStep MakeLStep(Axis axis, TestKind test, std::string tag = "");
LPath MakeLPath(std::vector<LStep> steps);

// Strict conversion from a parsed location path: fails if the query is not
// already in XPath^ℓ (use approximate.h for arbitrary queries). `path`
// must be relative (PathStart::kContext).
Result<LPath> ConvertToLPath(const LocationPath& path);

// Parses text directly into XPath^ℓ (strict). For tests and examples.
Result<LPath> ParseLPath(std::string_view text);

// Def 4.6: a query is strongly specified iff (i) its conditions use no
// backward axes, (ii) no two consecutive (possibly conditional) steps
// have a node() test — along the query and along condition paths — and
// (iii) every conditional step carries at most one condition path, which
// does not end in a node() test. Together with the Def 4.3 DTD properties
// this is the paper's sufficient condition for the inferred projector to
// be *optimal* (Theorem 4.7).
bool IsStronglySpecified(const LPath& path);

}  // namespace xmlproj

#endif  // XMLPROJ_XPATH_XPATHL_H_
