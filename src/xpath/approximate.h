// Sound approximation of arbitrary XPath queries into XPath^ℓ
// (paper §3.3 and §4.3).
//
// Given a query Q, produces a XPath^ℓ path P whose inferred projector is
// sound for Q:
//   - missing axes are rewritten (§4.3): following/preceding via the W3C
//     expansion into ancestor-or-self + sibling + descendant-or-self, then
//     the sibling axes are approximated by parent::node/child::Test;
//     attribute steps collapse onto their element (attributes are stored
//     inline and survive whenever their element does);
//   - every predicate Exp is approximated by a condition Cond — a
//     disjunction of simple paths — via the path-extraction function P,
//     with the per-function table F choosing between a trailing self::node
//     (only the node itself is needed: count, not, position, ...) and
//     descendant-or-self::node (the whole value is needed: string
//     comparisons, sum, contains, ...). Non-structural conditions
//     contribute the always-true path self::node so they never restrict
//     the projector (they only add data needs).
//
// Absolute paths nested inside predicates cannot be expressed as XPath^ℓ
// conditions (conditions are relative); they are promoted to extra
// root-level paths. Variable-rooted paths inside predicates are reported
// to the caller (the XQuery extractor resolves them against its
// environment Γ).

#ifndef XMLPROJ_XPATH_APPROXIMATE_H_
#define XMLPROJ_XPATH_APPROXIMATE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"
#include "xpath/xpathl.h"

namespace xmlproj {

struct ApproximatedQuery {
  // The XPath^ℓ approximation of the query spine.
  LPath main;

  // True when `main` must be analyzed from the document node (#document
  // grammar name) — i.e. the query was absolute. Otherwise it is analyzed
  // from the root element.
  bool from_document_node = false;

  // Document-rooted paths promoted from absolute paths inside predicates;
  // each must be analyzed as an additional query path (from the document
  // node).
  std::vector<LPath> extra_paths;

  // Variable-rooted paths found inside predicates: `relative` must be
  // re-rooted at the variable's binding path by the caller.
  struct VarCondition {
    std::string variable;
    LPath relative;
  };
  std::vector<VarCondition> var_conditions;
};

// Approximates a full query. `q.start` may be kRoot or kContext (a context
// start is interpreted as the root element, the paper's evaluation root);
// kVariable starts are rejected here — the XQuery extractor handles them.
Result<ApproximatedQuery> ApproximateQuery(const LocationPath& q);

// Lower-level entry point used by the XQuery path extractor: approximates
// a step sequence without the absolute-start remapping, appending results
// to *out (extras/vars go to the same ApproximatedQuery).
Status ApproximateSteps(std::span<const Step> steps, ApproximatedQuery* acc,
                        LPath* out);

// The condition-extraction function P (§3.3): the set of simple paths
// whose disjunction soundly approximates predicate `expr`. Returns at
// least one path (self::node when the predicate is purely
// non-structural). Extras/vars accumulate into *acc.
Result<std::vector<LPath>> ExtractConditionPaths(const Expr& expr,
                                                 ApproximatedQuery* acc);

// The F table (§3.3): true if evaluating argument `index` (0-based) of
// function `name` requires the full subtree (descendant-or-self::node);
// false when the node itself suffices (self::node).
bool FunctionNeedsSubtree(std::string_view name, size_t index);

}  // namespace xmlproj

#endif  // XMLPROJ_XPATH_APPROXIMATE_H_
