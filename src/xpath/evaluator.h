// XPath evaluator over the Document data model.
//
// This is the in-repo main-memory query engine: the reproduction's
// stand-in for Galax (§6). It implements the W3C XPath 1.0 semantics for
// the fragment of ast.h — node-set steps with proximity-position
// predicates, existential comparisons, the core function library — plus
// attribute pseudo-nodes (an XNode addresses either a tree node or one
// attribute of an element).
//
// Soundness checks in the test-suite run queries through this evaluator on
// original and pruned documents and compare results (Theorem 4.5).

#ifndef XMLPROJ_XPATH_EVALUATOR_H_
#define XMLPROJ_XPATH_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/memory_meter.h"
#include "common/status.h"
#include "xml/document.h"
#include "xpath/ast.h"

namespace xmlproj {

// A node reference: a tree node, or attribute `attr` (index within the
// element) when attr >= 0. Ordered by document order.
struct XNode {
  NodeId node = kNullNode;
  int32_t attr = -1;

  friend bool operator==(const XNode& a, const XNode& b) {
    return a.node == b.node && a.attr == b.attr;
  }
  friend bool operator<(const XNode& a, const XNode& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.attr < b.attr;
  }
};

using NodeList = std::vector<XNode>;

enum class ValueKind : uint8_t { kNodeSet, kBool, kNumber, kString };

struct XPathValue {
  ValueKind kind = ValueKind::kNodeSet;
  NodeList nodes;
  bool boolean = false;
  double number = 0;
  std::string string;

  static XPathValue Bool(bool v) {
    XPathValue out;
    out.kind = ValueKind::kBool;
    out.boolean = v;
    return out;
  }
  static XPathValue Number(double v) {
    XPathValue out;
    out.kind = ValueKind::kNumber;
    out.number = v;
    return out;
  }
  static XPathValue String(std::string v) {
    XPathValue out;
    out.kind = ValueKind::kString;
    out.string = std::move(v);
    return out;
  }
  static XPathValue NodeSet(NodeList nodes) {
    XPathValue out;
    out.kind = ValueKind::kNodeSet;
    out.nodes = std::move(nodes);
    return out;
  }
};

// XPath number -> string per the XPath 1.0 rules (integral values print
// without a decimal point).
std::string XPathNumberToString(double v);

class XPathEvaluator {
 public:
  struct Options {
    // Resolves $variables (set by the XQuery evaluator). May be null.
    std::function<Result<XPathValue>(std::string_view)> variable_lookup;
    // Optional memory accounting.
    MemoryMeter* meter = nullptr;
  };

  explicit XPathEvaluator(const Document& doc) : doc_(doc) {}
  XPathEvaluator(const Document& doc, Options options);

  // Evaluates `path` with the given context node list (document node for
  // absolute evaluation). Result is in document order, duplicate-free.
  Result<NodeList> EvaluatePath(const LocationPath& path,
                                const NodeList& context);

  // Convenience: evaluates an absolute or root-context path.
  Result<NodeList> EvaluateFromRoot(const LocationPath& path);

  // Full expression evaluation with a single context node (position 1 of 1).
  Result<XPathValue> EvaluateExpr(const Expr& expr, XNode context);

  // --- Value accessors (public: shared with the XQuery evaluator) -------
  std::string StringValueOf(XNode n) const;
  double NumberValueOf(XNode n) const;
  static bool EffectiveBoolean(const XPathValue& v);
  double ToNumber(const XPathValue& v) const;
  std::string ToStringValue(const XPathValue& v) const;

  const Document& doc() const { return doc_; }

 private:
  struct EvalContext {
    XNode node;
    size_t position = 1;  // 1-based proximity position
    size_t size = 1;
  };

  Result<XPathValue> Eval(const Expr& expr, const EvalContext& ctx);
  Result<NodeList> EvalSteps(const LocationPath& path, NodeList context);
  Result<NodeList> EvalStep(const Step& step, const NodeList& context);
  // Nodes selected by `axis`+`test` from `origin`, in proximity order
  // (document order for forward axes, reverse for reverse axes).
  void SelectAxis(XNode origin, Axis axis, const NodeTest& test,
                  NodeList* out) const;
  bool MatchesTest(XNode n, const NodeTest& test) const;
  Result<XPathValue> EvalFunction(const Expr& expr, const EvalContext& ctx);
  Result<XPathValue> EvalComparison(const Expr& expr,
                                    const EvalContext& ctx);
  Result<XPathValue> EvalBinary(const Expr& expr, const EvalContext& ctx);

  const Document& doc_;
  Options options_;
};

// Sorts into document order and removes duplicates.
void NormalizeNodeList(NodeList* nodes);

}  // namespace xmlproj

#endif  // XMLPROJ_XPATH_EVALUATOR_H_
