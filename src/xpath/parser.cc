#include "xpath/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"

namespace xmlproj {
namespace {

enum class TokKind : uint8_t {
  kEnd,
  kName,      // NCName (possibly an operator keyword; disambiguated later)
  kNumber,
  kLiteral,   // quoted string
  kVariable,  // $name
  kSlash,
  kDoubleSlash,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kDot,
  kDotDot,
  kAt,
  kComma,
  kColonColon,
  kPipe,
  kPlus,
  kMinus,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0;
  size_t offset = 0;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&tokens](TokKind kind, std::string tok_text, size_t offset) {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '/':
        if (i + 1 < text.size() && text[i + 1] == '/') {
          push(TokKind::kDoubleSlash, "//", start);
          i += 2;
        } else {
          push(TokKind::kSlash, "/", start);
          ++i;
        }
        continue;
      case '(':
        push(TokKind::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokKind::kRParen, ")", start);
        ++i;
        continue;
      case '[':
        push(TokKind::kLBracket, "[", start);
        ++i;
        continue;
      case ']':
        push(TokKind::kRBracket, "]", start);
        ++i;
        continue;
      case '@':
        push(TokKind::kAt, "@", start);
        ++i;
        continue;
      case ',':
        push(TokKind::kComma, ",", start);
        ++i;
        continue;
      case '|':
        push(TokKind::kPipe, "|", start);
        ++i;
        continue;
      case '+':
        push(TokKind::kPlus, "+", start);
        ++i;
        continue;
      case '-':
        push(TokKind::kMinus, "-", start);
        ++i;
        continue;
      case '*':
        push(TokKind::kStar, "*", start);
        ++i;
        continue;
      case '=':
        push(TokKind::kEq, "=", start);
        ++i;
        continue;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokKind::kNe, "!=", start);
          i += 2;
          continue;
        }
        return ParseError("XPath: '!' without '='");
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokKind::kLe, "<=", start);
          i += 2;
        } else {
          push(TokKind::kLt, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokKind::kGt, ">", start);
          ++i;
        }
        continue;
      case ':':
        if (i + 1 < text.size() && text[i + 1] == ':') {
          push(TokKind::kColonColon, "::", start);
          i += 2;
          continue;
        }
        return ParseError("XPath: single ':' outside an axis specifier");
      case '.':
        if (i + 1 < text.size() && text[i + 1] == '.') {
          push(TokKind::kDotDot, "..", start);
          i += 2;
          continue;
        }
        if (i + 1 < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
          break;  // fall through to number scanning
        }
        push(TokKind::kDot, ".", start);
        ++i;
        continue;
      case '\'':
      case '"': {
        size_t end = text.find(c, i + 1);
        if (end == std::string_view::npos) {
          return ParseError("XPath: unterminated string literal");
        }
        Token t;
        t.kind = TokKind::kLiteral;
        t.text = std::string(text.substr(i + 1, end - i - 1));
        t.offset = start;
        tokens.push_back(std::move(t));
        i = end + 1;
        continue;
      }
      case '$': {
        ++i;
        size_t name_start = i;
        while (i < text.size() && IsNameChar(text[i])) ++i;
        if (i == name_start) {
          return ParseError("XPath: '$' must be followed by a name");
        }
        Token t;
        t.kind = TokKind::kVariable;
        t.text = std::string(text.substr(name_start, i - name_start));
        t.offset = start;
        tokens.push_back(std::move(t));
        continue;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      size_t end = i;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) ||
              text[end] == '.')) {
        ++end;
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.text = std::string(text.substr(i, end - i));
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    if (IsNameStart(c)) {
      size_t end = i;
      while (end < text.size() && IsNameChar(text[end])) ++end;
      Token t;
      t.kind = TokKind::kName;
      t.text = std::string(text.substr(i, end - i));
      t.offset = start;
      tokens.push_back(std::move(t));
      i = end;
      continue;
    }
    return ParseError(StringPrintf("XPath: unexpected character '%c'", c));
  }
  Token end_tok;
  end_tok.kind = TokKind::kEnd;
  end_tok.offset = text.size();
  tokens.push_back(std::move(end_tok));
  return tokens;
}

// Axis keyword table.
bool LookupAxis(std::string_view name, Axis* axis) {
  struct Entry {
    const char* name;
    Axis axis;
  };
  static constexpr Entry kAxes[] = {
      {"child", Axis::kChild},
      {"descendant", Axis::kDescendant},
      {"parent", Axis::kParent},
      {"ancestor", Axis::kAncestor},
      {"self", Axis::kSelf},
      {"descendant-or-self", Axis::kDescendantOrSelf},
      {"ancestor-or-self", Axis::kAncestorOrSelf},
      {"following", Axis::kFollowing},
      {"preceding", Axis::kPreceding},
      {"following-sibling", Axis::kFollowingSibling},
      {"preceding-sibling", Axis::kPrecedingSibling},
      {"attribute", Axis::kAttribute},
  };
  for (const Entry& e : kAxes) {
    if (name == e.name) {
      *axis = e.axis;
      return true;
    }
  }
  return false;
}

class XPathParser {
 public:
  explicit XPathParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<ExprPtr> ParseFullExpr() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (Peek().kind != TokKind::kEnd) {
      return Error("trailing tokens after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Eat(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatKeyword(std::string_view word) {
    if (Peek().kind == TokKind::kName && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return ParseError(StringPrintf("XPath at offset %zu: %s",
                                   Peek().offset, message.c_str()));
  }

  Result<ExprPtr> ParseOr() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (EatKeyword("or")) {
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseEquality());
    while (EatKeyword("and")) {
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseEquality());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseEquality() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRelational());
    while (true) {
      BinaryOp op;
      if (Eat(TokKind::kEq) || EatKeyword("eq")) {
        op = BinaryOp::kEq;
      } else if (Eat(TokKind::kNe) || EatKeyword("ne")) {
        op = BinaryOp::kNe;
      } else {
        return lhs;
      }
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRelational());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseRelational() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      if (Eat(TokKind::kLt) || EatKeyword("lt")) {
        op = BinaryOp::kLt;
      } else if (Eat(TokKind::kLe) || EatKeyword("le")) {
        op = BinaryOp::kLe;
      } else if (Eat(TokKind::kGt) || EatKeyword("gt")) {
        op = BinaryOp::kGt;
      } else if (Eat(TokKind::kGe) || EatKeyword("ge")) {
        op = BinaryOp::kGe;
      } else {
        return lhs;
      }
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseAdditive() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Eat(TokKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Eat(TokKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Eat(TokKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (EatKeyword("div")) {
        op = BinaryOp::kDiv;
      } else if (EatKeyword("mod")) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Eat(TokKind::kMinus)) {
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNegate;
      e->args.push_back(std::move(inner));
      return ExprPtr(std::move(e));
    }
    return ParseUnion();
  }

  Result<ExprPtr> ParseUnion() {
    XMLPROJ_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePathExpr());
    while (Eat(TokKind::kPipe)) {
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePathExpr());
      lhs = MakeBinary(BinaryOp::kUnion, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // True when the upcoming tokens start a location-path step rather than a
  // primary expression.
  bool StartsLocationPath() const {
    switch (Peek().kind) {
      case TokKind::kSlash:
      case TokKind::kDoubleSlash:
      case TokKind::kDot:
      case TokKind::kDotDot:
      case TokKind::kAt:
      case TokKind::kStar:
        return true;
      case TokKind::kName: {
        // A name starts a path unless it is a function call: name '('.
        // node() and text() are node-type tests, not functions.
        if (Peek(1).kind == TokKind::kLParen) {
          return Peek().text == "node" || Peek().text == "text" ||
                 Peek().text == "element";
        }
        return true;
      }
      default:
        return false;
    }
  }

  Result<ExprPtr> ParsePathExpr() {
    if (Peek().kind == TokKind::kVariable) {
      LocationPath path;
      path.start = PathStart::kVariable;
      path.variable = Advance().text;
      if (Eat(TokKind::kSlash)) {
        XMLPROJ_RETURN_IF_ERROR(ParseRelativePath(&path));
      } else if (Eat(TokKind::kDoubleSlash)) {
        Step dos;
        dos.axis = Axis::kDescendantOrSelf;
        dos.test.kind = TestKind::kNode;
        path.steps.push_back(std::move(dos));
        XMLPROJ_RETURN_IF_ERROR(ParseRelativePath(&path));
      }
      return MakePath(std::move(path));
    }
    if (Peek().kind == TokKind::kSlash ||
        Peek().kind == TokKind::kDoubleSlash) {
      LocationPath path;
      path.start = PathStart::kRoot;
      if (Eat(TokKind::kDoubleSlash)) {
        Step dos;
        dos.axis = Axis::kDescendantOrSelf;
        dos.test.kind = TestKind::kNode;
        path.steps.push_back(std::move(dos));
        XMLPROJ_RETURN_IF_ERROR(ParseRelativePath(&path));
      } else {
        Advance();  // '/'
        // "/" alone denotes the document root.
        if (StartsLocationPath()) {
          XMLPROJ_RETURN_IF_ERROR(ParseRelativePath(&path));
        }
      }
      return MakePath(std::move(path));
    }
    if (StartsLocationPath()) {
      LocationPath path;
      path.start = PathStart::kContext;
      XMLPROJ_RETURN_IF_ERROR(ParseRelativePath(&path));
      return MakePath(std::move(path));
    }
    // Primary expression (optionally followed by a path: "(...)/a" is not
    // supported; the paper's fragment never needs it).
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        double v = Advance().number;
        return MakeNumber(v);
      }
      case TokKind::kLiteral: {
        std::string v = Advance().text;
        return MakeLiteral(std::move(v));
      }
      case TokKind::kLParen: {
        Advance();
        XMLPROJ_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (!Eat(TokKind::kRParen)) return Error("expected ')'");
        return inner;
      }
      case TokKind::kName: {
        if (Peek(1).kind == TokKind::kLParen) {
          std::string name = Advance().text;
          Advance();  // '('
          std::vector<ExprPtr> args;
          if (Peek().kind != TokKind::kRParen) {
            while (true) {
              XMLPROJ_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (!Eat(TokKind::kComma)) break;
            }
          }
          if (!Eat(TokKind::kRParen)) {
            return Error("expected ')' after function arguments");
          }
          return MakeFunction(std::move(name), std::move(args));
        }
        return Error("unexpected name '" + t.text + "'");
      }
      default:
        return Error("expected an expression");
    }
  }

  Status ParseRelativePath(LocationPath* path) {
    while (true) {
      XMLPROJ_RETURN_IF_ERROR(ParseStep(path));
      if (Eat(TokKind::kSlash)) continue;
      if (Eat(TokKind::kDoubleSlash)) {
        Step dos;
        dos.axis = Axis::kDescendantOrSelf;
        dos.test.kind = TestKind::kNode;
        path->steps.push_back(std::move(dos));
        continue;
      }
      return Status::Ok();
    }
  }

  Status ParseStep(LocationPath* path) {
    Step step;
    if (Eat(TokKind::kDot)) {
      step.axis = Axis::kSelf;
      step.test.kind = TestKind::kNode;
    } else if (Eat(TokKind::kDotDot)) {
      step.axis = Axis::kParent;
      step.test.kind = TestKind::kNode;
    } else {
      if (Eat(TokKind::kAt)) {
        step.axis = Axis::kAttribute;
      } else if (Peek().kind == TokKind::kName &&
                 Peek(1).kind == TokKind::kColonColon) {
        Axis axis;
        if (!LookupAxis(Peek().text, &axis)) {
          return Error("unknown axis '" + Peek().text + "'");
        }
        step.axis = axis;
        Advance();
        Advance();
      } else {
        step.axis = Axis::kChild;
      }
      XMLPROJ_RETURN_IF_ERROR(ParseNodeTest(&step.test));
    }
    while (Eat(TokKind::kLBracket)) {
      XMLPROJ_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
      if (!Eat(TokKind::kRBracket)) return Error("expected ']'");
      step.predicates.push_back(std::move(pred));
    }
    path->steps.push_back(std::move(step));
    return Status::Ok();
  }

  Status ParseNodeTest(NodeTest* test) {
    if (Eat(TokKind::kStar)) {
      test->kind = TestKind::kAnyElement;
      return Status::Ok();
    }
    if (Peek().kind != TokKind::kName) {
      return Error("expected a node test");
    }
    std::string name = Advance().text;
    if (Eat(TokKind::kLParen)) {
      if (!Eat(TokKind::kRParen)) {
        return Error("node type tests take no arguments");
      }
      if (name == "node") {
        test->kind = TestKind::kNode;
      } else if (name == "text") {
        test->kind = TestKind::kText;
      } else if (name == "element") {
        test->kind = TestKind::kAnyElement;
      } else {
        return Error("unknown node type test '" + name + "'");
      }
      return Status::Ok();
    }
    // Per the W3C grammar, node type tests require parentheses; a bare
    // name is always an element name test (XMark, for one, has elements
    // named "text").
    test->kind = TestKind::kName;
    test->name = std::move(name);
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseXPathExpr(std::string_view text) {
  XMLPROJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  XPathParser parser(std::move(tokens));
  return parser.ParseFullExpr();
}

Result<LocationPath> ParseXPath(std::string_view text) {
  XMLPROJ_ASSIGN_OR_RETURN(ExprPtr expr, ParseXPathExpr(text));
  if (expr->kind != ExprKind::kPath) {
    return ParseError("expression is not a location path: " +
                      std::string(text));
  }
  return std::move(expr->path);
}

}  // namespace xmlproj
