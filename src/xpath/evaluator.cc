#include "xpath/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace xmlproj {

std::string XPathNumberToString(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  // Integral values print without a decimal point; the magnitude guard
  // keeps the double -> long long conversion defined.
  if (std::abs(v) < 1e15 && v == static_cast<double>(
                                     static_cast<long long>(v))) {
    return StringPrintf("%lld", static_cast<long long>(v));
  }
  return StringPrintf("%g", v);
}

void NormalizeNodeList(NodeList* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

XPathEvaluator::XPathEvaluator(const Document& doc, Options options)
    : doc_(doc), options_(std::move(options)) {}

std::string XPathEvaluator::StringValueOf(XNode n) const {
  if (n.attr >= 0) {
    return doc_.attr(n.node, static_cast<uint32_t>(n.attr)).value;
  }
  return doc_.StringValue(n.node);
}

double XPathEvaluator::NumberValueOf(XNode n) const {
  std::string s = StringValueOf(n);
  const char* begin = s.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin) return std::nan("");
  // Trailing garbage (other than whitespace) means NaN.
  while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r') ++end;
  if (*end != '\0') return std::nan("");
  return v;
}

bool XPathEvaluator::EffectiveBoolean(const XPathValue& v) {
  switch (v.kind) {
    case ValueKind::kNodeSet:
      return !v.nodes.empty();
    case ValueKind::kBool:
      return v.boolean;
    case ValueKind::kNumber:
      return v.number != 0 && !std::isnan(v.number);
    case ValueKind::kString:
      return !v.string.empty();
  }
  return false;
}

double XPathEvaluator::ToNumber(const XPathValue& v) const {
  switch (v.kind) {
    case ValueKind::kNodeSet:
      if (v.nodes.empty()) return std::nan("");
      return NumberValueOf(v.nodes.front());
    case ValueKind::kBool:
      return v.boolean ? 1 : 0;
    case ValueKind::kNumber:
      return v.number;
    case ValueKind::kString: {
      const char* begin = v.string.c_str();
      char* end = nullptr;
      double num = std::strtod(begin, &end);
      if (end == begin) return std::nan("");
      return num;
    }
  }
  return std::nan("");
}

std::string XPathEvaluator::ToStringValue(const XPathValue& v) const {
  switch (v.kind) {
    case ValueKind::kNodeSet:
      if (v.nodes.empty()) return "";
      return StringValueOf(v.nodes.front());
    case ValueKind::kBool:
      return v.boolean ? "true" : "false";
    case ValueKind::kNumber:
      return XPathNumberToString(v.number);
    case ValueKind::kString:
      return v.string;
  }
  return "";
}

bool XPathEvaluator::MatchesTest(XNode n, const NodeTest& test) const {
  if (n.attr >= 0) {
    // Attribute nodes match name tests by attribute name, plus node()/'*'.
    const Attribute& a = doc_.attr(n.node, static_cast<uint32_t>(n.attr));
    switch (test.kind) {
      case TestKind::kName:
        return doc_.symbols().NameOf(a.name) == test.name;
      case TestKind::kAnyElement:
      case TestKind::kNode:
        return true;
      case TestKind::kText:
        return false;
    }
    return false;
  }
  const Node& node = doc_.node(n.node);
  switch (test.kind) {
    case TestKind::kName:
      return node.kind == NodeKind::kElement &&
             doc_.tag_name(n.node) == test.name;
    case TestKind::kAnyElement:
      return node.kind == NodeKind::kElement;
    case TestKind::kNode:
      return true;
    case TestKind::kText:
      return node.kind == NodeKind::kText;
  }
  return false;
}

void XPathEvaluator::SelectAxis(XNode origin, Axis axis,
                                const NodeTest& test, NodeList* out) const {
  auto emit = [this, &test, out](NodeId id) {
    XNode n{id, -1};
    if (MatchesTest(n, test)) out->push_back(n);
  };

  // Attribute-node origins: only the vertical axes are meaningful.
  if (origin.attr >= 0) {
    switch (axis) {
      case Axis::kSelf:
        if (MatchesTest(origin, test)) out->push_back(origin);
        return;
      case Axis::kParent:
        emit(origin.node);
        return;
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        if (axis == Axis::kAncestorOrSelf && MatchesTest(origin, test)) {
          out->push_back(origin);
        }
        for (NodeId a = origin.node; a != kNullNode; a = doc_.node(a).parent) {
          emit(a);
        }
        return;
      }
      default:
        return;  // child/descendant/sibling/attribute of an attribute: empty
    }
  }

  const Node& node = doc_.node(origin.node);
  switch (axis) {
    case Axis::kChild:
      for (NodeId c = node.first_child; c != kNullNode;
           c = doc_.node(c).next_sibling) {
        emit(c);
      }
      break;
    case Axis::kDescendant:
      for (NodeId i = origin.node + 1; i < node.subtree_end; ++i) emit(i);
      break;
    case Axis::kDescendantOrSelf:
      for (NodeId i = origin.node; i < node.subtree_end; ++i) emit(i);
      break;
    case Axis::kParent:
      if (node.parent != kNullNode) emit(node.parent);
      break;
    case Axis::kAncestor:
      for (NodeId a = node.parent; a != kNullNode; a = doc_.node(a).parent) {
        emit(a);
      }
      break;
    case Axis::kAncestorOrSelf:
      for (NodeId a = origin.node; a != kNullNode; a = doc_.node(a).parent) {
        emit(a);
      }
      break;
    case Axis::kSelf:
      emit(origin.node);
      break;
    case Axis::kFollowingSibling:
      for (NodeId s = node.next_sibling; s != kNullNode;
           s = doc_.node(s).next_sibling) {
        emit(s);
      }
      break;
    case Axis::kPrecedingSibling:
      for (NodeId s = node.prev_sibling; s != kNullNode;
           s = doc_.node(s).prev_sibling) {
        emit(s);
      }
      break;
    case Axis::kFollowing:
      // Everything after this subtree in document order; pre-order ids make
      // this a contiguous range.
      for (NodeId i = node.subtree_end; i < doc_.size(); ++i) emit(i);
      break;
    case Axis::kPreceding: {
      // Nodes before origin in document order, minus ancestors, in reverse
      // document order (proximity order for a reverse axis).
      for (NodeId i = origin.node; i-- > 1;) {
        // Skip ancestors: an ancestor a satisfies a < origin < a.subtree_end.
        const Node& cand = doc_.node(i);
        if (i < origin.node && origin.node < cand.subtree_end) continue;
        emit(i);
      }
      break;
    }
    case Axis::kAttribute:
      if (node.kind == NodeKind::kElement) {
        for (uint32_t k = 0; k < doc_.attr_count(origin.node); ++k) {
          XNode a{origin.node, static_cast<int32_t>(k)};
          if (MatchesTest(a, test)) out->push_back(a);
        }
      }
      break;
  }
}

Result<NodeList> XPathEvaluator::EvalStep(const Step& step,
                                          const NodeList& context) {
  NodeList result;
  NodeList selected;
  for (const XNode& origin : context) {
    selected.clear();
    SelectAxis(origin, step.axis, step.test, &selected);
    // Apply predicates with proximity positions within this context node's
    // selection (SelectAxis emits in proximity order already).
    for (const ExprPtr& pred : step.predicates) {
      NodeList kept;
      size_t size = selected.size();
      for (size_t i = 0; i < selected.size(); ++i) {
        EvalContext ctx;
        ctx.node = selected[i];
        ctx.position = i + 1;
        ctx.size = size;
        XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, Eval(*pred, ctx));
        bool keep;
        if (v.kind == ValueKind::kNumber) {
          keep = v.number == static_cast<double>(ctx.position);
        } else {
          keep = EffectiveBoolean(v);
        }
        if (keep) kept.push_back(selected[i]);
      }
      selected = std::move(kept);
    }
    result.insert(result.end(), selected.begin(), selected.end());
  }
  NormalizeNodeList(&result);
  if (options_.meter != nullptr) {
    options_.meter->Add(result.capacity() * sizeof(XNode));
    options_.meter->Sub(result.capacity() * sizeof(XNode));
  }
  return result;
}

Result<NodeList> XPathEvaluator::EvalSteps(const LocationPath& path,
                                           NodeList context) {
  MeteredBytes guard(options_.meter, context.capacity() * sizeof(XNode));
  for (const Step& step : path.steps) {
    MeteredBytes step_guard(options_.meter,
                            context.capacity() * sizeof(XNode));
    XMLPROJ_ASSIGN_OR_RETURN(NodeList next, EvalStep(step, context));
    context = std::move(next);
  }
  return context;
}

Result<NodeList> XPathEvaluator::EvaluatePath(const LocationPath& path,
                                              const NodeList& context) {
  switch (path.start) {
    case PathStart::kContext:
      return EvalSteps(path, context);
    case PathStart::kRoot:
      return EvalSteps(path, {XNode{doc_.document_node(), -1}});
    case PathStart::kVariable: {
      if (!options_.variable_lookup) {
        return NotFoundError("unbound variable $" + path.variable);
      }
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue v,
                               options_.variable_lookup(path.variable));
      if (v.kind != ValueKind::kNodeSet) {
        return InvalidError("variable $" + path.variable +
                            " is not a node set");
      }
      NodeList start = v.nodes;
      NormalizeNodeList(&start);
      return EvalSteps(path, std::move(start));
    }
  }
  return InternalError("unreachable path start");
}

Result<NodeList> XPathEvaluator::EvaluateFromRoot(const LocationPath& path) {
  return EvaluatePath(path, {XNode{doc_.document_node(), -1}});
}

Result<XPathValue> XPathEvaluator::EvaluateExpr(const Expr& expr,
                                                XNode context) {
  EvalContext ctx;
  ctx.node = context;
  return Eval(expr, ctx);
}

Result<XPathValue> XPathEvaluator::EvalComparison(const Expr& expr,
                                                  const EvalContext& ctx) {
  XMLPROJ_ASSIGN_OR_RETURN(XPathValue lhs, Eval(*expr.args[0], ctx));
  XMLPROJ_ASSIGN_OR_RETURN(XPathValue rhs, Eval(*expr.args[1], ctx));
  BinaryOp op = expr.op;

  auto cmp_numbers = [op](double a, double b) {
    switch (op) {
      case BinaryOp::kEq:
        return a == b;
      case BinaryOp::kNe:
        return a != b;
      case BinaryOp::kLt:
        return a < b;
      case BinaryOp::kLe:
        return a <= b;
      case BinaryOp::kGt:
        return a > b;
      case BinaryOp::kGe:
        return a >= b;
      default:
        return false;
    }
  };
  auto cmp_strings = [op](const std::string& a, const std::string& b) {
    switch (op) {
      case BinaryOp::kEq:
        return a == b;
      case BinaryOp::kNe:
        return a != b;
      default:
        return false;
    }
  };
  bool relational = op == BinaryOp::kLt || op == BinaryOp::kLe ||
                    op == BinaryOp::kGt || op == BinaryOp::kGe;

  // Node-set comparisons are existential (XPath 1.0 §3.4).
  if (lhs.kind == ValueKind::kNodeSet && rhs.kind == ValueKind::kNodeSet) {
    for (const XNode& a : lhs.nodes) {
      std::string sa = StringValueOf(a);
      double na = relational ? NumberValueOf(a) : 0;
      for (const XNode& b : rhs.nodes) {
        bool match = relational ? cmp_numbers(na, NumberValueOf(b))
                                : cmp_strings(sa, StringValueOf(b));
        if (match) return XPathValue::Bool(true);
      }
    }
    return XPathValue::Bool(false);
  }
  if (lhs.kind == ValueKind::kNodeSet || rhs.kind == ValueKind::kNodeSet) {
    bool node_on_left = lhs.kind == ValueKind::kNodeSet;
    const XPathValue& nodes = node_on_left ? lhs : rhs;
    const XPathValue& other = node_on_left ? rhs : lhs;
    if (other.kind == ValueKind::kBool) {
      // node-set vs boolean: compare boolean(node-set) to the boolean.
      bool b = !nodes.nodes.empty();
      bool eq = b == other.boolean;
      if (op == BinaryOp::kEq) return XPathValue::Bool(eq);
      if (op == BinaryOp::kNe) return XPathValue::Bool(!eq);
      return XPathValue::Bool(
          cmp_numbers(node_on_left ? (b ? 1 : 0) : (other.boolean ? 1 : 0),
                      node_on_left ? (other.boolean ? 1 : 0) : (b ? 1 : 0)));
    }
    // Normalize op direction when the node-set is on the right.
    BinaryOp dir_op = op;
    if (!node_on_left) {
      switch (op) {
        case BinaryOp::kLt:
          dir_op = BinaryOp::kGt;
          break;
        case BinaryOp::kLe:
          dir_op = BinaryOp::kGe;
          break;
        case BinaryOp::kGt:
          dir_op = BinaryOp::kLt;
          break;
        case BinaryOp::kGe:
          dir_op = BinaryOp::kLe;
          break;
        default:
          break;
      }
    }
    for (const XNode& n : nodes.nodes) {
      bool match = false;
      if (relational || other.kind == ValueKind::kNumber) {
        double a = NumberValueOf(n);
        double b = ToNumber(other);
        switch (dir_op) {
          case BinaryOp::kEq:
            match = a == b;
            break;
          case BinaryOp::kNe:
            match = a != b;
            break;
          case BinaryOp::kLt:
            match = a < b;
            break;
          case BinaryOp::kLe:
            match = a <= b;
            break;
          case BinaryOp::kGt:
            match = a > b;
            break;
          case BinaryOp::kGe:
            match = a >= b;
            break;
          default:
            break;
        }
      } else {
        match = cmp_strings(StringValueOf(n), other.string);
      }
      if (match) return XPathValue::Bool(true);
    }
    return XPathValue::Bool(false);
  }

  // Scalar comparisons.
  if (op == BinaryOp::kEq || op == BinaryOp::kNe) {
    bool eq;
    if (lhs.kind == ValueKind::kBool || rhs.kind == ValueKind::kBool) {
      eq = EffectiveBoolean(lhs) == EffectiveBoolean(rhs);
    } else if (lhs.kind == ValueKind::kNumber ||
               rhs.kind == ValueKind::kNumber) {
      eq = ToNumber(lhs) == ToNumber(rhs);
    } else {
      eq = ToStringValue(lhs) == ToStringValue(rhs);
    }
    return XPathValue::Bool(op == BinaryOp::kEq ? eq : !eq);
  }
  return XPathValue::Bool(cmp_numbers(ToNumber(lhs), ToNumber(rhs)));
}

Result<XPathValue> XPathEvaluator::EvalBinary(const Expr& expr,
                                              const EvalContext& ctx) {
  switch (expr.op) {
    case BinaryOp::kOr: {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue lhs, Eval(*expr.args[0], ctx));
      if (EffectiveBoolean(lhs)) return XPathValue::Bool(true);
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue rhs, Eval(*expr.args[1], ctx));
      return XPathValue::Bool(EffectiveBoolean(rhs));
    }
    case BinaryOp::kAnd: {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue lhs, Eval(*expr.args[0], ctx));
      if (!EffectiveBoolean(lhs)) return XPathValue::Bool(false);
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue rhs, Eval(*expr.args[1], ctx));
      return XPathValue::Bool(EffectiveBoolean(rhs));
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(expr, ctx);
    case BinaryOp::kUnion: {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue lhs, Eval(*expr.args[0], ctx));
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue rhs, Eval(*expr.args[1], ctx));
      if (lhs.kind != ValueKind::kNodeSet ||
          rhs.kind != ValueKind::kNodeSet) {
        return InvalidError("operands of '|' must be node sets");
      }
      NodeList merged = std::move(lhs.nodes);
      merged.insert(merged.end(), rhs.nodes.begin(), rhs.nodes.end());
      NormalizeNodeList(&merged);
      return XPathValue::NodeSet(std::move(merged));
    }
    default: {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue lhs, Eval(*expr.args[0], ctx));
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue rhs, Eval(*expr.args[1], ctx));
      double a = ToNumber(lhs);
      double b = ToNumber(rhs);
      switch (expr.op) {
        case BinaryOp::kAdd:
          return XPathValue::Number(a + b);
        case BinaryOp::kSub:
          return XPathValue::Number(a - b);
        case BinaryOp::kMul:
          return XPathValue::Number(a * b);
        case BinaryOp::kDiv:
          return XPathValue::Number(a / b);
        case BinaryOp::kMod:
          return XPathValue::Number(std::fmod(a, b));
        default:
          return InternalError("unexpected binary operator");
      }
    }
  }
}

Result<XPathValue> XPathEvaluator::EvalFunction(const Expr& expr,
                                                const EvalContext& ctx) {
  const std::string& f = expr.function;
  auto arg_count_error = [&f](size_t want) {
    return InvalidError(StringPrintf("function %s expects %zu argument(s)",
                                     f.c_str(), want));
  };

  if (f == "position") return XPathValue::Number(static_cast<double>(ctx.position));
  if (f == "last") return XPathValue::Number(static_cast<double>(ctx.size));
  if (f == "true") return XPathValue::Bool(true);
  if (f == "false") return XPathValue::Bool(false);

  // Functions defaulting to the context node when called without argument.
  if (f == "string" || f == "number" || f == "name" || f == "local-name" ||
      f == "string-length") {
    XPathValue v;
    if (expr.args.empty()) {
      v = XPathValue::NodeSet({ctx.node});
    } else {
      XMLPROJ_ASSIGN_OR_RETURN(v, Eval(*expr.args[0], ctx));
    }
    if (f == "string") return XPathValue::String(ToStringValue(v));
    if (f == "number") return XPathValue::Number(ToNumber(v));
    if (f == "string-length") {
      return XPathValue::Number(
          static_cast<double>(ToStringValue(v).size()));
    }
    // name / local-name
    if (v.kind != ValueKind::kNodeSet) {
      return InvalidError(f + "() expects a node set");
    }
    if (v.nodes.empty()) return XPathValue::String("");
    XNode n = v.nodes.front();
    if (n.attr >= 0) {
      return XPathValue::String(doc_.symbols().NameOf(
          doc_.attr(n.node, static_cast<uint32_t>(n.attr)).name));
    }
    if (doc_.kind(n.node) != NodeKind::kElement) {
      return XPathValue::String("");
    }
    return XPathValue::String(doc_.tag_name(n.node));
  }

  if (f == "count" || f == "empty" || f == "exists" || f == "sum" ||
      f == "avg" || f == "max" || f == "min") {
    if (expr.args.size() != 1) return arg_count_error(1);
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, Eval(*expr.args[0], ctx));
    if (v.kind != ValueKind::kNodeSet) {
      return InvalidError(f + "() expects a node set");
    }
    if (f == "count") {
      return XPathValue::Number(static_cast<double>(v.nodes.size()));
    }
    if (f == "empty") return XPathValue::Bool(v.nodes.empty());
    if (f == "exists") return XPathValue::Bool(!v.nodes.empty());
    if (f == "sum" || f == "avg") {
      double total = 0;
      for (const XNode& n : v.nodes) total += NumberValueOf(n);
      if (f == "sum") return XPathValue::Number(total);
      if (v.nodes.empty()) return XPathValue::Number(std::nan(""));
      return XPathValue::Number(total /
                                static_cast<double>(v.nodes.size()));
    }
    // max / min over the numeric values.
    if (v.nodes.empty()) return XPathValue::Number(std::nan(""));
    double best = NumberValueOf(v.nodes.front());
    for (const XNode& n : v.nodes) {
      double x = NumberValueOf(n);
      if (f == "max" ? x > best : x < best) best = x;
    }
    return XPathValue::Number(best);
  }

  if (f == "substring") {
    if (expr.args.size() != 2 && expr.args.size() != 3) {
      return arg_count_error(2);
    }
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue sv, Eval(*expr.args[0], ctx));
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue startv, Eval(*expr.args[1], ctx));
    std::string s = ToStringValue(sv);
    // XPath 1.0: 1-based, with round() semantics on the bounds.
    double start = std::floor(ToNumber(startv) + 0.5);
    double end = static_cast<double>(s.size()) + 1;
    if (expr.args.size() == 3) {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue lenv, Eval(*expr.args[2], ctx));
      end = start + std::floor(ToNumber(lenv) + 0.5);
    }
    if (std::isnan(start) || std::isnan(end)) return XPathValue::String("");
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      double pos = static_cast<double>(i) + 1;
      if (pos >= start && pos < end) out.push_back(s[i]);
    }
    return XPathValue::String(std::move(out));
  }

  if (f == "substring-before" || f == "substring-after") {
    if (expr.args.size() != 2) return arg_count_error(2);
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue a, Eval(*expr.args[0], ctx));
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue b, Eval(*expr.args[1], ctx));
    std::string s = ToStringValue(a);
    std::string needle = ToStringValue(b);
    size_t pos = s.find(needle);
    if (pos == std::string::npos) return XPathValue::String("");
    if (f == "substring-before") {
      return XPathValue::String(s.substr(0, pos));
    }
    return XPathValue::String(s.substr(pos + needle.size()));
  }

  if (f == "normalize-space") {
    XPathValue v;
    if (expr.args.empty()) {
      v = XPathValue::NodeSet({ctx.node});
    } else {
      XMLPROJ_ASSIGN_OR_RETURN(v, Eval(*expr.args[0], ctx));
    }
    std::string s = ToStringValue(v);
    std::string out;
    bool in_space = true;  // strip leading whitespace
    for (char c : s) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        if (!in_space) out.push_back(' ');
        in_space = true;
      } else {
        out.push_back(c);
        in_space = false;
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return XPathValue::String(std::move(out));
  }

  if (f == "translate") {
    if (expr.args.size() != 3) return arg_count_error(3);
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue a, Eval(*expr.args[0], ctx));
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue b, Eval(*expr.args[1], ctx));
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue c, Eval(*expr.args[2], ctx));
    std::string s = ToStringValue(a);
    std::string from = ToStringValue(b);
    std::string to = ToStringValue(c);
    std::string out;
    for (char ch : s) {
      size_t pos = from.find(ch);
      if (pos == std::string::npos) {
        out.push_back(ch);
      } else if (pos < to.size()) {
        out.push_back(to[pos]);
      }  // else: dropped
    }
    return XPathValue::String(std::move(out));
  }

  if (f == "not" || f == "boolean") {
    if (expr.args.size() != 1) return arg_count_error(1);
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, Eval(*expr.args[0], ctx));
    bool b = EffectiveBoolean(v);
    return XPathValue::Bool(f == "not" ? !b : b);
  }

  if (f == "contains" || f == "starts-with") {
    if (expr.args.size() != 2) return arg_count_error(2);
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue a, Eval(*expr.args[0], ctx));
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue b, Eval(*expr.args[1], ctx));
    std::string sa = ToStringValue(a);
    std::string sb = ToStringValue(b);
    if (f == "contains") {
      return XPathValue::Bool(sa.find(sb) != std::string::npos);
    }
    return XPathValue::Bool(StartsWith(sa, sb));
  }

  if (f == "concat") {
    std::string out;
    for (const ExprPtr& arg : expr.args) {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, Eval(*arg, ctx));
      out += ToStringValue(v);
    }
    return XPathValue::String(std::move(out));
  }

  if (f == "floor" || f == "ceiling" || f == "round") {
    if (expr.args.size() != 1) return arg_count_error(1);
    XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, Eval(*expr.args[0], ctx));
    double x = ToNumber(v);
    if (f == "floor") return XPathValue::Number(std::floor(x));
    if (f == "ceiling") return XPathValue::Number(std::ceil(x));
    return XPathValue::Number(std::floor(x + 0.5));
  }

  if (f == "zero-or-one") {
    if (expr.args.size() != 1) return arg_count_error(1);
    return Eval(*expr.args[0], ctx);
  }

  return UnsupportedError("XPath function '" + f + "' is not implemented");
}

Result<XPathValue> XPathEvaluator::Eval(const Expr& expr,
                                        const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kBinary:
      return EvalBinary(expr, ctx);
    case ExprKind::kNegate: {
      XMLPROJ_ASSIGN_OR_RETURN(XPathValue v, Eval(*expr.args[0], ctx));
      return XPathValue::Number(-ToNumber(v));
    }
    case ExprKind::kPath: {
      if (expr.path.start == PathStart::kVariable && expr.path.steps.empty()) {
        // Bare $x keeps its value's kind (it may be a number or a string).
        if (!options_.variable_lookup) {
          return NotFoundError("unbound variable $" + expr.path.variable);
        }
        return options_.variable_lookup(expr.path.variable);
      }
      XMLPROJ_ASSIGN_OR_RETURN(NodeList nodes,
                               EvaluatePath(expr.path, {ctx.node}));
      return XPathValue::NodeSet(std::move(nodes));
    }
    case ExprKind::kFunction:
      return EvalFunction(expr, ctx);
    case ExprKind::kLiteral:
      return XPathValue::String(expr.literal);
    case ExprKind::kNumber:
      return XPathValue::Number(expr.number);
  }
  return InternalError("unreachable expression kind");
}

}  // namespace xmlproj
