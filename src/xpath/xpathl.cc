#include "xpath/xpathl.h"

#include "xpath/parser.h"

namespace xmlproj {

bool IsLAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kSelf:
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kDescendantOrSelf:
    case Axis::kAncestorOrSelf:
      return true;
    default:
      return false;
  }
}

bool IsSimplePath(const LPath& path) {
  for (const LStep& s : path.steps) {
    if (!s.cond.empty()) return false;
  }
  return true;
}

Status ValidateLPath(const LPath& path) {
  for (const LStep& s : path.steps) {
    if (!IsLAxis(s.axis)) {
      return InvalidError(std::string("axis '") + AxisName(s.axis) +
                          "' is not in XPath^l");
    }
    for (const LPath& c : s.cond) {
      if (!IsSimplePath(c)) {
        return InvalidError("XPath^l conditions must be simple paths");
      }
      XMLPROJ_RETURN_IF_ERROR(ValidateLPath(c));
    }
  }
  return Status::Ok();
}

std::string ToString(const LPath& path) {
  std::string out;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += "/";
    const LStep& s = path.steps[i];
    out += AxisName(s.axis);
    out += "::";
    switch (s.test) {
      case TestKind::kName:
        out += s.tag;
        break;
      case TestKind::kAnyElement:
        out += "*";
        break;
      case TestKind::kNode:
        out += "node()";
        break;
      case TestKind::kText:
        out += "text()";
        break;
    }
    if (!s.cond.empty()) {
      out += "[";
      for (size_t j = 0; j < s.cond.size(); ++j) {
        if (j > 0) out += " or ";
        out += ToString(s.cond[j]);
      }
      out += "]";
    }
  }
  return out;
}

LStep MakeLStep(Axis axis, TestKind test, std::string tag) {
  LStep s;
  s.axis = axis;
  s.test = test;
  s.tag = std::move(tag);
  return s;
}

LPath MakeLPath(std::vector<LStep> steps) {
  LPath p;
  p.steps = std::move(steps);
  return p;
}

namespace {

// Strict predicate conversion: the predicate must be a disjunction of
// location paths that are themselves simple.
Status ConvertCond(const Expr& expr, std::vector<LPath>* out) {
  if (expr.kind == ExprKind::kBinary && expr.op == BinaryOp::kOr) {
    XMLPROJ_RETURN_IF_ERROR(ConvertCond(*expr.args[0], out));
    return ConvertCond(*expr.args[1], out);
  }
  if (expr.kind != ExprKind::kPath) {
    return InvalidError(
        "XPath^l predicates must be disjunctions of simple paths; found: " +
        ToString(expr));
  }
  if (expr.path.start != PathStart::kContext) {
    return InvalidError("XPath^l condition paths must be relative");
  }
  XMLPROJ_ASSIGN_OR_RETURN(LPath p, ConvertToLPath(expr.path));
  if (!IsSimplePath(p)) {
    return InvalidError("XPath^l condition paths must be simple");
  }
  out->push_back(std::move(p));
  return Status::Ok();
}

}  // namespace

Result<LPath> ConvertToLPath(const LocationPath& path) {
  if (path.start != PathStart::kContext) {
    return InvalidError(
        "ConvertToLPath expects a relative path (handle absolute paths via "
        "ApproximateQuery)");
  }
  LPath out;
  for (const Step& step : path.steps) {
    LStep ls;
    if (!IsLAxis(step.axis)) {
      return InvalidError(std::string("axis '") + AxisName(step.axis) +
                          "' is not in XPath^l");
    }
    ls.axis = step.axis;
    ls.test = step.test.kind;
    ls.tag = step.test.name;
    for (const ExprPtr& pred : step.predicates) {
      XMLPROJ_RETURN_IF_ERROR(ConvertCond(*pred, &ls.cond));
    }
    out.steps.push_back(std::move(ls));
  }
  return out;
}

Result<LPath> ParseLPath(std::string_view text) {
  XMLPROJ_ASSIGN_OR_RETURN(LocationPath path, ParseXPath(text));
  return ConvertToLPath(path);
}

namespace {

// Condition (ii) of Def 4.6 over one step list: no two consecutive steps
// whose test is node().
bool NoConsecutiveNodeTests(const LPath& path) {
  for (size_t i = 1; i < path.steps.size(); ++i) {
    if (path.steps[i - 1].test == TestKind::kNode &&
        path.steps[i].test == TestKind::kNode) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool IsStronglySpecified(const LPath& path) {
  if (!NoConsecutiveNodeTests(path)) return false;
  for (const LStep& step : path.steps) {
    if (step.cond.empty()) continue;
    // (iii) at most one path per predicate...
    if (step.cond.size() > 1) return false;
    const LPath& cond = step.cond.front();
    if (cond.steps.empty()) return false;
    // ...that does not terminate with a node() test.
    if (cond.steps.back().test == TestKind::kNode) return false;
    if (!NoConsecutiveNodeTests(cond)) return false;
    for (const LStep& cond_step : cond.steps) {
      // (i) no backward axes inside predicates.
      if (IsUpwardAxis(cond_step.axis)) return false;
    }
  }
  return true;
}

}  // namespace xmlproj
