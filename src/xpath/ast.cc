#include "xpath/ast.h"

#include "common/strings.h"

namespace xmlproj {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kSelf:
      return "self";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

bool IsUpwardAxis(Axis axis) {
  return axis == Axis::kParent || axis == Axis::kAncestor ||
         axis == Axis::kAncestorOrSelf;
}

bool IsDownwardAxis(Axis axis) {
  return axis == Axis::kChild || axis == Axis::kDescendant ||
         axis == Axis::kDescendantOrSelf;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMod:
      return "mod";
    case BinaryOp::kUnion:
      return "|";
  }
  return "?";
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakePath(LocationPath path) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPath;
  e->path = std::move(path);
  return e;
}

ExprPtr MakeLiteral(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr MakeNumber(double value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = value;
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function = std::move(name);
  e->args = std::move(args);
  return e;
}

LocationPath ClonePath(const LocationPath& path) {
  LocationPath out;
  out.start = path.start;
  out.variable = path.variable;
  out.steps.reserve(path.steps.size());
  for (const Step& s : path.steps) {
    Step copy;
    copy.axis = s.axis;
    copy.test = s.test;
    for (const ExprPtr& p : s.predicates) {
      copy.predicates.push_back(CloneExpr(*p));
    }
    out.steps.push_back(std::move(copy));
  }
  return out;
}

ExprPtr CloneExpr(const Expr& expr) {
  auto e = std::make_unique<Expr>();
  e->kind = expr.kind;
  e->op = expr.op;
  e->function = expr.function;
  e->literal = expr.literal;
  e->number = expr.number;
  e->path = ClonePath(expr.path);
  for (const ExprPtr& a : expr.args) e->args.push_back(CloneExpr(*a));
  return e;
}

namespace {

void AppendTest(const NodeTest& test, std::string* out) {
  switch (test.kind) {
    case TestKind::kName:
      out->append(test.name);
      break;
    case TestKind::kAnyElement:
      out->append("*");
      break;
    case TestKind::kNode:
      out->append("node()");
      break;
    case TestKind::kText:
      out->append("text()");
      break;
  }
}

}  // namespace

std::string ToString(const LocationPath& path) {
  std::string out;
  if (path.start == PathStart::kRoot) {
    out.append("/");
  } else if (path.start == PathStart::kVariable) {
    out.append("$");
    out.append(path.variable);
    if (!path.steps.empty()) out.append("/");
  }
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out.append("/");
    const Step& s = path.steps[i];
    out.append(AxisName(s.axis));
    out.append("::");
    AppendTest(s.test, &out);
    for (const ExprPtr& p : s.predicates) {
      out.append("[");
      out.append(ToString(*p));
      out.append("]");
    }
  }
  if (path.steps.empty() && path.start == PathStart::kContext) {
    out.append(".");
  }
  return out;
}

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kBinary: {
      std::string out = "(";
      out += ToString(*expr.args[0]);
      out += " ";
      out += BinaryOpName(expr.op);
      out += " ";
      out += ToString(*expr.args[1]);
      out += ")";
      return out;
    }
    case ExprKind::kNegate:
      return "-" + ToString(*expr.args[0]);
    case ExprKind::kPath:
      return ToString(expr.path);
    case ExprKind::kFunction: {
      std::string out = expr.function;
      out += "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(*expr.args[i]);
      }
      out += ")";
      return out;
    }
    case ExprKind::kLiteral:
      return "'" + expr.literal + "'";
    case ExprKind::kNumber:
      return StringPrintf("%g", expr.number);
  }
  return "?";
}

}  // namespace xmlproj
