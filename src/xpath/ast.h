// Abstract syntax for XPath queries (paper §3: the generic query language
// Q, of which XPath^ℓ — xpathl.h — is the analyzable fragment).
//
// The grammar covers XPath 1.0 location paths with all thirteen axes,
// name/node()/text() tests, nested predicates, the boolean / relational /
// arithmetic operators, function calls, literals and variable references
// (variables appear when XPath is embedded in XQuery, §5).

#ifndef XMLPROJ_XPATH_AST_H_
#define XMLPROJ_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xmlproj {

enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kParent,
  kAncestor,
  kSelf,
  kDescendantOrSelf,
  kAncestorOrSelf,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
  kAttribute,
};

const char* AxisName(Axis axis);
bool IsUpwardAxis(Axis axis);    // parent / ancestor / ancestor-or-self
bool IsDownwardAxis(Axis axis);  // child / descendant / descendant-or-self

enum class TestKind : uint8_t {
  kName,        // child::author
  kAnyElement,  // child::* (and the paper's element() wildcard)
  kNode,        // child::node()
  kText,        // child::text()
};

struct NodeTest {
  TestKind kind = TestKind::kNode;
  std::string name;  // kName only
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;
};

// Where a location path starts from.
enum class PathStart : uint8_t {
  kContext,   // relative path
  kRoot,      // absolute path: /a/b
  kVariable,  // $x/a/b (XQuery embedding)
};

struct LocationPath {
  PathStart start = PathStart::kContext;
  std::string variable;  // kVariable only
  std::vector<Step> steps;
};

enum class BinaryOp : uint8_t {
  kOr,
  kAnd,
  kEq,   // = and eq
  kNe,   // != and ne
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kUnion,  // |
};

const char* BinaryOpName(BinaryOp op);

enum class ExprKind : uint8_t {
  kBinary,
  kNegate,    // unary minus
  kPath,
  kFunction,  // f(arg, ...)
  kLiteral,   // 'string'
  kNumber,
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;

  // kBinary / kNegate / kFunction operands or arguments.
  BinaryOp op = BinaryOp::kOr;
  std::vector<ExprPtr> args;

  LocationPath path;    // kPath
  std::string function;  // kFunction
  std::string literal;   // kLiteral
  double number = 0;     // kNumber
};

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakePath(LocationPath path);
ExprPtr MakeLiteral(std::string value);
ExprPtr MakeNumber(double value);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
ExprPtr CloneExpr(const Expr& expr);
LocationPath ClonePath(const LocationPath& path);

// Unparsers (diagnostics and tests).
std::string ToString(const LocationPath& path);
std::string ToString(const Expr& expr);

}  // namespace xmlproj

#endif  // XMLPROJ_XPATH_AST_H_
