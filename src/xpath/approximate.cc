#include "xpath/approximate.h"

#include <cassert>

namespace xmlproj {
namespace {

LPath SelfNodePath() {
  return MakeLPath({MakeLStep(Axis::kSelf, TestKind::kNode)});
}

// Expands one full-XPath step into XPath^ℓ step skeletons (§4.3), without
// predicates. The original test lands on the last expanded step.
std::vector<LStep> RewriteAxis(Axis axis, const NodeTest& test) {
  auto test_step = [&test](Axis a) {
    return MakeLStep(a, test.kind, test.name);
  };
  switch (axis) {
    case Axis::kFollowing:
    case Axis::kPreceding:
      // W3C: ancestor-or-self::node()/X-sibling::node()/
      //      descendant-or-self::Test, then the sibling step is
      //      approximated by parent::node/child::node (§4.3).
      return {MakeLStep(Axis::kAncestorOrSelf, TestKind::kNode),
              MakeLStep(Axis::kParent, TestKind::kNode),
              MakeLStep(Axis::kChild, TestKind::kNode),
              test_step(Axis::kDescendantOrSelf)};
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
      return {MakeLStep(Axis::kParent, TestKind::kNode),
              test_step(Axis::kChild)};
    case Axis::kAttribute:
      // Attributes are stored inline on their element: keeping the element
      // keeps the attribute, so an attribute step needs only its element.
      return {MakeLStep(Axis::kSelf, TestKind::kNode)};
    default:
      assert(IsLAxis(axis));
      return {test_step(axis)};
  }
}

// Flattens a location path that appears inside a predicate into a set of
// *simple* relative paths (optionally suffixed). Nested predicates become
// separate prefixed paths; absolute/variable starts are promoted to `acc`.
Status FlattenConditionPath(const LocationPath& q, bool needs_subtree,
                            ApproximatedQuery* acc,
                            std::vector<LPath>* out);

// Flattens a step sequence into *simple* paths: the spine (suffixed with
// descendant-or-self when the value is needed) plus one prefixed path per
// nested-predicate extraction.
Status FlattenStepsToSimplePaths(std::span<const Step> steps,
                                 bool needs_subtree, ApproximatedQuery* acc,
                                 std::vector<LPath>* out);

// P(Exp): simple paths approximating `expr` (§3.3). `value_needed` is set
// when the enclosing operator consumes the *value* of a path operand
// (comparison, arithmetic) rather than its node-set emptiness.
Status ExtractCond(const Expr& expr, bool value_needed,
                   ApproximatedQuery* acc, std::vector<LPath>* out) {
  switch (expr.kind) {
    case ExprKind::kPath:
      return FlattenConditionPath(expr.path, value_needed, acc, out);
    case ExprKind::kBinary:
      switch (expr.op) {
        case BinaryOp::kOr:
        case BinaryOp::kAnd:
        case BinaryOp::kUnion:
          XMLPROJ_RETURN_IF_ERROR(
              ExtractCond(*expr.args[0], false, acc, out));
          return ExtractCond(*expr.args[1], false, acc, out);
        default:
          // Comparisons and arithmetic consume operand values: a path
          // operand needs its whole subtree (string/number conversion
          // reads descendant text).
          XMLPROJ_RETURN_IF_ERROR(
              ExtractCond(*expr.args[0], true, acc, out));
          return ExtractCond(*expr.args[1], true, acc, out);
      }
    case ExprKind::kNegate:
      return ExtractCond(*expr.args[0], true, acc, out);
    case ExprKind::kFunction: {
      for (size_t i = 0; i < expr.args.size(); ++i) {
        bool subtree = FunctionNeedsSubtree(expr.function, i);
        XMLPROJ_RETURN_IF_ERROR(
            ExtractCond(*expr.args[i], subtree, acc, out));
      }
      // A function result is not purely structural: prevent the condition
      // from restricting the projector (§3.3).
      out->push_back(SelfNodePath());
      return Status::Ok();
    }
    case ExprKind::kLiteral:
    case ExprKind::kNumber:
      return Status::Ok();
  }
  return InternalError("unreachable expression kind");
}

Status FlattenConditionPath(const LocationPath& q, bool needs_subtree,
                            ApproximatedQuery* acc,
                            std::vector<LPath>* out) {
  // An attribute-valued operand needs no subtree: attribute values are
  // stored inline on their element and survive with it.
  if (!q.steps.empty() && q.steps.back().axis == Axis::kAttribute) {
    needs_subtree = false;
  }
  if (q.start == PathStart::kRoot) {
    // Absolute condition: its data needs become a document-rooted extra
    // path; the condition itself cannot restrict the current node (its
    // truth does not depend on the node's subtree), so contribute
    // self::node.
    LPath spine;
    XMLPROJ_RETURN_IF_ERROR(ApproximateSteps(q.steps, acc, &spine));
    if (needs_subtree) {
      spine.steps.push_back(
          MakeLStep(Axis::kDescendantOrSelf, TestKind::kNode));
    }
    acc->extra_paths.push_back(std::move(spine));
    out->push_back(SelfNodePath());
    return Status::Ok();
  }
  if (q.start == PathStart::kVariable) {
    // The paths must stay *simple* (they become conditions after the
    // caller re-roots them), so nested predicates are flattened exactly
    // like in the relative case.
    std::vector<LPath> flattened;
    XMLPROJ_RETURN_IF_ERROR(
        FlattenStepsToSimplePaths(q.steps, needs_subtree, acc, &flattened));
    for (LPath& p : flattened) {
      acc->var_conditions.push_back(
          ApproximatedQuery::VarCondition{q.variable, std::move(p)});
    }
    out->push_back(SelfNodePath());
    return Status::Ok();
  }

  return FlattenStepsToSimplePaths(q.steps, needs_subtree, acc, out);
}

Status FlattenStepsToSimplePaths(std::span<const Step> steps,
                                 bool needs_subtree, ApproximatedQuery* acc,
                                 std::vector<LPath>* out) {
  // Build the simple spine; nested predicates become prefixed paths of
  // their own.
  LPath spine;
  for (const Step& step : steps) {
    std::vector<LStep> expanded = RewriteAxis(step.axis, step.test);
    for (LStep& ls : expanded) spine.steps.push_back(std::move(ls));
    if (step.predicates.empty()) continue;
    std::vector<LPath> nested;
    for (const ExprPtr& pred : step.predicates) {
      XMLPROJ_RETURN_IF_ERROR(ExtractCond(*pred, false, acc, &nested));
    }
    for (LPath& p : nested) {
      LPath prefixed = spine;  // prefix up to and including this step
      for (LStep& ls : p.steps) prefixed.steps.push_back(std::move(ls));
      out->push_back(std::move(prefixed));
    }
  }
  if (needs_subtree) {
    if (spine.steps.empty() ||
        spine.steps.back().axis != Axis::kDescendantOrSelf ||
        spine.steps.back().test != TestKind::kNode) {
      spine.steps.push_back(
          MakeLStep(Axis::kDescendantOrSelf, TestKind::kNode));
    }
  }
  if (spine.steps.empty()) spine = SelfNodePath();
  out->push_back(std::move(spine));
  return Status::Ok();
}

}  // namespace

bool FunctionNeedsSubtree(std::string_view name, size_t index) {
  (void)index;
  // Functions whose argument is consumed only as a node set: the node
  // itself suffices.
  static constexpr std::string_view kSelfOnly[] = {
      "count", "empty",      "exists", "not",  "boolean",
      "position", "last",    "name",   "local-name", "zero-or-one",
  };
  for (std::string_view f : kSelfOnly) {
    if (name == f) return false;
  }
  // string, number, sum, contains, starts-with, concat, string-length,
  // floor, ceiling, round, and anything unknown: conservatively require
  // the subtree.
  return true;
}

Result<std::vector<LPath>> ExtractConditionPaths(const Expr& expr,
                                                 ApproximatedQuery* acc) {
  std::vector<LPath> out;
  XMLPROJ_RETURN_IF_ERROR(ExtractCond(expr, /*value_needed=*/false, acc,
                                      &out));
  if (out.empty()) out.push_back(SelfNodePath());
  return out;
}

Status ApproximateSteps(std::span<const Step> steps, ApproximatedQuery* acc,
                        LPath* out) {
  for (const Step& step : steps) {
    std::vector<LStep> expanded = RewriteAxis(step.axis, step.test);
    // Predicates attach to the last expanded step.
    LStep& last = expanded.back();
    for (const ExprPtr& pred : step.predicates) {
      std::vector<LPath> paths;
      XMLPROJ_RETURN_IF_ERROR(ExtractCond(*pred, false, acc, &paths));
      if (paths.empty()) paths.push_back(SelfNodePath());
      for (LPath& p : paths) last.cond.push_back(std::move(p));
    }
    for (LStep& ls : expanded) out->steps.push_back(std::move(ls));
  }
  return Status::Ok();
}

Result<ApproximatedQuery> ApproximateQuery(const LocationPath& q) {
  if (q.start == PathStart::kVariable) {
    return InvalidError(
        "ApproximateQuery cannot resolve variable-rooted paths; use the "
        "XQuery path extractor");
  }
  ApproximatedQuery acc;
  acc.from_document_node = q.start == PathStart::kRoot;
  XMLPROJ_RETURN_IF_ERROR(ApproximateSteps(q.steps, &acc, &acc.main));
  if (acc.main.steps.empty()) acc.main = SelfNodePath();
  XMLPROJ_RETURN_IF_ERROR(ValidateLPath(acc.main));
  for (const LPath& p : acc.extra_paths) {
    XMLPROJ_RETURN_IF_ERROR(ValidateLPath(p));
  }
  return acc;
}

}  // namespace xmlproj
