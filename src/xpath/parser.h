// Recursive-descent parser for XPath expressions and location paths.
//
// Supports the full grammar of ast.h: abbreviated steps (//, @, ., ..),
// all axes, nested predicates, operators (or/and/=/!=/</<=/>/>=/+/-/*/div/
// mod/|, plus the XPath 2.0 spellings eq/ne/lt/le/gt/ge treated as their
// 1.0 counterparts), function calls, literals, numbers and $variables.

#ifndef XMLPROJ_XPATH_PARSER_H_
#define XMLPROJ_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace xmlproj {

// Parses a complete XPath expression.
Result<ExprPtr> ParseXPathExpr(std::string_view text);

// Parses text that must denote a location path (the common case for
// benchmark queries); fails if the expression is not a path.
Result<LocationPath> ParseXPath(std::string_view text);

}  // namespace xmlproj

#endif  // XMLPROJ_XPATH_PARSER_H_
