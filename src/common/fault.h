// Deterministic fault injection for the chaos test suite and for staging
// drills against the pruning pipeline.
//
// A *failpoint* is a named checkpoint compiled into production code
// (parser, pruner, thread pool, pipeline). Disarmed — the universal
// default — a checkpoint costs one null-pointer compare; armed, it can
// return an injected Status (parse errors, allocation failures, transient
// I/O faults, …) and/or sleep to simulate a slow task. Firing is driven
// by the repo's SplitMix64 RNG (common/rng.h), seeded per failpoint from
// the injector seed and the failpoint name, so a chaos run replays
// identically for a fixed seed and arm configuration.
//
// Checkpoints compiled into this tree (see README "Fault tolerance"):
//   xml.parse      — xml/parser.cc, once per element start tag
//   prune.element  — projection/pruner.cc, both pruners, per StartElement
//   pool.task      — common/thread_pool.cc, before a worker runs a task
//   pipeline.task  — projection/pipeline.cc, at the start of each attempt
//   pipeline.commit — projection/pipeline.cc, before the atomic output
//                     commit of a checkpointed task
//   checkpoint.append — projection/pipeline.cc, before the completed-task
//                     checkpoint record is appended
//
// Compile-time kill switch: building with -DXMLPROJ_NO_FAULT_INJECTION
// turns every XMLPROJ_FAULT_HIT into a literal Status::Ok() so the hot
// path carries no trace of the machinery (CMake option of the same name).

#ifndef XMLPROJ_COMMON_FAULT_H_
#define XMLPROJ_COMMON_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"

namespace xmlproj {

// What an armed failpoint does on each hit.
struct FaultSpec {
  // Status code to inject. kOk makes a delay-only failpoint (a slow task,
  // not a failing one).
  StatusCode code = StatusCode::kInternal;
  // Chance each hit fires, rolled on the failpoint's own deterministic RNG.
  double probability = 1.0;
  // Stop firing after this many fires; -1 = unlimited.
  int max_fires = -1;
  // Sleep this long on every fire (before returning the status, if any).
  uint64_t delay_ms = 0;
  // Optional message override for the injected Status.
  std::string message;
};

// A registry of armed failpoints. Thread-safe; one injector is typically
// shared by a whole pipeline run (PipelineOptions::fault). Hit order across
// pool workers is scheduling-dependent, so probabilistic chaos runs are
// deterministic in distribution, not in which exact task fails; arm with
// probability 1 (or max_fires) for bit-reproducible scenarios.
class FaultInjector {
 public:
  static constexpr uint64_t kDefaultSeed = 0x584d4c50524f4aULL;  // "XMLPROJ"

  explicit FaultInjector(uint64_t seed = kDefaultSeed) : seed_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(std::string_view failpoint, FaultSpec spec);
  void Disarm(std::string_view failpoint);
  void DisarmAll();

  // Arms failpoints from a comma-separated spec string, the syntax of the
  // XMLPROJ_FAILPOINTS environment variable and the tools' --failpoints
  // flag:
  //
  //   name:code[:probability[:max_fires[:delay_ms]]]
  //
  // code ∈ {parse, invalid, unsupported, notfound, cancelled, resource,
  // deadline, unavailable, internal, delay} — "delay" injects no error
  // (pair it with delay_ms). Example:
  //   XMLPROJ_FAILPOINTS="xml.parse:parse:0.01,pool.task:delay:1:-1:25"
  Status ArmFromSpec(std::string_view spec_text);

  // The checkpoint. Returns OK when the failpoint is disarmed or the roll
  // does not fire; sleeps and/or returns the injected Status when it does.
  Status MaybeFail(std::string_view failpoint);

  // Telemetry for tests and reports: checkpoint passes / actual fires.
  uint64_t HitCount(std::string_view failpoint) const;
  uint64_t FireCount(std::string_view failpoint) const;

  // Process-wide injector armed from $XMLPROJ_FAILPOINTS, or nullptr when
  // the variable is unset or empty. Malformed entries are reported to
  // stderr once and skipped. Intended for tools and CI chaos drills;
  // library code only consults injectors handed to it explicitly.
  static FaultInjector* FromEnv();

 private:
  struct ArmedPoint {
    FaultSpec spec;
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  uint64_t SeedFor(std::string_view failpoint) const;

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, ArmedPoint, std::less<>> points_;
};

// Checkpoint macro: evaluates to an injected Status when `injector` is
// non-null and the named failpoint fires, Status::Ok() otherwise. With
// XMLPROJ_NO_FAULT_INJECTION defined it compiles to a literal OK.
#if defined(XMLPROJ_NO_FAULT_INJECTION)
#define XMLPROJ_FAULT_HIT(injector, name) (::xmlproj::Status::Ok())
#else
#define XMLPROJ_FAULT_HIT(injector, name)      \
  ((injector) == nullptr ? ::xmlproj::Status::Ok() \
                         : (injector)->MaybeFail(name))
#endif

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_FAULT_H_
