// Lightweight error propagation for a no-exceptions codebase.
//
// All fallible operations in this library return Status (no payload) or
// Result<T> (payload or error). Both carry a StatusCode and a human-readable
// message with enough context to diagnose a malformed document, DTD, or
// query without a debugger.

#ifndef XMLPROJ_COMMON_STATUS_H_
#define XMLPROJ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xmlproj {

enum class StatusCode {
  kOk = 0,
  // Input could not be parsed (XML, DTD, XPath or XQuery syntax errors).
  kParseError,
  // Input parsed but violates a semantic rule (e.g. document not valid
  // with respect to the DTD, duplicate element declaration).
  kInvalid,
  // The operation is outside the supported fragment (e.g. an XQuery
  // feature the evaluator does not implement).
  kUnsupported,
  // A lookup failed (unknown element name, unknown variable).
  kNotFound,
  // The operation was abandoned before it ran (e.g. a pipeline task
  // skipped after an earlier document failed, a task submitted to a
  // shut-down thread pool).
  kCancelled,
  // A per-task resource budget was exhausted (e.g. the pruning pass hit
  // its byte cap). Retrying without raising the budget will fail again.
  kResourceExhausted,
  // A per-task wall-clock deadline passed before the operation finished.
  kDeadlineExceeded,
  // A transient failure (e.g. an I/O hiccup): retrying the same operation
  // may succeed. The pipeline's kRetry policy retries exactly this code.
  kUnavailable,
  kInternal,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
inline Status InvalidError(std::string message) {
  return Status(StatusCode::kInvalid, std::move(message));
}
inline Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

// Result<T> is either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define XMLPROJ_RETURN_IF_ERROR(expr)         \
  do {                                        \
    ::xmlproj::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluates a Result expression, propagating errors, and binds the value.
#define XMLPROJ_ASSIGN_OR_RETURN(lhs, expr)   \
  XMLPROJ_ASSIGN_OR_RETURN_IMPL_(             \
      XMLPROJ_CONCAT_(_result_, __LINE__), lhs, expr)

#define XMLPROJ_CONCAT_INNER_(a, b) a##b
#define XMLPROJ_CONCAT_(a, b) XMLPROJ_CONCAT_INNER_(a, b)
#define XMLPROJ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_STATUS_H_
