#include "common/http/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>

namespace xmlproj {
namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

char AsciiLower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

void LowerInPlace(std::string* s) {
  for (char& c : *s) c = AsciiLower(c);
}

std::string_view StripSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
               HexDigit(s[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(HexDigit(s[i + 1]) * 16 + HexDigit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

// Finds the raw (undecoded) value of `key` in a query string; false when
// the key is absent.
bool FindQueryValue(std::string_view query, std::string_view key,
                    std::string_view* value) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    std::string_view pair = query.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    size_t eq = pair.find('=');
    std::string_view name = eq == std::string_view::npos ? pair
                                                         : pair.substr(0, eq);
    if (name == key) {
      *value = eq == std::string_view::npos ? std::string_view()
                                            : pair.substr(eq + 1);
      return true;
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return false;
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Parses the request head (request line + headers, no body). Returns 0
// on success or the HTTP status to answer with.
int ParseRequestHead(std::string_view head, HttpRequest* request) {
  size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1) {
    return 400;
  }
  request->method = std::string(line.substr(0, sp1));
  request->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  size_t q = request->target.find('?');
  request->path = request->target.substr(0, q);
  request->query =
      q == std::string::npos ? std::string() : request->target.substr(q + 1);
  if (request->path.empty() || request->path[0] != '/') return 400;

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    std::string_view header = head.substr(pos, end - pos);
    pos = end + 2;
    if (header.empty()) break;
    size_t colon = header.find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    std::string name(StripSpaces(header.substr(0, colon)));
    LowerInPlace(&name);
    request->headers.emplace_back(
        std::move(name), std::string(StripSpaces(header.substr(colon + 1))));
  }
  return 0;
}

// Parses a decimal Content-Length; false on garbage.
bool ParseContentLength(std::string_view value, size_t* out) {
  if (value.empty()) return false;
  size_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    if (parsed > (SIZE_MAX - 9) / 10) return false;
    parsed = parsed * 10 + static_cast<size_t>(c - '0');
  }
  *out = parsed;
  return true;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpStatusReason(response.status));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(response.body.size()));
  for (const auto& [name, value] : response.headers) {
    out.append("\r\n");
    out.append(name);
    out.append(": ");
    out.append(value);
  }
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(response.body);
  return out;
}

// Lowercase-hex-only check for traceparent fields (the spec mandates
// lowercase; uppercase is a violation, not a variant).
bool IsLowerHex(std::string_view s) {
  for (char c : s) {
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

bool IsAllZero(std::string_view s) {
  for (char c : s) {
    if (c != '0') return false;
  }
  return true;
}

// A client-chosen request id is kept only when it cannot corrupt a log
// line or a response header: bounded and [A-Za-z0-9._-].
bool IsSaneRequestId(std::string_view id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string MintHex(size_t digits) {
  // Thread-local PRNG: minting must not serialize request workers, and
  // ids only need to be unique, not unpredictable.
  thread_local std::mt19937_64 rng(
      std::random_device{}() ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 1));
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digits);
  uint64_t bits = 0;
  size_t left = 0;
  bool all_zero = true;
  for (size_t i = 0; i < digits; ++i) {
    if (left == 0) {
      bits = rng();
      left = 16;
    }
    char c = kHex[bits & 0xf];
    if (c != '0') all_zero = false;
    out.push_back(c);
    bits >>= 4;
    --left;
  }
  if (all_zero) out.back() = '1';  // all-zero ids are invalid on the wire
  return out;
}

// Stamps the request's trace context from its headers (or mints one)
// and resolves the request id. Called once per parsed request, before
// any response — error responses carry the context too.
void StampRequestTrace(HttpRequest* request) {
  if (!ParseTraceparent(request->Header("traceparent"), &request->trace)) {
    request->trace = MintTraceContext();
  } else {
    request->trace.span_id = MintSpanId();
  }
  std::string_view id = request->Header("x-request-id");
  request->request_id =
      IsSaneRequestId(id) ? std::string(id) : request->trace.span_id;
}

// Echoes the request's trace context on a response unless the handler
// already set the headers itself.
void EchoTraceHeaders(const HttpRequest& request, HttpResponse* response) {
  bool has_traceparent = false;
  bool has_request_id = false;
  for (const auto& [name, value] : response->headers) {
    std::string lower(name);
    LowerInPlace(&lower);
    if (lower == "traceparent") has_traceparent = true;
    if (lower == "x-request-id") has_request_id = true;
  }
  if (!has_traceparent && request.trace.valid()) {
    response->headers.emplace_back("traceparent",
                                   FormatTraceparent(request.trace));
  }
  if (!has_request_id && !request.request_id.empty()) {
    response->headers.emplace_back("X-Request-Id", request.request_id);
  }
}

}  // namespace

bool ParseTraceparent(std::string_view header, TraceContext* out) {
  // Exactly "00-<32 hex>-<16 hex>-<2 hex>": 55 bytes. Anything else —
  // other versions (including the forbidden "ff"), extra fields,
  // oversized headers — is treated as absent rather than guessed at.
  if (header.size() != 55) return false;
  if (header[0] != '0' || header[1] != '0') return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return false;
  std::string_view trace_id = header.substr(3, 32);
  std::string_view span_id = header.substr(36, 16);
  std::string_view flags = header.substr(53, 2);
  if (!IsLowerHex(trace_id) || !IsLowerHex(span_id) || !IsLowerHex(flags)) {
    return false;
  }
  if (IsAllZero(trace_id) || IsAllZero(span_id)) return false;
  out->trace_id = std::string(trace_id);
  out->parent_id = std::string(span_id);
  out->span_id.clear();
  out->sampled = (HexDigit(flags[1]) & 1) != 0;
  return true;
}

std::string FormatTraceparent(const TraceContext& context) {
  std::string out("00-");
  out.append(context.trace_id);
  out.push_back('-');
  out.append(context.span_id);
  out.append(context.sampled ? "-01" : "-00");
  return out;
}

std::string MintTraceId() { return MintHex(32); }

std::string MintSpanId() { return MintHex(16); }

TraceContext MintTraceContext() {
  TraceContext context;
  context.trace_id = MintTraceId();
  context.span_id = MintSpanId();
  return context;
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return v;
  }
  return {};
}

std::string HttpRequest::QueryParam(std::string_view key) const {
  std::string_view raw;
  if (!FindQueryValue(query, key, &raw)) return {};
  return PercentDecode(raw);
}

bool HttpRequest::HasQueryParam(std::string_view key) const {
  std::string_view raw;
  return FindQueryValue(query, key, &raw);
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Status";
  }
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

void HttpServer::Handle(std::string method, std::string path,
                        HttpHandler handler) {
  routes_.push_back({std::move(method), std::move(path), std::move(handler)});
}

void HttpServer::SetObserver(HttpObserver observer) {
  observer_ = std::move(observer);
}

bool HttpServer::Start(const HttpServerOptions& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  if (routes_.empty()) {
    if (error != nullptr) *error = "no routes registered";
    return false;
  }
  if (pipe2(wake_fds_, O_CLOEXEC) != 0) {
    if (error != nullptr) *error = std::string("pipe2: ") + strerror(errno);
    return false;
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    close(wake_fds_[0]);
    close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    return false;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  socklen_t len = sizeof(addr);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, options.listen_backlog) < 0 ||
      getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen: ") + strerror(errno);
    }
    close(fd);
    close(wake_fds_[0]);
    close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    return false;
  }
  options_ = options;
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  requests_.store(0, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&HttpServer::AcceptLoop, this);
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return true;
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  // One byte, never drained: every poll on the read end wakes, now and
  // for every future wait until the pipe is closed below.
  char byte = 0;
  (void)!write(wake_fds_[1], &byte, 1);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  for (int fd : pending_) close(fd);
  pending_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  running_.store(false, std::memory_order_release);
}

bool HttpServer::WaitReadable(int fd, int deadline_ms) const {
  int64_t deadline =
      deadline_ms > 0 ? SteadyNowMs() + deadline_ms : 0;
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfds[2];
    pfds[0].fd = fd;
    pfds[0].events = POLLIN;
    pfds[0].revents = 0;
    pfds[1].fd = wake_fds_[0];
    pfds[1].events = POLLIN;
    pfds[1].revents = 0;
    int wait_ms = -1;
    if (deadline != 0) {
      int64_t remaining = deadline - SteadyNowMs();
      if (remaining <= 0) return false;
      wait_ms = static_cast<int>(remaining);
    }
    int rc = poll(pfds, 2, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pfds[1].revents != 0) return false;  // stop pipe fired
    if (rc > 0 && (pfds[0].revents & (POLLIN | POLLHUP)) != 0) return true;
    if (rc == 0 && deadline != 0) return false;  // timed out
  }
  return false;
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!WaitReadable(listen_fd_, /*deadline_ms=*/0)) continue;
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      // Backstop only: the listen backlog bounds what can land here.
      if (pending_.size() >= 1024) {
        close(fd);
        continue;
      }
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
    close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  uint64_t start_ns = SteadyNowNs();
  int64_t deadline = SteadyNowMs() + options_.connection_deadline_ms;
  auto remaining_ms = [deadline]() -> int {
    int64_t remaining = deadline - SteadyNowMs();
    return remaining > 0 ? static_cast<int>(remaining) : -1;
  };

  // Request head: read until the blank line, bounded in bytes and time.
  std::string buffer;
  char chunk[4096];
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() >= options_.max_header_bytes) {
      SendAll(fd, SerializeResponse(
                      TextResponse(400, "request head too large\n")));
      return;
    }
    int wait = remaining_ms();
    if (wait < 0 || !WaitReadable(fd, wait)) return;
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer closed or error before a full request
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  HttpRequest request;
  int parse_status = ParseRequestHead(buffer.substr(0, head_end + 2), &request);
  if (parse_status != 0) {
    SendAll(fd, SerializeResponse(
                    TextResponse(parse_status, "malformed request line\n")));
    return;
  }
  // From here on the request is attributable: it carries a trace
  // context (extracted or minted) that every response — errors
  // included — echoes, and the observer sees it.
  StampRequestTrace(&request);
  auto respond = [&](HttpResponse response) {
    EchoTraceHeaders(request, &response);
    if (observer_) {
      observer_(request, response, start_ns, SteadyNowNs() - start_ns);
    }
    SendAll(fd, SerializeResponse(response));
  };

  // Body, when declared. No streaming transfer encodings here.
  if (!request.Header("transfer-encoding").empty()) {
    respond(TextResponse(501, "transfer-encoding is not supported\n"));
    return;
  }
  size_t content_length = 0;
  std::string_view length_header = request.Header("content-length");
  if (!length_header.empty() &&
      !ParseContentLength(length_header, &content_length)) {
    respond(TextResponse(400, "malformed content-length\n"));
    return;
  }
  if (content_length > options_.max_body_bytes) {
    respond(TextResponse(413, "request body exceeds the configured cap\n"));
    return;
  }
  if (content_length > 0) {
    // curl sends Expect: 100-continue for large bodies and stalls ~1s
    // waiting for the interim response; answer it so uploads stream
    // immediately.
    std::string expect(request.Header("expect"));
    LowerInPlace(&expect);
    if (expect.find("100-continue") != std::string::npos) {
      if (!SendAll(fd, "HTTP/1.1 100 Continue\r\n\r\n")) return;
    }
    request.body = buffer.substr(head_end + 4);
    while (request.body.size() < content_length) {
      int wait = remaining_ms();
      if (wait < 0 || !WaitReadable(fd, wait)) {
        respond(TextResponse(408, "request body timed out\n"));
        return;
      }
      ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      request.body.append(chunk, static_cast<size_t>(n));
    }
    request.body.resize(content_length);  // ignore pipelined trailing bytes
  }

  respond(Dispatch(request));
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  bool path_known = false;
  std::string allowed;
  for (const Route& route : routes_) {
    if (route.path != request.path) continue;
    if (route.method == request.method) return route.handler(request);
    path_known = true;
    if (!allowed.empty()) allowed.append(", ");
    allowed.append(route.method);
  }
  if (path_known) {
    HttpResponse response = TextResponse(
        405, "method not allowed; supported: " + allowed + "\n");
    response.headers.emplace_back("Allow", allowed);
    return response;
  }
  return TextResponse(404, "unknown path\n");
}

// ---------------------------------------------------------------------
// Client.

std::string_view HttpClientResult::Header(std::string_view name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return v;
  }
  return {};
}

namespace {

// Poll-based single-fd wait for the client side (no stop pipe).
bool ClientWaitReadable(int fd, int timeout_ms) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;
    return (pfd.revents & (POLLIN | POLLHUP)) != 0;
  }
}

}  // namespace

bool HttpCall(uint16_t port, const std::string& method,
              const std::string& target, std::string_view body,
              const std::string& content_type, HttpClientResult* result,
              const HttpClientOptions& options, std::string* error) {
  auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail("socket failed");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return fail("connect failed");
  }
  std::string request(method);
  request.push_back(' ');
  request.append(target);
  request.append(" HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  if (!options.traceparent.empty()) {
    request.append("traceparent: ");
    request.append(options.traceparent);
    request.append("\r\n");
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    if (!content_type.empty()) {
      request.append("Content-Type: ");
      request.append(content_type);
      request.append("\r\n");
    }
    request.append("Content-Length: ");
    request.append(std::to_string(body.size()));
    request.append("\r\n");
  }
  request.append("Connection: close\r\n\r\n");
  request.append(body);
  if (!SendAll(fd, request)) {
    close(fd);
    return fail("send failed");
  }

  int64_t deadline = SteadyNowMs() + options.timeout_ms;
  std::string response;
  char buf[8192];
  for (;;) {
    int64_t remaining = deadline - SteadyNowMs();
    if (remaining <= 0) {
      close(fd);
      return fail("response timed out");
    }
    if (!ClientWaitReadable(fd, static_cast<int>(remaining))) {
      close(fd);
      return fail("response timed out");
    }
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return fail("recv failed");
    }
    if (n == 0) break;
    // An interim 100 Continue can precede the real response; drop it.
    response.append(buf, static_cast<size_t>(n));
    if (response.rfind("HTTP/1.1 100", 0) == 0) {
      size_t interim_end = response.find("\r\n\r\n");
      if (interim_end != std::string::npos) {
        response.erase(0, interim_end + 4);
      }
    }
    if (response.size() > options.max_response_bytes) {
      close(fd);
      return fail("response exceeds max_response_bytes");
    }
  }
  close(fd);

  size_t line_end = response.find("\r\n");
  size_t header_end = response.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    return fail("truncated response");
  }
  if (result != nullptr) {
    result->status_line = response.substr(0, line_end);
    result->status = 0;
    size_t sp = result->status_line.find(' ');
    if (sp != std::string::npos) {
      int code = 0;
      for (size_t i = sp + 1;
           i < result->status_line.size() && result->status_line[i] >= '0' &&
           result->status_line[i] <= '9';
           ++i) {
        code = code * 10 + (result->status_line[i] - '0');
      }
      result->status = code;
    }
    result->headers.clear();
    size_t pos = line_end + 2;
    while (pos < header_end) {
      size_t end = response.find("\r\n", pos);
      std::string_view header(response.data() + pos, end - pos);
      pos = end + 2;
      size_t colon = header.find(':');
      if (colon == std::string_view::npos) continue;
      std::string name(StripSpaces(header.substr(0, colon)));
      LowerInPlace(&name);
      result->headers.emplace_back(
          std::move(name), std::string(StripSpaces(header.substr(colon + 1))));
    }
    result->body = response.substr(header_end + 4);
  }
  return true;
}

}  // namespace xmlproj
