// Reusable loopback HTTP/1.1 core: the plumbing that used to live inside
// obs/server.cc, extracted so the observability scrape surface and the
// projection service daemon (service/service.h) share one
// implementation — request parsing, a routing table, response writing,
// connection deadlines, POST bodies with a size cap, and a blocking
// client with capped reads.
//
// Scope and non-goals: POSIX sockets only, bound to 127.0.0.1, one
// request per connection (every response carries `Connection: close`).
// This is an operator/sidecar surface — a scrape endpoint and a
// same-host pruning service — not an internet-facing web server: no
// TLS, no keep-alive, no chunked transfer encoding (rejected with 501).
// `Expect: 100-continue` is honored so curl can stream large POST
// bodies without its 1s continue-timeout stall.
//
// Threading: Start() launches one accept thread plus
// `options.worker_threads` handler threads fed from a bounded queue, so
// a slow handler (a large /prune) does not stall scrapes. Handlers may
// therefore run concurrently and must be thread-safe. Stop() wakes
// every blocked socket wait immediately through a self-pipe — shutdown
// latency is bounded by the running handlers, not by a poll interval.
//
// This library sits below obs/ in the link order (xmlproj_obs links
// xmlproj_http): standard library + POSIX only, no other xmlproj
// dependencies.

#ifndef XMLPROJ_COMMON_HTTP_HTTP_H_
#define XMLPROJ_COMMON_HTTP_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace xmlproj {

// ---------------------------------------------------------------------
// W3C Trace Context (https://www.w3.org/TR/trace-context/).
//
// The server extracts a `traceparent` header from every request — or
// mints a fresh context when the header is absent or hostile — so each
// request carries a {trace_id, span_id, parent_id} triple the layers
// above (obs/trace.h, service/service.cc) hang request spans and log
// lines on. The client side injects the same header on outgoing calls.

struct TraceContext {
  std::string trace_id;   // 32 lowercase hex chars, not all-zero
  std::string span_id;    // 16 lowercase hex chars: *our* span
  std::string parent_id;  // the caller's span id; "" for a root span
  bool sampled = true;    // trace-flags bit 0 from the caller

  bool valid() const { return !trace_id.empty(); }
};

// Strict `traceparent` parse: exactly "00-<32 hex>-<16 hex>-<2 hex>"
// (55 bytes, lowercase hex only, version 00, ids not all-zero). On
// success fills trace_id and parent_id (the header's span id — the
// caller's span) and sampled, leaves span_id empty for the receiver to
// mint. Any deviation — bad version (incl. "ff"), short/long ids,
// uppercase, all-zero ids, oversized header — returns false and leaves
// `*out` untouched: hostile input never propagates.
bool ParseTraceparent(std::string_view header, TraceContext* out);

// "00-<trace_id>-<span_id>-01" ("-00" when !sampled). Requires a valid
// context (non-empty trace_id/span_id).
std::string FormatTraceparent(const TraceContext& context);

// Fresh random ids (thread-local PRNG seeded from std::random_device).
std::string MintTraceId();  // 32 lowercase hex, never all-zero
std::string MintSpanId();   // 16 lowercase hex, never all-zero
TraceContext MintTraceContext();

// One parsed request. Header names are lowercased at parse time; values
// keep their bytes (leading/trailing whitespace stripped).
struct HttpRequest {
  std::string method;  // as received ("GET", "POST", ...)
  std::string target;  // raw request target ("/prune?workload=abc")
  std::string path;    // target up to '?' ("/prune")
  std::string query;   // after '?', "" when absent ("workload=abc")
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  // The request's trace context: continued from a valid incoming
  // `traceparent` (trace_id kept, parent_id = the caller's span id,
  // span_id freshly minted) or minted whole otherwise. Always valid by
  // the time a handler runs.
  TraceContext trace;
  // The client's `x-request-id` when present and sane (<= 128 bytes of
  // [A-Za-z0-9._-]); otherwise the request's span id. Echoed on every
  // response as X-Request-Id.
  std::string request_id;

  // First header with that (lowercase) name; "" when absent.
  std::string_view Header(std::string_view name) const;
  // Value of `key` in the query string (percent-decoding of %XX and '+';
  // the service's keys and values are plain tokens); "" when absent.
  std::string QueryParam(std::string_view key) const;
  bool HasQueryParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  // Extra headers (e.g. {"Retry-After", "5"}); Content-Type,
  // Content-Length and Connection are emitted automatically.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

// Canonical reason phrase ("Not Found"); "Status" for unknown codes.
const char* HttpStatusReason(int status);

// Convenience builders.
HttpResponse TextResponse(int status, std::string body);
HttpResponse JsonResponse(int status, std::string body);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// Observation hook called once per parsed request, after the response
// is computed and before it is written: (request, response, start_ns,
// duration_ns), both times from a monotonic clock. Runs on the worker
// thread that served the request; must be thread-safe. Requests that
// die before parsing (garbage request line, oversized head) are not
// observed — there is nothing to attribute them to.
using HttpObserver = std::function<void(
    const HttpRequest&, const HttpResponse&, uint64_t start_ns,
    uint64_t duration_ns)>;

struct HttpServerOptions {
  // TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back from
  // HttpServer::port() after Start).
  uint16_t port = 0;
  // Handler threads. 1 serializes all requests (the old ObsServer
  // behavior); the service runs several so prunes overlap with scrapes.
  int worker_threads = 2;
  // Request-head cap (request line + headers). A scrape or service
  // request head fits in a line or two; anything larger is not ours.
  size_t max_header_bytes = 8192;
  // POST/PUT body cap; a declared Content-Length beyond it is refused
  // with 413 before any body byte is read.
  size_t max_body_bytes = 1 << 20;
  // Per-connection wall budget for reading the full request: a client
  // that dribbles bytes or never finishes gets cut off rather than
  // pinning a handler thread. The service raises it for big documents.
  int connection_deadline_ms = 2000;
  int listen_backlog = 16;
};

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact-match (method, path). Must be called
  // before Start. A path registered under some method answers 405 (with
  // an Allow header) for the others; unknown paths answer 404.
  void Handle(std::string method, std::string path, HttpHandler handler);

  // Installs the per-request observation hook (see HttpObserver). Must
  // be called before Start; a default-constructed (empty) observer
  // clears it.
  void SetObserver(HttpObserver observer);

  // Binds, listens, and launches the accept + worker threads. False on
  // any failure (port in use, no routes, ...) with a description in
  // `*error`; the server is then inert and Start may be retried.
  bool Start(const HttpServerOptions& options, std::string* error);

  // Stops every thread promptly: the self-pipe wakes all socket waits
  // immediately, so latency is bounded by in-flight handlers (plus
  // one write for their queued responses), never by a poll interval.
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (the chosen one when options.port was 0); 0 before a
  // successful Start.
  uint16_t port() const { return port_; }
  // Requests answered since Start (any status code).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string method;
    std::string path;
    HttpHandler handler;
  };

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;
  // Waits for readability of `fd`, also waking on the stop pipe and
  // giving up after `deadline_ms` (<= 0: no deadline). False on stop,
  // timeout, or error.
  bool WaitReadable(int fd, int deadline_ms) const;

  std::vector<Route> routes_;
  HttpObserver observer_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read, [1] write
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
};

// ---------------------------------------------------------------------
// Blocking client (127.0.0.1 only).

struct HttpClientOptions {
  int timeout_ms = 5000;
  // Cap on the bytes read off the socket (headers + body): a misbehaving
  // server cannot OOM the caller. Exceeding it fails the call.
  size_t max_response_bytes = 64u << 20;
  // Sent verbatim as a `traceparent` header when non-empty, so a
  // caller's trace context propagates across the hop (build it with
  // FormatTraceparent).
  std::string traceparent;
};

struct HttpClientResult {
  int status = 0;             // parsed from the status line (0 = none)
  std::string status_line;    // e.g. "HTTP/1.1 200 OK"
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased

  std::string_view Header(std::string_view name) const;
};

// One blocking HTTP/1.1 exchange against 127.0.0.1:<port>. `body` is
// sent with a Content-Length (and `content_type` when non-empty) for
// POST/PUT; pass "" for GET. False on connect/send/recv failure,
// timeout, response-size overflow, or an unparseable response —
// `*error` (nullable) says which.
bool HttpCall(uint16_t port, const std::string& method,
              const std::string& target, std::string_view body,
              const std::string& content_type, HttpClientResult* result,
              const HttpClientOptions& options = {}, std::string* error = nullptr);

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_HTTP_HTTP_H_
