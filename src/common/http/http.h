// Reusable loopback HTTP/1.1 core: the plumbing that used to live inside
// obs/server.cc, extracted so the observability scrape surface and the
// projection service daemon (service/service.h) share one
// implementation — request parsing, a routing table, response writing,
// connection deadlines, POST bodies with a size cap, and a blocking
// client with capped reads.
//
// Scope and non-goals: POSIX sockets only, bound to 127.0.0.1, one
// request per connection (every response carries `Connection: close`).
// This is an operator/sidecar surface — a scrape endpoint and a
// same-host pruning service — not an internet-facing web server: no
// TLS, no keep-alive, no chunked transfer encoding (rejected with 501).
// `Expect: 100-continue` is honored so curl can stream large POST
// bodies without its 1s continue-timeout stall.
//
// Threading: Start() launches one accept thread plus
// `options.worker_threads` handler threads fed from a bounded queue, so
// a slow handler (a large /prune) does not stall scrapes. Handlers may
// therefore run concurrently and must be thread-safe. Stop() wakes
// every blocked socket wait immediately through a self-pipe — shutdown
// latency is bounded by the running handlers, not by a poll interval.
//
// This library sits below obs/ in the link order (xmlproj_obs links
// xmlproj_http): standard library + POSIX only, no other xmlproj
// dependencies.

#ifndef XMLPROJ_COMMON_HTTP_HTTP_H_
#define XMLPROJ_COMMON_HTTP_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace xmlproj {

// One parsed request. Header names are lowercased at parse time; values
// keep their bytes (leading/trailing whitespace stripped).
struct HttpRequest {
  std::string method;  // as received ("GET", "POST", ...)
  std::string target;  // raw request target ("/prune?workload=abc")
  std::string path;    // target up to '?' ("/prune")
  std::string query;   // after '?', "" when absent ("workload=abc")
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with that (lowercase) name; "" when absent.
  std::string_view Header(std::string_view name) const;
  // Value of `key` in the query string (percent-decoding of %XX and '+';
  // the service's keys and values are plain tokens); "" when absent.
  std::string QueryParam(std::string_view key) const;
  bool HasQueryParam(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  // Extra headers (e.g. {"Retry-After", "5"}); Content-Type,
  // Content-Length and Connection are emitted automatically.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

// Canonical reason phrase ("Not Found"); "Status" for unknown codes.
const char* HttpStatusReason(int status);

// Convenience builders.
HttpResponse TextResponse(int status, std::string body);
HttpResponse JsonResponse(int status, std::string body);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  // TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back from
  // HttpServer::port() after Start).
  uint16_t port = 0;
  // Handler threads. 1 serializes all requests (the old ObsServer
  // behavior); the service runs several so prunes overlap with scrapes.
  int worker_threads = 2;
  // Request-head cap (request line + headers). A scrape or service
  // request head fits in a line or two; anything larger is not ours.
  size_t max_header_bytes = 8192;
  // POST/PUT body cap; a declared Content-Length beyond it is refused
  // with 413 before any body byte is read.
  size_t max_body_bytes = 1 << 20;
  // Per-connection wall budget for reading the full request: a client
  // that dribbles bytes or never finishes gets cut off rather than
  // pinning a handler thread. The service raises it for big documents.
  int connection_deadline_ms = 2000;
  int listen_backlog = 16;
};

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact-match (method, path). Must be called
  // before Start. A path registered under some method answers 405 (with
  // an Allow header) for the others; unknown paths answer 404.
  void Handle(std::string method, std::string path, HttpHandler handler);

  // Binds, listens, and launches the accept + worker threads. False on
  // any failure (port in use, no routes, ...) with a description in
  // `*error`; the server is then inert and Start may be retried.
  bool Start(const HttpServerOptions& options, std::string* error);

  // Stops every thread promptly: the self-pipe wakes all socket waits
  // immediately, so latency is bounded by in-flight handlers (plus
  // one write for their queued responses), never by a poll interval.
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (the chosen one when options.port was 0); 0 before a
  // successful Start.
  uint16_t port() const { return port_; }
  // Requests answered since Start (any status code).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string method;
    std::string path;
    HttpHandler handler;
  };

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;
  // Waits for readability of `fd`, also waking on the stop pipe and
  // giving up after `deadline_ms` (<= 0: no deadline). False on stop,
  // timeout, or error.
  bool WaitReadable(int fd, int deadline_ms) const;

  std::vector<Route> routes_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read, [1] write
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
};

// ---------------------------------------------------------------------
// Blocking client (127.0.0.1 only).

struct HttpClientOptions {
  int timeout_ms = 5000;
  // Cap on the bytes read off the socket (headers + body): a misbehaving
  // server cannot OOM the caller. Exceeding it fails the call.
  size_t max_response_bytes = 64u << 20;
};

struct HttpClientResult {
  int status = 0;             // parsed from the status line (0 = none)
  std::string status_line;    // e.g. "HTTP/1.1 200 OK"
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased

  std::string_view Header(std::string_view name) const;
};

// One blocking HTTP/1.1 exchange against 127.0.0.1:<port>. `body` is
// sent with a Content-Length (and `content_type` when non-empty) for
// POST/PUT; pass "" for GET. False on connect/send/recv failure,
// timeout, response-size overflow, or an unparseable response —
// `*error` (nullable) says which.
bool HttpCall(uint16_t port, const std::string& method,
              const std::string& target, std::string_view body,
              const std::string& content_type, HttpClientResult* result,
              const HttpClientOptions& options = {}, std::string* error = nullptr);

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_HTTP_HTTP_H_
