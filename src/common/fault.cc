#include "common/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace xmlproj {
namespace {

// FNV-1a: stable across platforms (std::hash is not), so a seeded chaos
// run reproduces everywhere.
uint64_t Fnv1a(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool ParseCode(std::string_view token, StatusCode* code) {
  if (token == "delay" || token == "ok") {
    *code = StatusCode::kOk;
  } else if (token == "parse") {
    *code = StatusCode::kParseError;
  } else if (token == "invalid") {
    *code = StatusCode::kInvalid;
  } else if (token == "unsupported") {
    *code = StatusCode::kUnsupported;
  } else if (token == "notfound") {
    *code = StatusCode::kNotFound;
  } else if (token == "cancelled") {
    *code = StatusCode::kCancelled;
  } else if (token == "resource") {
    *code = StatusCode::kResourceExhausted;
  } else if (token == "deadline") {
    *code = StatusCode::kDeadlineExceeded;
  } else if (token == "unavailable") {
    *code = StatusCode::kUnavailable;
  } else if (token == "internal") {
    *code = StatusCode::kInternal;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void FaultInjector::Arm(std::string_view failpoint, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedPoint& point = points_[std::string(failpoint)];
  point.spec = std::move(spec);
  point.rng = Rng(SeedFor(failpoint));
  point.hits = 0;
  point.fires = 0;
}

void FaultInjector::Disarm(std::string_view failpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(failpoint);
  if (it != points_.end()) points_.erase(it);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

uint64_t FaultInjector::SeedFor(std::string_view failpoint) const {
  uint64_t h = Fnv1a(failpoint);
  return seed_ ^ (h == 0 ? 1 : h);
}

Status FaultInjector::ArmFromSpec(std::string_view spec_text) {
  for (std::string_view entry : Split(spec_text, ',')) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    std::vector<std::string_view> fields = Split(entry, ':');
    if (fields.size() < 2 || fields.size() > 5 || fields[0].empty()) {
      return InvalidError("failpoint spec '" + std::string(entry) +
                          "' is not name:code[:prob[:max_fires[:delay_ms]]]");
    }
    FaultSpec spec;
    if (!ParseCode(fields[1], &spec.code)) {
      return InvalidError("failpoint spec '" + std::string(entry) +
                          "' has unknown status code '" +
                          std::string(fields[1]) + "'");
    }
    if (fields.size() > 2) {
      char* end = nullptr;
      std::string text(fields[2]);
      spec.probability = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return InvalidError("failpoint spec '" + std::string(entry) +
                            "' has bad probability '" + text + "'");
      }
    }
    if (fields.size() > 3) {
      char* end = nullptr;
      std::string text(fields[3]);
      long fires = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || fires < -1) {
        return InvalidError("failpoint spec '" + std::string(entry) +
                            "' has bad max_fires '" + text + "'");
      }
      spec.max_fires = static_cast<int>(fires);
    }
    if (fields.size() > 4) {
      char* end = nullptr;
      std::string text(fields[4]);
      long delay = std::strtol(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0' || delay < 0) {
        return InvalidError("failpoint spec '" + std::string(entry) +
                            "' has bad delay_ms '" + text + "'");
      }
      spec.delay_ms = static_cast<uint64_t>(delay);
    }
    Arm(fields[0], std::move(spec));
  }
  return Status::Ok();
}

Status FaultInjector::MaybeFail(std::string_view failpoint) {
  StatusCode code;
  std::string message;
  uint64_t delay_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(failpoint);
    if (it == points_.end()) return Status::Ok();
    ArmedPoint& point = it->second;
    ++point.hits;
    if (point.spec.max_fires >= 0 &&
        point.fires >= static_cast<uint64_t>(point.spec.max_fires)) {
      return Status::Ok();
    }
    if (point.spec.probability < 1.0 &&
        point.rng.Double01() >= point.spec.probability) {
      return Status::Ok();
    }
    ++point.fires;
    code = point.spec.code;
    delay_ms = point.spec.delay_ms;
    if (code != StatusCode::kOk) {
      message = point.spec.message.empty()
                    ? "injected fault at failpoint '" +
                          std::string(failpoint) + "'"
                    : point.spec.message;
    }
  }
  // Sleep outside the lock: concurrent slow tasks must stall in parallel,
  // not serialize on the injector.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (code == StatusCode::kOk) return Status::Ok();
  return Status(code, std::move(message));
}

uint64_t FaultInjector::HitCount(std::string_view failpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(failpoint);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FireCount(std::string_view failpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(failpoint);
  return it == points_.end() ? 0 : it->second.fires;
}

FaultInjector* FaultInjector::FromEnv() {
  static FaultInjector* instance = []() -> FaultInjector* {
    const char* spec = std::getenv("XMLPROJ_FAILPOINTS");
    if (spec == nullptr || spec[0] == '\0') return nullptr;
    auto* injector = new FaultInjector();
    Status status = injector->ArmFromSpec(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "XMLPROJ_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
    return injector;
  }();
  return instance;
}

}  // namespace xmlproj
