#include "common/status.h"

namespace xmlproj {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInvalid:
      return "INVALID";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xmlproj
