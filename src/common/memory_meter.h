// Peak-memory accounting for the query engines.
//
// The paper's Figure 5 reports the memory a query engine needs to process a
// query on the original vs the pruned document. We reproduce that with a
// deterministic engine-internal meter instead of process RSS: the evaluators
// report every materialized node list / item sequence / constructed node to
// a MemoryMeter, and benchmarks add the document arena size. Ratios between
// original and pruned runs — the quantity the paper plots — are preserved.

#ifndef XMLPROJ_COMMON_MEMORY_METER_H_
#define XMLPROJ_COMMON_MEMORY_METER_H_

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace xmlproj {

class MemoryMeter {
 public:
  void Add(size_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }
  // Releasing more than is currently accounted indicates a double release
  // in an evaluator; debug builds fail loudly, release builds clamp so a
  // benchmark never reports negative memory.
  void Sub(size_t bytes) {
    assert(bytes <= current_ && "MemoryMeter::Sub underflow (double release?)");
    current_ -= std::min(bytes, current_);
  }

  // Sets a floor (e.g. the loaded document size) contributing to the peak.
  void AddBaseline(size_t bytes) {
    baseline_ += bytes;
    peak_ = std::max(peak_, current_ + baseline_);
  }

  size_t current() const { return current_ + baseline_; }
  size_t peak() const { return std::max(peak_, current_ + baseline_); }

  void Reset() {
    current_ = 0;
    peak_ = 0;
    baseline_ = 0;
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
  size_t baseline_ = 0;
};

// RAII guard: meters a transient allocation for the guard's lifetime.
class MeteredBytes {
 public:
  MeteredBytes(MemoryMeter* meter, size_t bytes)
      : meter_(meter), bytes_(bytes) {
    if (meter_ != nullptr) meter_->Add(bytes_);
  }
  ~MeteredBytes() {
    if (meter_ != nullptr) meter_->Sub(bytes_);
  }
  MeteredBytes(const MeteredBytes&) = delete;
  MeteredBytes& operator=(const MeteredBytes&) = delete;

 private:
  MemoryMeter* meter_;
  size_t bytes_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_MEMORY_METER_H_
