#include "common/thread_pool.h"

#include <algorithm>

namespace xmlproj {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity,
                       ThreadPoolMetrics metrics)
    : queue_(queue_capacity),
      metrics_(metrics),
      instrumented_(metrics.enabled()) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::SampleQueueDepth() {
  int64_t depth = static_cast<int64_t>(queue_.size());
  if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Set(depth);
  if (metrics_.queue_depth_peak != nullptr) {
    metrics_.queue_depth_peak->SetMax(depth);
  }
  if (metrics_.trace != nullptr) {
    metrics_.trace->AddCounterEvent("queue depth", MonotonicNowNs(), depth);
  }
}

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  Task entry;
  entry.fn = std::move(task);
  if (instrumented_) entry.submit_ns = MonotonicNowNs();
  std::future<Status> done = entry.done.get_future();
  if (!queue_.Push(std::move(entry))) {
    // Pool already shut down: Push left `entry` untouched, so its promise
    // is still ours to fulfill.
    entry.done.set_value(CancelledError("thread pool is shut down"));
    return done;
  }
  if (instrumented_) SampleQueueDepth();
  return done;
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (std::optional<Task> task = queue_.Pop()) {
    if (!instrumented_) {
      task->done.set_value(task->fn());
      continue;
    }
    SampleQueueDepth();
    uint64_t start_ns = MonotonicNowNs();
    if (metrics_.queue_wait_ns != nullptr && start_ns > task->submit_ns) {
      metrics_.queue_wait_ns->Record(start_ns - task->submit_ns);
    }
    task->done.set_value(task->fn());
    uint64_t run_ns = MonotonicNowNs() - start_ns;
    if (metrics_.run_ns != nullptr) metrics_.run_ns->Record(run_ns);
    if (metrics_.busy_ns_total != nullptr) {
      metrics_.busy_ns_total->Increment(run_ns);
    }
    if (metrics_.tasks_total != nullptr) metrics_.tasks_total->Increment();
  }
}

}  // namespace xmlproj
