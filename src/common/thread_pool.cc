#include "common/thread_pool.h"

#include <algorithm>

namespace xmlproj {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity,
                       ThreadPoolMetrics metrics, FaultInjector* fault)
    : queue_(queue_capacity),
      metrics_(metrics),
      instrumented_(metrics.enabled()),
      fault_(fault) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::SampleQueueDepth() {
  int64_t depth = static_cast<int64_t>(queue_.size());
  if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Set(depth);
  if (metrics_.queue_depth_peak != nullptr) {
    metrics_.queue_depth_peak->SetMax(depth);
  }
  if (metrics_.trace != nullptr) {
    metrics_.trace->AddCounterEvent("queue depth", MonotonicNowNs(), depth);
  }
}

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  Task entry;
  entry.fn = std::move(task);
  if (instrumented_) entry.submit_ns = MonotonicNowNs();
  std::future<Status> done = entry.done.get_future();
  if (!queue_.Push(std::move(entry))) {
    // Pool already shut down: Push left `entry` untouched, so its promise
    // is still ours to fulfill.
    entry.done.set_value(CancelledError("thread pool is shut down"));
    return done;
  }
  if (instrumented_) SampleQueueDepth();
  return done;
}

std::optional<std::future<Status>> ThreadPool::TrySubmit(
    std::function<Status()> task) {
  Task entry;
  entry.fn = std::move(task);
  if (instrumented_) entry.submit_ns = MonotonicNowNs();
  std::future<Status> done = entry.done.get_future();
  if (!queue_.TryPush(std::move(entry))) return std::nullopt;
  if (instrumented_) SampleQueueDepth();
  return done;
}

void ThreadPool::Join() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Shutdown() {
  queue_.Close();
  Join();
}

bool ThreadPool::Shutdown(std::chrono::milliseconds drain_timeout) {
  uint64_t deadline_ns =
      MonotonicNowNs() +
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(drain_timeout)
              .count());
  cancel_after_ns_.store(deadline_ns, std::memory_order_relaxed);
  queue_.Close();
  Join();
  return cancelled_tasks_.load(std::memory_order_relaxed) == 0;
}

void ThreadPool::WorkerLoop() {
  while (std::optional<Task> task = queue_.Pop()) {
    // Deadline shutdown: queued tasks past the drain deadline resolve to
    // kCancelled instead of running. One relaxed load in the common case.
    uint64_t cancel_after = cancel_after_ns_.load(std::memory_order_relaxed);
    if (cancel_after != UINT64_MAX && MonotonicNowNs() >= cancel_after) {
      cancelled_tasks_.fetch_add(1, std::memory_order_relaxed);
      task->done.set_value(
          CancelledError("thread pool drain deadline passed before this "
                         "task could run"));
      continue;
    }
    if (fault_ != nullptr) {
      Status injected = fault_->MaybeFail("pool.task");
      if (!injected.ok()) {
        // Worker-level failure: the task never runs; its future carries
        // the injected status. Delay-only fires fall through and run the
        // task late (a slow worker).
        task->done.set_value(std::move(injected));
        continue;
      }
    }
    if (!instrumented_) {
      task->done.set_value(task->fn());
      continue;
    }
    SampleQueueDepth();
    uint64_t start_ns = MonotonicNowNs();
    if (metrics_.queue_wait_ns != nullptr && start_ns > task->submit_ns) {
      metrics_.queue_wait_ns->Record(start_ns - task->submit_ns);
    }
    if (metrics_.active_workers != nullptr) metrics_.active_workers->Add(1);
    task->done.set_value(task->fn());
    if (metrics_.active_workers != nullptr) metrics_.active_workers->Sub(1);
    uint64_t run_ns = MonotonicNowNs() - start_ns;
    if (metrics_.run_ns != nullptr) metrics_.run_ns->Record(run_ns);
    if (metrics_.busy_ns_total != nullptr) {
      metrics_.busy_ns_total->Increment(run_ns);
    }
    if (metrics_.tasks_total != nullptr) metrics_.tasks_total->Increment();
  }
}

}  // namespace xmlproj
