#include "common/thread_pool.h"

#include <algorithm>

namespace xmlproj {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_(queue_capacity) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<Status> ThreadPool::Submit(std::function<Status()> task) {
  Task entry;
  entry.fn = std::move(task);
  std::future<Status> done = entry.done.get_future();
  if (!queue_.Push(std::move(entry))) {
    // Pool already shut down: Push left `entry` untouched, so its promise
    // is still ours to fulfill.
    entry.done.set_value(CancelledError("thread pool is shut down"));
  }
  return done;
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (std::optional<Task> task = queue_.Pop()) {
    task->done.set_value(task->fn());
  }
}

}  // namespace xmlproj
