// Small string helpers shared by the parsers and the benchmark harness.

#ifndef XMLPROJ_COMMON_STRINGS_H_
#define XMLPROJ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xmlproj {

// Splits on a single character; keeps empty pieces.
std::vector<std::string_view> Split(std::string_view text, char sep);

// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// True if the string consists only of XML whitespace (space, tab, CR, LF).
bool IsAllXmlWhitespace(std::string_view text);

// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_STRINGS_H_
