#include "common/circuit.h"

namespace xmlproj {

const char* CircuitStateName(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed:
      return "closed";
    case CircuitState::kHalfOpen:
      return "half-open";
    case CircuitState::kOpen:
      return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.min_samples == 0) options_.min_samples = 1;
  if (options_.min_samples > options_.window) {
    options_.min_samples = options_.window;
  }
  if (options_.half_open_probes < 1) options_.half_open_probes = 1;
  window_.assign(options_.window, false);
  if (options_.metrics != nullptr) {
    options_.metrics->SetHelp(
        "xmlproj_circuit_state",
        "Circuit breaker state (0=closed, 1=half-open, 2=open).");
    options_.metrics->SetHelp("xmlproj_circuit_opened_total",
                              "Transitions into the open state.");
    options_.metrics->SetHelp(
        "xmlproj_circuit_fast_fail_total",
        "Task admissions denied while the breaker was open.");
    state_gauge_ = options_.metrics->GetGauge("xmlproj_circuit_state");
    opened_counter_ =
        options_.metrics->GetCounter("xmlproj_circuit_opened_total");
    fast_fail_counter_ =
        options_.metrics->GetCounter("xmlproj_circuit_fast_fail_total");
    if (state_gauge_ != nullptr) state_gauge_->Set(0);
  }
}

uint64_t CircuitBreaker::NowNs() const {
  return options_.now_ns != nullptr ? options_.now_ns() : MonotonicNowNs();
}

void CircuitBreaker::TransitionTo(CircuitState next, uint64_t now) {
  if (state_ == next) return;
  if (options_.logger != nullptr) {
    options_.logger->Log(
        next == CircuitState::kOpen ? LogLevel::kWarn : LogLevel::kInfo,
        "circuit.transition",
        {{"from", CircuitStateName(state_)},
         {"to", CircuitStateName(next)},
         {"failures_in_window", failures_in_window_},
         {"window_filled", static_cast<uint64_t>(filled_)}});
  }
  state_ = next;
  if (next == CircuitState::kOpen) {
    opened_at_ns_ = now;
    ++opened_count_;
    if (opened_counter_ != nullptr) opened_counter_->Increment();
  } else if (next == CircuitState::kHalfOpen) {
    probes_issued_ = 0;
    probe_successes_ = 0;
  } else {  // re-close: the window restarts clean
    window_.assign(options_.window, false);
    head_ = 0;
    filled_ = 0;
    failures_in_window_ = 0;
  }
  if (state_gauge_ != nullptr) state_gauge_->Set(static_cast<int>(next));
}

void CircuitBreaker::PushOutcome(bool failure) {
  if (filled_ == options_.window) {
    // Evicting the oldest outcome.
    if (window_[head_]) --failures_in_window_;
  } else {
    ++filled_;
  }
  window_[head_] = failure;
  if (failure) ++failures_in_window_;
  head_ = (head_ + 1) % options_.window;
}

bool CircuitBreaker::ShouldTrip() const {
  if (filled_ < options_.min_samples) return false;
  return static_cast<double>(failures_in_window_) >=
         options_.failure_threshold * static_cast<double>(filled_);
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t now = NowNs();
  if (state_ == CircuitState::kOpen &&
      now - opened_at_ns_ >= options_.cooldown_ms * 1000000ull) {
    TransitionTo(CircuitState::kHalfOpen, now);
  }
  switch (state_) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kHalfOpen:
      if (probes_issued_ < options_.half_open_probes) {
        ++probes_issued_;
        return true;
      }
      break;
    case CircuitState::kOpen:
      break;
  }
  ++denied_;
  if (fast_fail_counter_ != nullptr) fast_fail_counter_->Increment();
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case CircuitState::kClosed:
      PushOutcome(false);
      break;
    case CircuitState::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_probes) {
        TransitionTo(CircuitState::kClosed, NowNs());
      }
      break;
    case CircuitState::kOpen:
      break;  // pre-trip stragglers; see header
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case CircuitState::kClosed:
      PushOutcome(true);
      if (ShouldTrip()) TransitionTo(CircuitState::kOpen, NowNs());
      break;
    case CircuitState::kHalfOpen:
      TransitionTo(CircuitState::kOpen, NowNs());
      break;
    case CircuitState::kOpen:
      break;
  }
}

void CircuitBreaker::Seed(uint64_t successes, uint64_t failures) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != CircuitState::kClosed) return;
  uint64_t total = successes + failures;
  if (total == 0) return;
  uint64_t seed_failures = failures;
  uint64_t seed_successes = successes;
  if (total > options_.window) {
    // Scale down to the window, preserving the failure ratio; rank-round
    // failures up so a failing history cannot be rounded into a clean one.
    double scale =
        static_cast<double>(options_.window) / static_cast<double>(total);
    seed_failures = static_cast<uint64_t>(
        static_cast<double>(failures) * scale + 0.5);
    if (seed_failures > options_.window) seed_failures = options_.window;
    if (failures > 0 && seed_failures == 0) seed_failures = 1;
    seed_successes = options_.window - seed_failures;
  }
  // Successes first, failures last — the "most recent" end of the ring is
  // irrelevant for the ratio but keeps eviction order sensible.
  for (uint64_t i = 0; i < seed_successes; ++i) PushOutcome(false);
  for (uint64_t i = 0; i < seed_failures; ++i) PushOutcome(true);
  if (ShouldTrip()) TransitionTo(CircuitState::kOpen, NowNs());
}

CircuitState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

uint64_t CircuitBreaker::opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opened_count_;
}

}  // namespace xmlproj
