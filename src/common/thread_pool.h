// Task execution for the parallel pruning pipeline (and any future
// multi-document machinery): a bounded MPMC work queue plus a fixed-size
// thread pool whose tasks report completion through Status-carrying
// futures — errors propagate by value, matching the library's
// no-exceptions discipline (common/status.h).
//
// The queue is bounded so producers that outrun the workers block instead
// of buffering unboundedly (the pipeline submits one task per document; a
// million-document corpus must not materialize a million closures).

#ifndef XMLPROJ_COMMON_THREAD_POOL_H_
#define XMLPROJ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlproj {

// Bounded multi-producer multi-consumer FIFO. Push blocks while the queue
// is full, Pop while it is empty; Close releases both sides.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room. Returns false — leaving `item` untouched —
  // iff the queue has been closed.
  bool Push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking Push: returns false — leaving `item` untouched — when the
  // queue is full or closed. Lets a *worker* offer extra work to the pool
  // without risking the deadlock a blocking Push from inside the pool
  // invites (every worker stuck pushing, nobody popping).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available. Returns nullopt once the queue is
  // closed *and* drained (pending items are still delivered after Close).
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

// Optional telemetry sinks for a ThreadPool. Every pointer is nullable;
// a default-constructed struct (no sinks) keeps the pool on its original
// uninstrumented path — no clock reads, no extra queue locking. Callers
// resolve the metrics from a MetricsRegistry once and pass the handles in.
struct ThreadPoolMetrics {
  Counter* tasks_total = nullptr;     // tasks executed
  Counter* busy_ns_total = nullptr;   // summed task run time (worker
                                      // utilization = busy / (wall×threads))
  Histogram* queue_wait_ns = nullptr;  // submit → dequeue latency
  Histogram* run_ns = nullptr;         // task execution latency
  Gauge* queue_depth = nullptr;        // sampled after each push/pop
  Gauge* queue_depth_peak = nullptr;   // high-water mark of the above
  Gauge* active_workers = nullptr;     // workers currently running a task
                                       // (live view for /statusz)
  // Queue-depth counter events ("C" phase) land here, plotting back
  // pressure over time next to the pipeline's stage spans.
  TraceCollector* trace = nullptr;

  bool enabled() const {
    return tasks_total != nullptr || busy_ns_total != nullptr ||
           queue_wait_ns != nullptr || run_ns != nullptr ||
           queue_depth != nullptr || queue_depth_peak != nullptr ||
           active_workers != nullptr || trace != nullptr;
  }
};

// Fixed-size worker pool. Submitted tasks return Status; the returned
// future resolves to that Status (or kCancelled if the pool shut down
// before the task could be queued). Destruction drains queued tasks and
// joins the workers. Every future a Submit call ever returned resolves —
// a task is run, cancelled, or failed by an injected fault, never
// silently dropped.
//
// `fault` (optional) arms the "pool.task" failpoint: each fire either
// delays the task (delay-only spec — a slow worker) or resolves its
// future with the injected Status without running it (a worker-level
// failure). See common/fault.h.
class ThreadPool {
 public:
  // num_threads <= 0 selects hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads, size_t queue_capacity = 1024,
                      ThreadPoolMetrics metrics = {},
                      FaultInjector* fault = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::future<Status> Submit(std::function<Status()> task);

  // Non-blocking Submit: nullopt when the queue is full or the pool is
  // shut down (the task is dropped, never queued). Safe to call from a
  // worker thread — the chunked pipeline uses it to offer sibling chunks
  // to idle workers without a blocking Push that could deadlock the pool.
  std::optional<std::future<Status>> TrySubmit(std::function<Status()> task);

  // Stops accepting new tasks, runs everything already queued, joins.
  // Idempotent; implied by the destructor. Tasks submitted concurrently
  // with (or after) Shutdown resolve to kCancelled instead of hanging.
  void Shutdown();

  // Bounded drain: stops accepting new tasks and gives queued tasks until
  // `drain_timeout` from now to *start*; tasks still queued past the
  // deadline resolve to kCancelled without running. Returns true iff
  // everything queued ran. In-flight tasks are never interrupted (there
  // is no safe way to kill a thread), so a genuinely wedged task still
  // blocks the join — the deadline bounds queued work, which is what
  // grows unboundedly under load.
  bool Shutdown(std::chrono::milliseconds drain_timeout);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Tasks queued but not yet claimed by a worker (point-in-time; takes
  // the queue lock).
  size_t queue_size() const { return queue_.size(); }

  // Tasks resolved to kCancelled by a deadline Shutdown.
  uint64_t cancelled_tasks() const {
    return cancelled_tasks_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<Status()> fn;
    std::promise<Status> done;
    uint64_t submit_ns = 0;  // only stamped when metrics are enabled
  };

  void WorkerLoop();
  void SampleQueueDepth();
  void Join();

  BoundedQueue<Task> queue_;
  const ThreadPoolMetrics metrics_;
  const bool instrumented_;
  FaultInjector* const fault_;
  // Monotonic-ns deadline after which queued tasks are cancelled instead
  // of run; UINT64_MAX = no deadline (the common case — workers then skip
  // the clock read entirely).
  std::atomic<uint64_t> cancel_after_ns_{UINT64_MAX};
  std::atomic<uint64_t> cancelled_tasks_{0};
  std::vector<std::thread> workers_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_THREAD_POOL_H_
