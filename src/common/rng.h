// Deterministic pseudo-random number generation for document generators and
// property tests. SplitMix64 is tiny, fast, and reproducible across
// platforms, which matters because the XMark generator and the randomized
// soundness tests must produce identical inputs on every run.

#ifndef XMLPROJ_COMMON_RNG_H_
#define XMLPROJ_COMMON_RNG_H_

#include <cstdint>

namespace xmlproj {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int IntIn(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  double Double01() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_RNG_H_
