// Circuit breaker: the admission-control state machine behind /healthz.
//
// Until now /healthz derived its `circuit` field by eyeballing raw
// failure counters — a heuristic with no hysteresis, no recovery story,
// and no effect on the pipeline. This is the real thing, the classic
// three-state breaker:
//
//        failure ratio over a sliding window >= threshold
//   CLOSED ────────────────────────────────────────────────> OPEN
//     ^                                                        │
//     │ every probe succeeds                 cooldown elapses  │
//     │                                                        v
//     └──────────────────────────────────────────────── HALF-OPEN
//                         any probe fails ───> back to OPEN
//
// While OPEN the pipeline fast-fails admission (kIsolate / kRetry modes
// only — kFailFast already stops at the first failure): tasks are
// quarantined immediately with stage "circuit" instead of burning a
// worker on a corpus that is currently failing. HALF-OPEN admits a
// bounded number of probe tasks; their outcomes decide between re-close
// and re-open. The window can be seeded from the run journal
// (obs/journal.h), so a corpus that was failing when the previous
// process died starts degraded instead of naively healthy.
//
// Outcomes are recorded at *task* granularity (never per SAX event), so
// a plain mutex is the right concurrency tool here. The injectable clock
// exists for deterministic state-machine tests; production uses the
// monotonic clock.

#ifndef XMLPROJ_COMMON_CIRCUIT_H_
#define XMLPROJ_COMMON_CIRCUIT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"

namespace xmlproj {

enum class CircuitState : int {
  kClosed = 0,
  kHalfOpen = 1,
  kOpen = 2,
};

// Human-readable state, as /healthz reports it.
const char* CircuitStateName(CircuitState state);

struct CircuitBreakerOptions {
  // Sliding window of most-recent task outcomes the failure ratio is
  // computed over.
  size_t window = 32;
  // Outcomes required in the window before the breaker may trip — a
  // single early failure must not open a cold breaker.
  size_t min_samples = 8;
  // Trip when failures/outcomes in the window reaches this ratio.
  double failure_threshold = 0.5;
  // OPEN holds for this long before the next Allow() moves to HALF-OPEN.
  uint64_t cooldown_ms = 5000;
  // Probe tasks admitted in HALF-OPEN; all must succeed to re-close.
  int half_open_probes = 3;
  // Injectable monotonic clock for tests; null uses MonotonicNowNs().
  uint64_t (*now_ns)() = nullptr;
  // Optional metrics: publishes xmlproj_circuit_state (gauge, the
  // CircuitState integer), xmlproj_circuit_opened_total and
  // xmlproj_circuit_fast_fail_total. Must outlive the breaker.
  MetricsRegistry* metrics = nullptr;
  // Optional structured log: every state transition emits a
  // "circuit.transition" line (warn entering open, info otherwise).
  // Must outlive the breaker.
  StructuredLogger* logger = nullptr;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options = {});
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // Admission check for one task. CLOSED: always true. OPEN: false until
  // the cooldown elapses, at which point the breaker moves to HALF-OPEN
  // and this call admits the first probe. HALF-OPEN: true for up to
  // half_open_probes calls, false beyond (those wait for the probes'
  // verdict). A false return is counted as a fast-fail.
  bool Allow();

  // Task outcome reports. Degraded completions count as successes — the
  // document was served, which is the paper's graceful-degradation
  // stance. Outcomes arriving while OPEN (tasks admitted before the
  // trip) are dropped: they describe the pre-trip world and must not
  // perturb the probe accounting.
  void RecordSuccess();
  void RecordFailure();

  // Prepopulates the window from prior-run history (journal seeding),
  // preserving the success:failure ratio when the totals exceed the
  // window. A seeded window that already satisfies the trip condition
  // opens the breaker immediately (cooldown starts now). Call before
  // the breaker sees live traffic.
  void Seed(uint64_t successes, uint64_t failures);

  CircuitState state() const;
  // state() as its integer encoding — the shape the obs server's
  // circuit_state callback wants (obs/ cannot include this header).
  int state_int() const { return static_cast<int>(state()); }

  // Admissions denied (fast-fails) since construction.
  uint64_t denied() const;
  // CLOSED/HALF-OPEN → OPEN transitions since construction.
  uint64_t opened() const;

 private:
  uint64_t NowNs() const;
  // All Transition/record helpers assume mu_ is held.
  void TransitionTo(CircuitState next, uint64_t now);
  void PushOutcome(bool failure);
  bool ShouldTrip() const;

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  CircuitState state_ = CircuitState::kClosed;
  // Ring buffer of the last `window` outcomes (true = failure).
  std::vector<bool> window_;
  size_t head_ = 0;
  size_t filled_ = 0;
  size_t failures_in_window_ = 0;
  uint64_t opened_at_ns_ = 0;
  int probes_issued_ = 0;
  int probe_successes_ = 0;
  uint64_t denied_ = 0;
  uint64_t opened_count_ = 0;
  // Resolved metric handles (null when options_.metrics is null).
  Gauge* state_gauge_ = nullptr;
  Counter* opened_counter_ = nullptr;
  Counter* fast_fail_counter_ = nullptr;
};

}  // namespace xmlproj

#endif  // XMLPROJ_COMMON_CIRCUIT_H_
