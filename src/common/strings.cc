#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace xmlproj {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      break;
    }
    pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool IsAllXmlWhitespace(std::string_view text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace xmlproj
