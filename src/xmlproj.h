// Umbrella header: the public API of the type-based XML projection
// library. Include this (and link the `xmlproj` CMake target) to get the
// whole pipeline; the individual headers remain self-contained for
// finer-grained dependencies.
//
//   parse      ParseXml / ParseXmlStream            (xml/parser.h)
//   schema     ParseDtd, Validate, InferDataGuide   (dtd/)
//   analyze    AnalyzeXPathQuery / ExtractPaths +
//              InferProjectorForQuery               (projection/, xquery/)
//   prune      PruneDocument, StreamingPruner,
//              ValidatingPruner, ParseAndPrune      (projection/pruner.h)
//   query      XPathEvaluator, XQueryEvaluator      (xpath/, xquery/)

#ifndef XMLPROJ_XMLPROJ_H_
#define XMLPROJ_XMLPROJ_H_

#include "common/memory_meter.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dtd/dataguide.h"
#include "dtd/dtd.h"
#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "projection/pipeline.h"
#include "projection/projection.h"
#include "projection/projector_inference.h"
#include "projection/pruner.h"
#include "projection/type_inference.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/approximate.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/xpathl.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

#endif  // XMLPROJ_XMLPROJ_H_
