#include "projection/chunked.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/strings.h"
#include "xml/boundary.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/splice.h"

namespace xmlproj {
namespace {

// Mirrors the pipeline's per-open-element budget charge (pipeline.cc).
constexpr size_t kStackFrameBytes = 64;

// Captures the root's decoded attributes by parsing a synthesized
// document made of just the root start tag plus a closing tag, so the
// stitcher re-emits them through the same decode → re-escape path the
// sequential serializer uses (byte identity includes entity forms).
class RootAttributeCapture : public SaxHandler {
 public:
  Status StartElement(std::string_view,
                      const std::vector<SaxAttribute>& attributes) override {
    for (const SaxAttribute& a : attributes) {
      attributes_.emplace_back(std::string(a.name), std::string(a.value));
    }
    return Status::Ok();
  }
  Status EndElement(std::string_view) override { return Status::Ok(); }
  Status Characters(std::string_view) override { return Status::Ok(); }

  std::vector<std::pair<std::string, std::string>> Take() {
    return std::move(attributes_);
  }

 private:
  std::vector<std::pair<std::string, std::string>> attributes_;
};

struct ChunkResult {
  std::string output;
  PruneStats stats;
  Status status;
};

// State shared between the document task and any pool helpers it
// recruits. Owned by shared_ptr: a helper that arrives after every chunk
// is claimed only touches the claim counter, never the borrowed document
// pointers — the document task waits for all *claimed* chunks before
// returning, so those pointers are valid whenever a chunk actually runs.
struct ChunkedState {
  std::string_view xml_text;
  const Dtd* dtd = nullptr;
  const NameSet* projector = nullptr;
  bool validate = false;
  const ChunkPlan* plan = nullptr;
  FaultInjector* fault = nullptr;
  size_t max_bytes = 0;
  uint64_t deadline_ns = 0;
  ChunkTelemetry telemetry;

  std::vector<ChunkResult> results;
  std::atomic<size_t> next_chunk{0};
  // Shared budget meter: serialized chunk bytes + open-element stack
  // charges across all concurrent chunks of this document.
  std::atomic<size_t> metered_bytes{0};
  std::atomic<size_t> peak_bytes{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
};

// Budget guard over one chunk's pass, metering into the document-wide
// atomics so the cap bounds the whole document like the sequential
// BudgetGuard does. Only spliced in when a cap or deadline is set.
class SharedBudgetGuard : public SaxHandler {
 public:
  SharedBudgetGuard(SaxHandler* downstream,
                    const SplicingSerializingHandler* sink,
                    ChunkedState* state)
      : downstream_(downstream), sink_(sink), state_(state) {}

  void SetLocator(const SaxLocator* locator) override {
    downstream_->SetLocator(locator);
  }

  Status StartDocument() override { return Guard(0, 0, [this] {
    return downstream_->StartDocument(); }); }
  Status EndDocument() override { return Guard(0, 0, [this] {
    return downstream_->EndDocument(); }); }
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    return Guard(tag.size() + kStackFrameBytes, 0, [&] {
      return downstream_->StartElement(tag, attributes);
    });
  }
  Status EndElement(std::string_view tag) override {
    return Guard(0, tag.size() + kStackFrameBytes,
                 [&] { return downstream_->EndElement(tag); });
  }
  Status Characters(std::string_view text) override {
    return Guard(0, 0, [&] { return downstream_->Characters(text); });
  }

 private:
  template <typename Fn>
  Status Guard(size_t add_bytes, size_t sub_bytes, Fn&& forward) {
    if (state_->deadline_ns != 0 && MonotonicNowNs() > state_->deadline_ns) {
      return DeadlineExceededError(
          "document exceeded its deadline during chunked pruning");
    }
    XMLPROJ_RETURN_IF_ERROR(forward());
    // Includes the sink's deferred splice span (invariant under its
    // flush), so post-parse Finish() cannot grow past what was metered.
    size_t produced = sink_->produced_bytes();
    size_t growth = produced - accounted_output_;
    accounted_output_ = produced;
    size_t delta = add_bytes + growth;
    size_t current;
    if (delta >= sub_bytes) {
      current = state_->metered_bytes.fetch_add(delta - sub_bytes,
                                                std::memory_order_relaxed) +
                (delta - sub_bytes);
    } else {
      current = state_->metered_bytes.fetch_sub(sub_bytes - delta,
                                                std::memory_order_relaxed) -
                (sub_bytes - delta);
    }
    size_t peak = state_->peak_bytes.load(std::memory_order_relaxed);
    while (current > peak && !state_->peak_bytes.compare_exchange_weak(
                                 peak, current, std::memory_order_relaxed)) {
    }
    if (state_->max_bytes != 0 && current > state_->max_bytes) {
      return ResourceExhaustedError(StringPrintf(
          "document memory budget exhausted: %zu bytes metered across "
          "chunks, cap %zu",
          current, state_->max_bytes));
    }
    return Status::Ok();
  }

  SaxHandler* downstream_;
  const SplicingSerializingHandler* sink_;
  ChunkedState* state_;
  size_t accounted_output_ = 0;
};

void RunOneChunk(ChunkedState& state, size_t index) {
  const PlannedChunk& chunk = state.plan->chunks[index];
  ChunkResult& result = state.results[index];
  const ChunkTelemetry& telemetry = state.telemetry;
  const bool timed = telemetry.chunk_run_ns != nullptr ||
                     (telemetry.trace != nullptr && telemetry.sample_spans);
  uint64_t start_ns = timed ? MonotonicNowNs() : 0;

  std::string_view slice =
      state.xml_text.substr(chunk.begin, chunk.end - chunk.begin);
  XmlParseOptions parse_options;
  parse_options.fault = state.fault;
  parse_options.base_offset = chunk.begin;

  // Splice sink over the *whole* document: the fragment parse reports
  // spans rebased by base_offset, so kept ranges index state.xml_text
  // directly and chunk outputs stay byte-identical to the sequential
  // pass.
  SplicingSerializingHandler sink(state.xml_text, &result.output);
  const bool guarded = state.max_bytes != 0 || state.deadline_ns != 0;
  // The guard wraps the whole chain (outermost) so it sees every event.
  auto run = [&](SaxHandler* pruner_top) -> Status {
    if (!guarded) return ParseXmlFragment(slice, pruner_top, parse_options);
    SharedBudgetGuard guard(pruner_top, &sink, &state);
    return ParseXmlFragment(slice, &guard, parse_options);
  };

  if (state.validate) {
    ValidatingPruner pruner(*state.dtd, *state.projector, &sink);
    pruner.set_fault_injector(state.fault);
    ValidatingPruner::SeededAncestor ancestor;
    ancestor.tag = state.plan->root_tag;
    ancestor.state = chunk.root_state;
    result.status = pruner.SeedAncestors({&ancestor, 1});
    if (result.status.ok()) result.status = run(&pruner);
    result.stats = pruner.stats();
  } else {
    StreamingPruner pruner(*state.dtd, *state.projector, &sink);
    pruner.set_fault_injector(state.fault);
    std::string_view root_tag = state.plan->root_tag;
    result.status = pruner.SeedAncestors({&root_tag, 1});
    if (result.status.ok()) result.status = run(&pruner);
    result.stats = pruner.stats();
  }
  // Fragment parses end without an EndDocument, so flush explicitly.
  sink.Finish();

  if (timed) {
    uint64_t run_ns = MonotonicNowNs() - start_ns;
    if (telemetry.chunk_run_ns != nullptr) {
      telemetry.chunk_run_ns->Record(run_ns);
    }
    if (telemetry.trace != nullptr && telemetry.sample_spans) {
      telemetry.trace->AddCompleteEvent(
          "chunk", "chunk", start_ns, run_ns,
          {{"task", static_cast<int64_t>(telemetry.task_index)},
           {"chunk", static_cast<int64_t>(index)}});
    }
  }
}

// Claims chunks off the shared counter until none remain. Run by the
// document task and by every recruited helper; nobody blocks waiting for
// someone else's chunk, which is what makes scheduling documents and
// chunks on one pool deadlock-free.
void DrainChunks(const std::shared_ptr<ChunkedState>& state) {
  const size_t total = state->results.size();
  while (true) {
    size_t index = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (index >= total) return;
    RunOneChunk(*state, index);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->completed;
    }
    state->cv.notify_one();
  }
}

}  // namespace

std::optional<ChunkPlan> PlanChunks(std::string_view xml_text, const Dtd& dtd,
                                    const NameSet& projector, bool validate,
                                    const IntraDocOptions& options) {
  if (!options.enabled() || xml_text.size() < options.min_doc_bytes) {
    return std::nullopt;
  }
  TopLevelBoundaries bounds = ScanTopLevelBoundaries(xml_text);
  if (!bounds.splittable || bounds.children.size() < 2) return std::nullopt;

  NameId root_name = dtd.NameOfTag(bounds.root_tag);
  if (root_name == kNoName) return std::nullopt;
  ChunkPlan plan;
  plan.root_tag = bounds.root_tag;
  plan.total_children = bounds.children.size();

  // Decode the root's attributes via a real parse of just its start tag.
  {
    std::string snippet(xml_text.substr(
        bounds.root_start_begin,
        bounds.root_start_end - bounds.root_start_begin));
    snippet.append("</");
    snippet.append(bounds.root_tag);
    snippet.push_back('>');
    RootAttributeCapture capture;
    if (!ParseXmlStream(snippet, &capture).ok()) return std::nullopt;
    plan.root_attributes = capture.Take();
  }

  if (validate) {
    if (root_name != dtd.root()) return std::nullopt;
    for (const AttributeDecl& decl : dtd.production(root_name).attributes) {
      if (!decl.required) continue;
      bool present = false;
      for (const auto& [name, value] : plan.root_attributes) {
        if (name == decl.name) {
          present = true;
          break;
        }
      }
      if (!present) return std::nullopt;
    }
    plan.root_kept = projector.Contains(root_name);
  } else if (!projector.Contains(root_name)) {
    // Without validation an unprojected root prunes the whole document;
    // the degenerate sequential pass handles (and stat-counts) it.
    return std::nullopt;
  }

  // Target chunk size: the configured target, shrunk if needed to give
  // every thread min_chunks_per_thread chunks of the child region.
  size_t content_bytes =
      bounds.root_end_begin > bounds.root_start_end
          ? bounds.root_end_begin - bounds.root_start_end
          : 0;
  size_t want_chunks = static_cast<size_t>(options.threads) *
                       static_cast<size_t>(std::max(
                           1, options.min_chunks_per_thread));
  size_t target = options.chunk_bytes == 0 ? size_t{1} : options.chunk_bytes;
  if (want_chunks > 0 && content_bytes / want_chunks < target) {
    target = std::max(size_t{1}, content_bytes / want_chunks);
  }

  // Greedy grouping of consecutive children; validation additionally
  // advances the root's content model across the child names, recording
  // the state at every chunk start. Plan-time model violations (or an
  // unaccepted final state) mean the document is invalid: fall back so
  // the sequential pass reports it exactly as it always has.
  ContentMatcher::MatchState state;
  const ContentMatcher* matcher = nullptr;
  if (validate) {
    matcher = &dtd.MatcherOf(root_name);
    state = matcher->StartState();
  }
  PlannedChunk current;
  bool open = false;
  for (size_t i = 0; i < bounds.children.size(); ++i) {
    const TopLevelChild& child = bounds.children[i];
    if (!open) {
      current = PlannedChunk{};
      current.begin = child.begin;
      current.first_child = i;
      if (validate) current.root_state = state;
      open = true;
    }
    if (validate) {
      NameId child_name = dtd.NameOfTag(child.tag);
      if (child_name == kNoName) return std::nullopt;
      matcher->Advance(&state, child_name);
      if (state.dead) return std::nullopt;
    }
    current.end = child.end;
    ++current.child_count;
    if (current.end - current.begin >= target) {
      plan.chunks.push_back(std::move(current));
      open = false;
    }
  }
  if (open) plan.chunks.push_back(std::move(current));
  if (validate && !matcher->Accepts(state)) return std::nullopt;
  if (plan.chunks.size() < 2) return std::nullopt;
  return plan;
}

Status RunChunkedPrune(std::string_view xml_text, const Dtd& dtd,
                       const NameSet& projector, bool validate,
                       const ChunkPlan& plan, const ChunkRunContext& context,
                       std::string* output, PruneStats* stats,
                       size_t* peak_bytes) {
  auto state = std::make_shared<ChunkedState>();
  state->xml_text = xml_text;
  state->dtd = &dtd;
  state->projector = &projector;
  state->validate = validate;
  state->plan = &plan;
  state->fault = context.fault;
  state->max_bytes = context.max_bytes;
  state->deadline_ns = context.deadline_ns;
  state->telemetry = context.telemetry;
  state->results.resize(plan.chunks.size());

  if (context.telemetry.chunks_total != nullptr) {
    context.telemetry.chunks_total->Increment(plan.chunks.size());
  }

  // Recruit helpers without ever blocking: a full or shut-down pool just
  // means this thread prunes more of the chunks itself. Helper futures
  // are dropped — helper outcomes live in the per-chunk results, and the
  // completion latch below (not the futures) is what gates returning.
  if (context.pool != nullptr) {
    size_t max_helpers = context.max_helpers < 0
                             ? 0
                             : static_cast<size_t>(context.max_helpers);
    size_t helpers = std::min(max_helpers, plan.chunks.size() - 1);
    for (size_t i = 0; i < helpers; ++i) {
      if (!context.pool->TrySubmit([state]() -> Status {
            DrainChunks(state);
            return Status::Ok();
          })) {
        break;
      }
    }
  }
  DrainChunks(state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->completed == state->results.size();
    });
  }

  if (peak_bytes != nullptr) {
    *peak_bytes = state->peak_bytes.load(std::memory_order_relaxed);
  }

  // First failing chunk in document order — the error the sequential
  // pass would have hit first.
  for (const ChunkResult& result : state->results) {
    if (!result.status.ok()) {
      output->clear();
      return result.status;
    }
  }

  const ChunkTelemetry& telemetry = context.telemetry;
  const bool timed = telemetry.stitch_ns != nullptr ||
                     (telemetry.trace != nullptr && telemetry.sample_spans);
  uint64_t stitch_start = timed ? MonotonicNowNs() : 0;

  // Stitch: re-emit the root exactly as the sequential serializer does
  // (lazy start-tag close included: if every chunk pruned to nothing the
  // output is "<root/>"), with chunk buffers appended verbatim.
  output->clear();
  size_t total_bytes = 0;
  for (const ChunkResult& result : state->results) {
    total_bytes += result.output.size();
  }
  output->reserve(total_bytes + plan.root_tag.size() * 2 + 16);
  {
    XmlWriter writer(output);
    if (plan.root_kept) {
      writer.StartElement(plan.root_tag);
      for (const auto& [name, value] : plan.root_attributes) {
        writer.Attribute(name, value);
      }
    }
    for (const ChunkResult& result : state->results) {
      writer.Raw(result.output);
    }
    if (plan.root_kept) writer.EndElement();
  }

  PruneStats folded;
  // The root element itself: one input node, kept iff projected.
  folded.input_nodes = 1;
  folded.kept_nodes = plan.root_kept ? 1 : 0;
  for (const ChunkResult& result : state->results) {
    folded.input_nodes += result.stats.input_nodes;
    folded.kept_nodes += result.stats.kept_nodes;
    folded.input_text_bytes += result.stats.input_text_bytes;
    folded.kept_text_bytes += result.stats.kept_text_bytes;
  }
  *stats = folded;

  if (timed) {
    uint64_t stitch_ns = MonotonicNowNs() - stitch_start;
    if (telemetry.stitch_ns != nullptr) {
      telemetry.stitch_ns->Record(stitch_ns);
    }
    if (telemetry.trace != nullptr && telemetry.sample_spans) {
      telemetry.trace->AddCompleteEvent(
          "stitch", "chunk", stitch_start, stitch_ns,
          {{"task", static_cast<int64_t>(telemetry.task_index)},
           {"chunks", static_cast<int64_t>(plan.chunks.size())}});
    }
  }
  return Status::Ok();
}

}  // namespace xmlproj
