// Type-driven projection — pruning (paper Def 2.7 and §6).
//
// A node survives iff its grammar name is in the projector π. Because π is
// chain-closed, discarding a node discards its whole subtree, so pruning
// is a single pass:
//
//  - StreamingPruner is a SaxHandler filter: it tracks the current element
//    name with a stack (O(depth) state, the paper's "single bufferless
//    one-pass traversal") and forwards or drops events. Compose it with
//    the XML parser to prune *while parsing* — pruning then costs nothing
//    beyond parsing itself — or behind ReplayAsSax for in-memory pruning.
//
//  - PruneDocument is the DOM-level equivalent given a validated
//    document's interpretation ℑ (Def 2.7 verbatim); used by tests to
//    cross-check the streaming path.

#ifndef XMLPROJ_PROJECTION_PRUNER_H_
#define XMLPROJ_PROJECTION_PRUNER_H_

#include <span>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "dtd/validator.h"
#include "xml/document.h"
#include "xml/sax.h"

namespace xmlproj {

struct PruneStats {
  size_t input_nodes = 0;   // elements + text nodes seen
  size_t kept_nodes = 0;
  size_t input_text_bytes = 0;
  size_t kept_text_bytes = 0;
};

// t \_ℑ π (Def 2.7): nodes whose name is outside π become the empty
// forest. When `new_to_old` is non-null it receives, for every node id of
// the pruned document, the id of the originating node in `doc` — the
// identity map of the formal model, used by tests to state Theorem 4.5
// ("the query returns the same *nodes* on t and t\π") literally.
Result<Document> PruneDocument(const Document& doc,
                               const Interpretation& interp,
                               const NameSet& projector,
                               PruneStats* stats = nullptr,
                               std::vector<NodeId>* new_to_old = nullptr);

// SAX filter implementing the same projection in one streaming pass.
// Elements with undeclared tags are rejected (the input must be valid
// with respect to the DTD for type-driven projection to apply).
class StreamingPruner : public SaxHandler {
 public:
  StreamingPruner(const Dtd& dtd, const NameSet& projector,
                  SaxHandler* downstream);

  // Forwarded so a splicing sink downstream sees the parser's byte
  // spans; the pruner itself never reads them (a kept event is kept
  // whole, so its span passes through unchanged).
  void SetLocator(const SaxLocator* locator) override {
    downstream_->SetLocator(locator);
  }

  Status StartDocument() override;
  Status EndDocument() override;
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override;
  Status EndElement(std::string_view tag) override;
  Status Characters(std::string_view text) override;

  const PruneStats& stats() const { return stats_; }

  // Seeds the pruner with already-open ancestor elements (outermost
  // first), as if their start tags had been seen and kept. This lets a
  // chunk of a larger document start mid-tree: the chunked pipeline seeds
  // each chunk's pruner with the root element before replaying the
  // chunk's events. Every ancestor must be declared in the DTD and in the
  // projector (a chunk under a pruned ancestor would not exist). Emits no
  // downstream events and does not touch stats — the enclosing pass
  // accounts for the ancestors exactly once. Call before any event.
  Status SeedAncestors(std::span<const std::string_view> ancestors);

  // Arms the "prune.element" failpoint, checked per StartElement
  // (common/fault.h). Null — the default — is one compare per element.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

 private:
  const Dtd& dtd_;
  const NameSet& projector_;
  SaxHandler* downstream_;
  FaultInjector* fault_ = nullptr;
  // Names of currently open (kept) elements.
  std::vector<NameId> open_names_;
  // Number of start tags seen since entering a pruned subtree.
  size_t skip_depth_ = 0;
  PruneStats stats_;
};

// Prune-while-validating (§6: "an optional validation option, that makes
// it possible to prune the document while validating it"): one streaming
// pass that checks the *input* document against the DTD — content models
// via incremental Glushkov states, required attributes, root element —
// while forwarding the projected events downstream. O(depth) state.
class ValidatingPruner : public SaxHandler {
 public:
  // An already-open ancestor for SeedAncestors: its tag plus the
  // content-model (Glushkov) state the validator would hold after the
  // children preceding the chunk. The chunk planner precomputes the state
  // by advancing the root's matcher over the names of the top-level
  // children before the chunk.
  struct SeededAncestor {
    std::string_view tag;
    ContentMatcher::MatchState state;
  };

  ValidatingPruner(const Dtd& dtd, const NameSet& projector,
                   SaxHandler* downstream);

  void SetLocator(const SaxLocator* locator) override {
    downstream_->SetLocator(locator);
  }

  Status StartDocument() override;
  Status EndDocument() override;
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override;
  Status EndElement(std::string_view tag) override;
  Status Characters(std::string_view text) override;

  const PruneStats& stats() const { return stats_; }

  // Streaming-pruner counterpart of StreamingPruner::SeedAncestors, with
  // per-ancestor validator state. Marks the root as seen when `ancestors`
  // is non-empty. Required attributes of the ancestors are not re-checked
  // (the enclosing pass validated their start tags); content-model
  // acceptance of an ancestor is also the enclosing pass's job, since its
  // children extend beyond this chunk. Call before any event.
  Status SeedAncestors(std::span<const SeededAncestor> ancestors);

  // Arms the "prune.element" failpoint, checked per StartElement.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

 private:
  struct OpenElement {
    NameId name;
    ContentMatcher::MatchState state;
    bool kept;
  };

  const Dtd& dtd_;
  const NameSet& projector_;
  SaxHandler* downstream_;
  FaultInjector* fault_ = nullptr;
  std::vector<OpenElement> open_;
  bool saw_root_ = false;
  PruneStats stats_;
};

// Convenience: validate-and-prune `xml_text` in one pass (fails on
// invalid input), producing the projected DOM.
Result<Document> ParseValidateAndPrune(std::string_view xml_text,
                                       const Dtd& dtd,
                                       const NameSet& projector,
                                       PruneStats* stats = nullptr);

// Convenience: parse-and-prune `xml_text` in one pass, producing the
// projected DOM without materializing the unprojected document.
Result<Document> ParseAndPrune(std::string_view xml_text, const Dtd& dtd,
                               const NameSet& projector,
                               PruneStats* stats = nullptr);

// Convenience: prune an in-memory document via the streaming pruner.
Result<Document> PruneViaStreaming(const Document& doc, const Dtd& dtd,
                                   const NameSet& projector,
                                   PruneStats* stats = nullptr);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_PRUNER_H_
