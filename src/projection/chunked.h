// Intra-document chunked pruning: shard one document across cores.
//
// The paper's pruner is a single one-pass traversal with O(depth) state,
// and a type projector is a context-free *name set* — whether a node
// survives depends only on its own grammar name, never on global path
// state. That is what makes the pass shardable where path-based
// projection (Marian & Siméon) is not: any subtree can be pruned knowing
// nothing but the names of its ancestors. This module exploits it by
// splitting a document at the boundaries of the root's children (the
// regions under XMark's <site>), pruning the chunks concurrently — each
// chunk's pruner seeded with the root as an already-open ancestor — and
// stitching the serialized chunk outputs back in document order. The
// result is byte-identical to the sequential pass.
//
// Split: ScanTopLevelBoundaries (xml/boundary.h), a raw byte scan, so the
// serial fraction stays tiny. Plan: group top-level children into chunks
// near a target byte size; under validation, precompute the root
// content-model (Glushkov) state at every chunk start by advancing over
// the preceding child names — plan-time work linear in the number of
// children, not bytes. Run: chunks execute on the shared ThreadPool via a
// claim counter (workers never block on other chunks, so scheduling
// chunks and documents on one pool cannot deadlock). Stitch: per-chunk
// buffers are appended via XmlWriter::Raw inside the re-emitted root
// element — O(1) buffers per chunk, per-chunk memory O(depth + chunk).
//
// Anything the planner cannot prove safe — unsplittable root, malformed
// markup, plan-time validation failure, too little data — is reported as
// "no plan" and the caller falls back to the sequential pass, which then
// reproduces the exact sequential behavior (including diagnostics).

#ifndef XMLPROJ_PROJECTION_CHUNKED_H_
#define XMLPROJ_PROJECTION_CHUNKED_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dtd/content_model.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "projection/pruner.h"

namespace xmlproj {

// Intra-document parallelism knobs (PipelineOptions::intra_doc).
struct IntraDocOptions {
  // Concurrent chunks per document; <= 1 disables chunking entirely.
  int threads = 1;
  // Target serialized chunk size. The planner may cut smaller chunks to
  // give every thread min_chunks_per_thread of them.
  size_t chunk_bytes = 4u << 20;
  // Load-balance heuristic: aim for at least threads * this many chunks
  // (bounded below by chunk granularity — one top-level child).
  int min_chunks_per_thread = 2;
  // Documents smaller than this run sequentially: the split/stitch
  // overhead outweighs any speedup.
  size_t min_doc_bytes = 256u << 10;

  bool enabled() const { return threads > 1; }
};

// One planned chunk: input[begin,end) covers `child_count` consecutive
// top-level children starting at index `first_child`, with only
// whitespace/comments/PIs between them.
struct PlannedChunk {
  size_t begin = 0;
  size_t end = 0;
  size_t first_child = 0;
  size_t child_count = 0;
  // Root content-model state at the chunk start (validation runs only);
  // default-constructed otherwise.
  ContentMatcher::MatchState root_state;
};

struct ChunkPlan {
  std::vector<PlannedChunk> chunks;
  // Views into the planned document; the caller keeps it alive.
  std::string_view root_tag;
  // Decoded root attributes in document order, re-emitted during
  // stitching exactly as the sequential serializer would.
  std::vector<std::pair<std::string, std::string>> root_attributes;
  // Whether the root element survives projection (always true without
  // validation: an unprojected root is planned as "no plan" there).
  bool root_kept = true;
  size_t total_children = 0;
};

// Telemetry handles for a chunked run; all nullable (see obs/metrics.h
// naming in README "Observability").
struct ChunkTelemetry {
  Counter* chunks_total = nullptr;    // xmlproj_chunks_total
  Histogram* chunk_run_ns = nullptr;  // xmlproj_chunk_run_ns
  Histogram* stitch_ns = nullptr;     // xmlproj_chunk_stitch_ns
  TraceCollector* trace = nullptr;
  // Pre-made sampling decision for this document's spans
  // (TraceCollector::ShouldSample over the *task* index).
  bool sample_spans = true;
  // Task index attached to span args.
  size_t task_index = 0;
};

// Everything a chunked run needs beyond the plan.
struct ChunkRunContext {
  // Pool to offer sibling chunks to; null runs every chunk on the calling
  // thread. Offers are non-blocking (ThreadPool::TrySubmit) and the
  // calling thread always participates, so a busy or shut-down pool
  // degrades to inline execution instead of deadlocking.
  ThreadPool* pool = nullptr;
  // Upper bound on helpers recruited from the pool (IntraDocOptions
  // threads - 1 in the pipeline).
  int max_helpers = 0;
  FaultInjector* fault = nullptr;
  // Shared budget across all chunks of the document: byte cap on the
  // metered bytes (serialized chunk buffers + open-element stacks,
  // pooled) and an absolute MonotonicNowNs deadline. 0 = unlimited.
  size_t max_bytes = 0;
  uint64_t deadline_ns = 0;
  ChunkTelemetry telemetry;
};

// Plans a chunked prune of `xml_text`. nullopt means "run sequentially":
// the document is too small, its root is not splittable, chunking cannot
// win (fewer than two chunks), or plan-time validation (root name /
// required attributes / root content model over the child names) failed —
// the sequential pass then surfaces the genuine error. `xml_text` must
// outlive the returned plan.
std::optional<ChunkPlan> PlanChunks(std::string_view xml_text, const Dtd& dtd,
                                    const NameSet& projector, bool validate,
                                    const IntraDocOptions& options);

// Runs a planned chunked prune. On success `output` holds the stitched
// serialized projection — byte-identical to the sequential pass — and
// `stats` the folded per-chunk PruneStats (root element included). On
// failure the first failing chunk's status (in document order) is
// returned and `output` is cleared. `peak_bytes`(nullable) receives the
// high-water mark of the shared budget meter.
Status RunChunkedPrune(std::string_view xml_text, const Dtd& dtd,
                       const NameSet& projector, bool validate,
                       const ChunkPlan& plan, const ChunkRunContext& context,
                       std::string* output, PruneStats* stats,
                       size_t* peak_bytes);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_CHUNKED_H_
