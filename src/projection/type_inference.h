// The XPath^ℓ type system (paper §4.1, Figure 1).
//
// Judgements have the form (τ_c, κ_c) ⊢_E Path : (τ_r, κ_r): starting from
// the names τ_c under context κ_c, Path produces names τ_r with updated
// context κ_r. The context κ records names already visited on the way down
// and is what makes upward axes precise: following an upward axis
// intersects A_E(τ, Axis) with κ (the motivating example in §4.1 shows why
// plain A_E over-approximates parent steps when a name occurs in several
// element contents).
//
// Environments are kept well-formed: κ ⊆ τ ∪ A_E(τ, ancestor).

#ifndef XMLPROJ_PROJECTION_TYPE_INFERENCE_H_
#define XMLPROJ_PROJECTION_TYPE_INFERENCE_H_

#include <span>
#include <string>

#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "xpath/xpathl.h"

namespace xmlproj {

// Σ = (τ, κ).
struct TypeEnv {
  NameSet type;
  NameSet context;

  bool Empty() const { return type.Empty(); }
};

class TypeInference {
 public:
  explicit TypeInference(const Dtd& dtd) : dtd_(dtd) {}

  // ({X}, {X, #document}) — the judgement's starting environment for paths
  // evaluated from the root element (the paper's ({X},{X}), extended with
  // the synthetic document name so upward overshoot stays sound).
  TypeEnv InitialEnv() const;

  // ({#document}, {#document}) — starting environment for absolute paths,
  // which the XPath data model evaluates from the document node.
  TypeEnv DocumentEnv() const;

  // Σ ⊢ Path : Σ' (composition rule: a step at a time).
  TypeEnv InferPath(const TypeEnv& env, const LPath& path) const;
  TypeEnv InferSteps(const TypeEnv& env,
                     std::span<const LStep> steps) const;
  TypeEnv InferStep(const TypeEnv& env, const LStep& step) const;

  // --- Figure 1 building blocks (exposed for the projector rules) -------

  // A_E(τ, Axis) (Def 4.1). `axis` must be an XPath^ℓ axis.
  NameSet AxisSet(const NameSet& type, Axis axis) const;
  // T_E(τ, Test) (Def 4.1).
  NameSet TestSet(const NameSet& type, TestKind test,
                  const std::string& tag) const;

  // Rules 1-2: Axis::node. Downward axes extend the context; upward axes
  // intersect with it.
  TypeEnv ApplyAxis(const TypeEnv& env, Axis axis) const;
  // Rule 3: self::Test.
  TypeEnv ApplySelfTest(const TypeEnv& env, TestKind test,
                        const std::string& tag) const;
  // Rule 4: self::node[P1 or ... or Pn]. Keeps the names for which at
  // least one disjunct may select something.
  TypeEnv ApplyCondition(const TypeEnv& env,
                         std::span<const LPath> condition) const;

  const Dtd& dtd() const { return dtd_; }

 private:
  // Restores well-formedness: κ ∩ (τ ∪ A_E(τ, ancestor)).
  NameSet NormalizeContext(const NameSet& context,
                           const NameSet& type) const;

  const Dtd& dtd_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_TYPE_INFERENCE_H_
