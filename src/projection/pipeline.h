// Parallel pruning pipeline: parse → [validate+]prune → serialize as one
// fused SAX pass per document, fanned across a thread pool.
//
// The paper's pruner is a single bufferless one-pass traversal whose cost
// disappears into parsing (§6) — a per-document property this pipeline
// preserves verbatim: every task runs exactly the sequential
// StreamingPruner / ValidatingPruner pass with O(depth) state. What is
// parallel is the *corpus* dimension of the journal version's workloads —
// many documents pruned for one merged workload projector, or one corpus
// pruned per query with per-query projectors (projectors are closed under
// union, §1.2, so both deployments are sound; Theorem 4.5 applies to each
// document independently). Consequently the parallel output is
// byte-for-byte the sequential output, in the same order
// (tests/pipeline_test.cc diffs the two), and soundness is untouched.
//
// Error handling: the first failing document cancels the tasks still
// queued (running passes finish their document); the pipeline returns the
// lowest-indexed task error, annotated with the task index.
//
// Observability: every run folds per-task PruneStats into a
// PipelineSummary (the paper's Table 1 quantities at corpus scale), and
// PipelineOptions can attach a MetricsRegistry (stage latency histograms,
// pruning counters, thread-pool queue stats) and a TraceCollector
// (per-task queue-wait/parse/prune/serialize spans for Perfetto). Both
// are opt-in; with neither attached the hot path reads no clocks.

#ifndef XMLPROJ_PROJECTION_PIPELINE_H_
#define XMLPROJ_PROJECTION_PIPELINE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "projection/pruner.h"

namespace xmlproj {

struct PipelineOptions {
  // Worker threads; <= 0 selects hardware concurrency. 1 runs inline on
  // the calling thread (no pool), which is the reference sequential path.
  int num_threads = 0;
  // Fuse DTD validation of the *input* into the pruning pass
  // (ValidatingPruner instead of StreamingPruner).
  bool validate = false;
  // Bound on queued-but-unclaimed tasks; submission blocks beyond it.
  size_t queue_capacity = 256;
  // Optional telemetry. When `metrics` is set the pipeline publishes the
  // xmlproj_pipeline_* / xmlproj_stage_* / xmlproj_pool_* metrics (see
  // README "Observability") into it; when `trace` is set every task emits
  // queue-wait / parse / [validate+]prune / serialize spans. Both null
  // (the default) keeps the hot path free of clock reads — the
  // instrumentation is compiled in but costs nothing disabled.
  MetricsRegistry* metrics = nullptr;
  TraceCollector* trace = nullptr;
};

// One unit of work: prune `xml_text` with `projector`. Both pointers are
// borrowed and must outlive the pipeline call.
struct PipelineTask {
  const std::string* xml_text = nullptr;
  const NameSet* projector = nullptr;
};

struct PipelineResult {
  std::string output;  // serialized projected document
  PruneStats stats;
};

// Corpus-level totals: per-task PruneStats folded together plus the byte
// sizes of inputs and projected outputs — exactly the Table 1 quantities
// (nodes kept/dropped, size reduction), measured over the whole run.
struct PipelineSummary {
  size_t tasks = 0;
  size_t input_bytes = 0;   // sum of task input XML sizes
  size_t output_bytes = 0;  // sum of serialized projected outputs
  size_t input_nodes = 0;
  size_t kept_nodes = 0;
  size_t input_text_bytes = 0;
  size_t kept_text_bytes = 0;
  double wall_seconds = 0;  // whole-run wall time, all tasks

  // Fraction kept (Table 1's "pruning ratio" is 1 - these).
  double NodeRatio() const {
    return input_nodes == 0 ? 1.0
                            : static_cast<double>(kept_nodes) /
                                  static_cast<double>(input_nodes);
  }
  double ByteRatio() const {
    return input_bytes == 0 ? 1.0
                            : static_cast<double>(output_bytes) /
                                  static_cast<double>(input_bytes);
  }

  void AddTask(size_t task_input_bytes, const PipelineResult& result);
};

// A pipeline run: per-task results (aligned with the submitted tasks
// regardless of scheduling) plus the corpus-level summary, so callers no
// longer fold per-task stats themselves.
struct PipelineRun {
  std::vector<PipelineResult> results;
  PipelineSummary summary;
};

// Runs every task through the fused parse → [validate+]prune → serialize
// pass. run.results[i] corresponds to tasks[i].
Result<PipelineRun> RunPruningPipeline(std::span<const PipelineTask> tasks,
                                       const Dtd& dtd,
                                       const PipelineOptions& options = {});

// Corpus × one (merged workload) projector: results align with `corpus`.
Result<PipelineRun> PruneCorpus(std::span<const std::string> corpus,
                                const Dtd& dtd, const NameSet& projector,
                                const PipelineOptions& options = {});

// Corpus × per-query projectors (the multi-query deployment): task and
// result index is `doc * projectors.size() + query`.
Result<PipelineRun> PruneCorpusPerQuery(std::span<const std::string> corpus,
                                        const Dtd& dtd,
                                        std::span<const NameSet> projectors,
                                        const PipelineOptions& options = {});

// Aggregate helpers over pipeline results.
size_t TotalOutputBytes(std::span<const PipelineResult> results);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_PIPELINE_H_
