// Parallel pruning pipeline: parse → [validate+]prune → serialize as one
// fused SAX pass per document, fanned across a thread pool.
//
// The paper's pruner is a single bufferless one-pass traversal whose cost
// disappears into parsing (§6) — a per-document property this pipeline
// preserves verbatim: every task runs exactly the sequential
// StreamingPruner / ValidatingPruner pass with O(depth) state. What is
// parallel is the *corpus* dimension of the journal version's workloads —
// many documents pruned for one merged workload projector, or one corpus
// pruned per query with per-query projectors (projectors are closed under
// union, §1.2, so both deployments are sound; Theorem 4.5 applies to each
// document independently). Consequently the parallel output is
// byte-for-byte the sequential output, in the same order
// (tests/pipeline_test.cc diffs the two), and soundness is untouched.
//
// Error handling: the first failing document cancels the tasks still
// queued (running passes finish their document); the pipeline returns the
// lowest-indexed task error, annotated with the task index.

#ifndef XMLPROJ_PROJECTION_PIPELINE_H_
#define XMLPROJ_PROJECTION_PIPELINE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "projection/pruner.h"

namespace xmlproj {

struct PipelineOptions {
  // Worker threads; <= 0 selects hardware concurrency. 1 runs inline on
  // the calling thread (no pool), which is the reference sequential path.
  int num_threads = 0;
  // Fuse DTD validation of the *input* into the pruning pass
  // (ValidatingPruner instead of StreamingPruner).
  bool validate = false;
  // Bound on queued-but-unclaimed tasks; submission blocks beyond it.
  size_t queue_capacity = 256;
};

// One unit of work: prune `xml_text` with `projector`. Both pointers are
// borrowed and must outlive the pipeline call.
struct PipelineTask {
  const std::string* xml_text = nullptr;
  const NameSet* projector = nullptr;
};

struct PipelineResult {
  std::string output;  // serialized projected document
  PruneStats stats;
};

// Runs every task through the fused parse → [validate+]prune → serialize
// pass. results[i] corresponds to tasks[i] regardless of scheduling.
Result<std::vector<PipelineResult>> RunPruningPipeline(
    std::span<const PipelineTask> tasks, const Dtd& dtd,
    const PipelineOptions& options = {});

// Corpus × one (merged workload) projector: results align with `corpus`.
Result<std::vector<PipelineResult>> PruneCorpus(
    std::span<const std::string> corpus, const Dtd& dtd,
    const NameSet& projector, const PipelineOptions& options = {});

// Corpus × per-query projectors (the multi-query deployment): task and
// result index is `doc * projectors.size() + query`.
Result<std::vector<PipelineResult>> PruneCorpusPerQuery(
    std::span<const std::string> corpus, const Dtd& dtd,
    std::span<const NameSet> projectors, const PipelineOptions& options = {});

// Aggregate helpers over pipeline results.
size_t TotalOutputBytes(std::span<const PipelineResult> results);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_PIPELINE_H_
