// Parallel pruning pipeline: parse → [validate+]prune → serialize as one
// fused SAX pass per document, fanned across a thread pool.
//
// The paper's pruner is a single bufferless one-pass traversal whose cost
// disappears into parsing (§6) — a per-document property this pipeline
// preserves verbatim: every task runs exactly the sequential
// StreamingPruner / ValidatingPruner pass with O(depth) state. What is
// parallel is the *corpus* dimension of the journal version's workloads —
// many documents pruned for one merged workload projector, or one corpus
// pruned per query with per-query projectors (projectors are closed under
// union, §1.2, so both deployments are sound; Theorem 4.5 applies to each
// document independently). Consequently the parallel output is
// byte-for-byte the sequential output, in the same order
// (tests/pipeline_test.cc diffs the two), and soundness is untouched.
//
// Error handling is policy-driven (PipelineOptions::policy):
//   kFailFast (default) — the first failing document cancels the tasks
//     still queued (running passes finish their document); the pipeline
//     returns the lowest-indexed task error, annotated with the index.
//   kIsolate — a failing document is quarantined: its result slot stays
//     empty, a structured TaskFailure{task, stage, status} lands in
//     PipelineRun::failures, and the rest of the corpus proceeds
//     untouched (surviving outputs are byte-identical to a fault-free
//     sequential run over the survivors; see tests/chaos_test.cc).
//   kRetry — transient failures (kUnavailable: I/O hiccups, injected
//     worker faults) are retried with bounded deterministic backoff;
//     tasks that still fail — or fail non-transiently — are quarantined
//     as under kIsolate, with the attempt count in the report.
//
// Resource budgets (PipelineOptions::budget) bound each task: a byte cap
// on the memory the pass materializes (output buffer + open-element
// stack, metered via MemoryMeter) and a wall-clock deadline, both checked
// at SAX-event granularity inside the fused pass, so an oversized or
// wedged document surfaces as a clean kResourceExhausted /
// kDeadlineExceeded Status instead of an OOM kill or a hang.
//
// Graceful degradation (PipelineOptions::degrade_on_invalid): when
// pruning fails because the document does not fit the DTD (validation
// failure or an undeclared element — the Marian & Siméon situation where
// type-based projection is inapplicable but the document is fine), the
// task falls back to an identity no-prune pass so the query can still be
// answered on the unprojected document; degraded tasks are flagged on the
// result and counted in the summary and the obs metrics.
//
// Observability: every run folds per-task PruneStats into a
// PipelineSummary (the paper's Table 1 quantities at corpus scale), and
// PipelineOptions can attach a MetricsRegistry (stage latency histograms,
// pruning counters, thread-pool queue stats) and a TraceCollector
// (per-task queue-wait/parse/prune/serialize spans for Perfetto). Both
// are opt-in; with neither attached the hot path reads no clocks.

#ifndef XMLPROJ_PROJECTION_PIPELINE_H_
#define XMLPROJ_PROJECTION_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "projection/chunked.h"
#include "projection/pruner.h"

namespace xmlproj {

class CircuitBreaker;  // common/circuit.h
class RunCheckpoint;   // projection/checkpoint.h
struct ResumePlan;     // projection/checkpoint.h

// How the pipeline reacts to a failing task (see file comment).
enum class ErrorPolicy {
  kFailFast,  // first error cancels the run (the PR 1 behavior)
  kIsolate,   // quarantine the failing document, continue the corpus
  kRetry,     // bounded retries for transient faults, then isolate
};

// Bounded deterministic backoff for ErrorPolicy::kRetry. Attempt n sleeps
// backoff_ms * multiplier^(n-1) before re-running; no jitter, so a chaos
// run replays identically.
struct RetryOptions {
  int max_attempts = 3;     // total attempts per task (>= 1)
  uint64_t backoff_ms = 1;  // sleep before the second attempt
  double multiplier = 2.0;
};

// Per-task resource budget. Zero fields are unlimited; with both zero the
// budget machinery stays entirely out of the pass (no extra SAX filter,
// no clock reads).
struct TaskBudget {
  // Cap on the bytes the fused pass materializes: serialized output plus
  // the open-element stack (per-frame overhead + tag bytes), metered via
  // MemoryMeter at SAX-event granularity. Exceeding it aborts the task
  // with kResourceExhausted within one SAX event of the cap.
  size_t max_bytes = 0;
  // Per-task (per-attempt) wall-clock deadline, checked before every SAX
  // event; a stalled pass aborts with kDeadlineExceeded.
  uint64_t deadline_ms = 0;

  bool active() const { return max_bytes != 0 || deadline_ms != 0; }
};

// Structured report for one quarantined task (kIsolate / kRetry).
struct TaskFailure {
  size_t task = 0;    // index into the submitted tasks
  // Coarse stage attribution derived from the status code: "parse",
  // "validate", "prune", "budget", "deadline", "io", "pool", or "task" —
  // or "circuit" when the task was fast-failed at admission by an open
  // circuit breaker (PipelineOptions::breaker) and never executed.
  std::string stage;
  Status status;
  int attempts = 1;      // attempts consumed (> 1 only under kRetry)
  size_t peak_bytes = 0; // metered task bytes at failure (budgeted runs)
};

struct PipelineOptions {
  // Worker threads; <= 0 selects hardware concurrency. 1 runs inline on
  // the calling thread (no pool), which is the reference sequential path.
  int num_threads = 0;
  // Fuse DTD validation of the *input* into the pruning pass
  // (ValidatingPruner instead of StreamingPruner).
  bool validate = false;
  // Bound on queued-but-unclaimed tasks; submission blocks beyond it.
  size_t queue_capacity = 256;
  // Optional telemetry. When `metrics` is set the pipeline publishes the
  // xmlproj_pipeline_* / xmlproj_stage_* / xmlproj_pool_* metrics (see
  // README "Observability") into it; when `trace` is set every task emits
  // queue-wait / parse / [validate+]prune / serialize spans. Both null
  // (the default) keeps the hot path free of clock reads — the
  // instrumentation is compiled in but costs nothing disabled.
  MetricsRegistry* metrics = nullptr;
  TraceCollector* trace = nullptr;
  // Optional structured log (obs/log.h): drain summaries and watchdog
  // firings emit one line each — run-level events only, never per-task
  // or per-event. Borrowed; may be null (the default).
  StructuredLogger* logger = nullptr;
  // Fault tolerance (see file comment and README "Fault tolerance").
  ErrorPolicy policy = ErrorPolicy::kFailFast;
  RetryOptions retry;
  TaskBudget budget;
  // Fall back to an identity (no-prune) pass when pruning fails because
  // the document does not fit the DTD (kInvalid / kNotFound), so the
  // query still answers on the unprojected document.
  bool degrade_on_invalid = false;
  // Intra-document parallelism: when intra_doc.threads > 1, documents
  // large enough to be worth it are split at top-level element boundaries
  // and pruned as concurrent chunks (projection/chunked.h), byte-identical
  // to the sequential pass. Documents the planner declines (small,
  // non-splittable root, plan-time validation failure) fall back to the
  // sequential pass; a chunk failure quarantines the whole document under
  // the usual error policy. With num_threads > 1 the chunks share the
  // document pool (sized to max(num_threads, intra_doc.threads)) — chunk
  // helpers never block on the pool, so the composition cannot deadlock.
  IntraDocOptions intra_doc;
  // Optional fault injector threaded through parser ("xml.parse"), pruner
  // ("prune.element"), thread pool ("pool.task") and the pipeline itself
  // ("pipeline.task"). Null — the default — leaves one pointer compare
  // per checkpoint on the hot path.
  FaultInjector* fault = nullptr;
  // Metric labels for the multi-query deployment (requires `metrics`).
  // With label_queries set, PruneCorpusPerQuery additionally publishes
  // each task's Table-1 counters into `query_id`-labeled series (one per
  // projector), so one scrape shows per-query pruning ratios; the
  // unlabeled totals remain the sum over queries. A non-empty
  // corpus_label adds a `corpus` label to every labeled series (and, for
  // PruneCorpus, labels tasks with just the corpus). Labeled publication
  // costs one registry lookup per counter per *task* — nothing on the
  // per-event hot path — and zero when both fields are defaulted.
  bool label_queries = false;
  std::string corpus_label;
  // Optional circuit breaker (common/circuit.h), consulted at task
  // admission under kIsolate / kRetry: while the breaker is open, tasks
  // are quarantined immediately with stage "circuit" instead of running
  // against a corpus that is currently failing; executed tasks report
  // their outcome back (degraded completions count as successes).
  // Ignored under kFailFast — that policy already stops at the first
  // failure, and fast-failing it would only change *which* error wins.
  // Borrowed; must outlive the run.
  CircuitBreaker* breaker = nullptr;
  // Meter per-task memory even when `budget` is inactive (the same
  // metering SAX filter with no cap): publishes the per-task peak into
  // the xmlproj_memory_peak_bytes gauge and the run's
  // PipelineSummary::max_task_peak_bytes, which the run journal records
  // and SuggestBudgets() auto-tunes from — a budget has to be measured
  // before it can be enforced.
  bool meter_memory = false;
  // Crash-safe checkpointing (projection/checkpoint.h). With `checkpoint`
  // attached (open), every executed task's terminal outcome is made
  // durable as it happens: completed outputs are committed atomically to
  // the checkpoint's out/ directory (write *.tmp, fsync, rename) and one
  // fsync'd JSONL line records the outcome — one append per task,
  // nothing on the per-event hot path. A failed commit or append fails
  // the task (stage "commit" / "checkpoint"): a run that cannot promise
  // durability must not pretend it did. Borrowed; must outlive the run.
  RunCheckpoint* checkpoint = nullptr;
  // Resume plan from PlanResume(): tasks the plan marks done are skipped
  // (their committed outputs already re-verified by size + hash), their
  // recorded stats fold into the final PipelineSummary, and carried
  // quarantines resurface in PipelineRun::failures. Requires
  // `resume->resumable` and done.size() == task count. Borrowed.
  const ResumePlan* resume = nullptr;
  // Graceful drain: when `stop` flips true (a signal handler's atomic),
  // the pipeline stops admitting tasks — queued-but-unstarted tasks are
  // abandoned without a terminal outcome (counted in
  // PipelineSummary::drained, absent from failures and the checkpoint,
  // so a resume re-runs them) — and in-flight tasks finish. With
  // `drain_ms` > 0 the pool shutdown bounds the wait; past the deadline
  // still-queued work is cancelled. Borrowed; may be null.
  const std::atomic<bool>* stop = nullptr;
  uint64_t drain_ms = 0;
  // Per-task watchdog (requires budget.deadline_ms > 0): a monitor
  // thread flags any task still running past watchdog_factor × the
  // deadline budget — the task aborts at its next SAX event with
  // kDeadlineExceeded and is quarantined with stage "watchdog", and when
  // a checkpoint is attached the quarantine record is appended *while
  // the task is still wedged*, so even a subsequent crash leaves the
  // poisonous document on record. <= 0 (default) disables the watchdog.
  double watchdog_factor = 0;
};

// One unit of work: prune `xml_text` with `projector`. All pointers are
// borrowed and must outlive the pipeline call. `labels` (optional)
// attaches metric labels to this task's published counters — the
// PruneCorpusPerQuery fan-out points tasks of query q at one shared
// {query_id="q"} label set.
struct PipelineTask {
  const std::string* xml_text = nullptr;
  const NameSet* projector = nullptr;
  const MetricLabels* labels = nullptr;
};

struct PipelineResult {
  std::string output;  // serialized projected document
  PruneStats stats;
  // True when this task fell back to the identity (no-prune) pass:
  // `output` is then the serialized *unprojected* document.
  bool degraded = false;
};

// Corpus-level totals: per-task PruneStats folded together plus the byte
// sizes of inputs and projected outputs — exactly the Table 1 quantities
// (nodes kept/dropped, size reduction), measured over the whole run.
struct PipelineSummary {
  size_t tasks = 0;
  size_t input_bytes = 0;   // sum of task input XML sizes
  size_t output_bytes = 0;  // sum of serialized projected outputs
  size_t input_nodes = 0;
  size_t kept_nodes = 0;
  size_t input_text_bytes = 0;
  size_t kept_text_bytes = 0;
  double wall_seconds = 0;  // whole-run wall time, all tasks
  // Fault-tolerance accounting. `tasks` and the byte/node totals above
  // cover *completed* tasks only (including degraded ones); quarantined
  // failures are counted here and detailed in PipelineRun::failures.
  size_t failed = 0;    // tasks quarantined under kIsolate / kRetry
  size_t degraded = 0;  // tasks that fell back to the identity pass
  size_t retries = 0;   // extra attempts consumed under kRetry
  // Checkpoint/resume and drain accounting. Skipped tasks *are* counted
  // in `tasks` and the byte/node totals (their recorded stats fold in),
  // so a resumed run's summary matches an uninterrupted one; drained
  // tasks are counted nowhere else — they have no terminal outcome.
  size_t resumed_skipped = 0;  // settled by a prior run, not re-executed
  size_t drained = 0;          // abandoned un-run after a stop request
  // Largest per-task metered memory peak across the run (0 when neither
  // a byte budget nor meter_memory was active). Feeds the run journal's
  // peak_memory_bytes and budget auto-tuning.
  size_t max_task_peak_bytes = 0;

  // Fraction kept (Table 1's "pruning ratio" is 1 - these).
  double NodeRatio() const {
    return input_nodes == 0 ? 1.0
                            : static_cast<double>(kept_nodes) /
                                  static_cast<double>(input_nodes);
  }
  double ByteRatio() const {
    return input_bytes == 0 ? 1.0
                            : static_cast<double>(output_bytes) /
                                  static_cast<double>(input_bytes);
  }

  void AddTask(size_t task_input_bytes, const PipelineResult& result);
};

// A pipeline run: per-task results (aligned with the submitted tasks
// regardless of scheduling) plus the corpus-level summary, so callers no
// longer fold per-task stats themselves. Under kIsolate / kRetry a
// returned-OK run can still carry quarantined failures: results[f.task]
// is empty for each f in `failures` (sorted by task index).
struct PipelineRun {
  std::vector<PipelineResult> results;
  PipelineSummary summary;
  std::vector<TaskFailure> failures;
};

// Runs every task through the fused parse → [validate+]prune → serialize
// pass. run.results[i] corresponds to tasks[i].
Result<PipelineRun> RunPruningPipeline(std::span<const PipelineTask> tasks,
                                       const Dtd& dtd,
                                       const PipelineOptions& options = {});

// Corpus × one (merged workload) projector: results align with `corpus`.
Result<PipelineRun> PruneCorpus(std::span<const std::string> corpus,
                                const Dtd& dtd, const NameSet& projector,
                                const PipelineOptions& options = {});

// One document × one projector, inline on the calling thread: the
// service-daemon entry point (service/service.h prunes one POSTed
// document per request). By construction this is a one-document corpus
// through the exact same fused pass as the batch pipeline — byte
// parity between the service and batch planes is structural, not
// re-implemented. Pool-shaped options (num_threads, queue_capacity) are
// ignored; budgets, validation, metrics, intra-doc chunking and fault
// injection all apply. Returns the failing task's Status on error
// (kFailFast semantics): no corpus to quarantine into.
Result<PipelineRun> PruneDocument(const std::string& xml_text, const Dtd& dtd,
                                  const NameSet& projector,
                                  const PipelineOptions& options = {});

// Corpus × per-query projectors (the multi-query deployment): task and
// result index is `doc * projectors.size() + query`.
Result<PipelineRun> PruneCorpusPerQuery(std::span<const std::string> corpus,
                                        const Dtd& dtd,
                                        std::span<const NameSet> projectors,
                                        const PipelineOptions& options = {});

// Aggregate helpers over pipeline results.
size_t TotalOutputBytes(std::span<const PipelineResult> results);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_PIPELINE_H_
