#include "projection/pruner.h"

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {

Result<Document> PruneDocument(const Document& doc,
                               const Interpretation& interp,
                               const NameSet& projector, PruneStats* stats,
                               std::vector<NodeId>* new_to_old) {
  DocumentBuilder builder;
  PruneStats local;
  if (new_to_old != nullptr) {
    new_to_old->clear();
    new_to_old->push_back(doc.document_node());
  }
  const NodeId total = static_cast<NodeId>(doc.size());
  // Pre-order walk; skip over pruned subtrees using subtree_end, closing
  // elements as we pass their extent.
  std::vector<NodeId> end_stack;
  NodeId id = 1;
  while (id < total) {
    while (!end_stack.empty() && id >= end_stack.back()) {
      builder.EndElement();
      end_stack.pop_back();
    }
    const Node& n = doc.node(id);
    ++local.input_nodes;
    NameId name = interp[id];
    if (n.kind == NodeKind::kText) {
      local.input_text_bytes += doc.text(id).size();
      if (projector.Contains(name)) {
        builder.AddText(doc.text(id));
        if (new_to_old != nullptr) new_to_old->push_back(id);
        ++local.kept_nodes;
        local.kept_text_bytes += doc.text(id).size();
      }
      ++id;
      continue;
    }
    if (!projector.Contains(name)) {
      // Count the discarded subtree, then jump over it.
      for (NodeId j = id + 1; j < n.subtree_end; ++j) {
        ++local.input_nodes;
        if (doc.kind(j) == NodeKind::kText) {
          local.input_text_bytes += doc.text(j).size();
        }
      }
      id = n.subtree_end;
      continue;
    }
    ++local.kept_nodes;
    if (new_to_old != nullptr) new_to_old->push_back(id);
    builder.StartElement(doc.tag_name(id));
    for (uint32_t k = 0; k < doc.attr_count(id); ++k) {
      const Attribute& a = doc.attr(id, k);
      builder.AddAttribute(doc.symbols().NameOf(a.name), a.value);
    }
    end_stack.push_back(n.subtree_end);
    ++id;
  }
  while (!end_stack.empty()) {
    builder.EndElement();
    end_stack.pop_back();
  }
  if (stats != nullptr) *stats = local;
  return builder.Finish();
}

StreamingPruner::StreamingPruner(const Dtd& dtd, const NameSet& projector,
                                 SaxHandler* downstream)
    : dtd_(dtd), projector_(projector), downstream_(downstream) {}

Status StreamingPruner::SeedAncestors(
    std::span<const std::string_view> ancestors) {
  for (std::string_view tag : ancestors) {
    NameId name = dtd_.NameOfTag(tag);
    if (name == kNoName) {
      return InvalidError("undeclared seeded ancestor '" + std::string(tag) +
                          "'");
    }
    if (!projector_.Contains(name)) {
      return InvalidError("seeded ancestor '" + std::string(tag) +
                          "' is not in the projector");
    }
    open_names_.push_back(name);
  }
  return Status::Ok();
}

Status StreamingPruner::StartDocument() {
  return downstream_->StartDocument();
}

Status StreamingPruner::EndDocument() { return downstream_->EndDocument(); }

Status StreamingPruner::StartElement(
    std::string_view tag, const std::vector<SaxAttribute>& attributes) {
  XMLPROJ_RETURN_IF_ERROR(XMLPROJ_FAULT_HIT(fault_, "prune.element"));
  ++stats_.input_nodes;
  if (skip_depth_ > 0) {
    ++skip_depth_;
    return Status::Ok();
  }
  NameId name = dtd_.NameOfTag(tag);
  if (name == kNoName) {
    return InvalidError("undeclared element '" + std::string(tag) +
                        "' while pruning");
  }
  if (!projector_.Contains(name)) {
    skip_depth_ = 1;
    return Status::Ok();
  }
  open_names_.push_back(name);
  ++stats_.kept_nodes;
  return downstream_->StartElement(tag, attributes);
}

Status StreamingPruner::EndElement(std::string_view tag) {
  if (skip_depth_ > 0) {
    --skip_depth_;
    return Status::Ok();
  }
  open_names_.pop_back();
  return downstream_->EndElement(tag);
}

Status StreamingPruner::Characters(std::string_view text) {
  ++stats_.input_nodes;
  stats_.input_text_bytes += text.size();
  if (skip_depth_ > 0) return Status::Ok();
  if (open_names_.empty()) {
    return InvalidError("text content outside the root element");
  }
  NameId string_name = dtd_.StringNameOf(open_names_.back());
  if (string_name == kNoName || !projector_.Contains(string_name)) {
    return Status::Ok();
  }
  ++stats_.kept_nodes;
  stats_.kept_text_bytes += text.size();
  return downstream_->Characters(text);
}

ValidatingPruner::ValidatingPruner(const Dtd& dtd, const NameSet& projector,
                                   SaxHandler* downstream)
    : dtd_(dtd), projector_(projector), downstream_(downstream) {}

Status ValidatingPruner::SeedAncestors(
    std::span<const SeededAncestor> ancestors) {
  for (const SeededAncestor& ancestor : ancestors) {
    NameId name = dtd_.NameOfTag(ancestor.tag);
    if (name == kNoName) {
      return InvalidError("undeclared seeded ancestor '" +
                          std::string(ancestor.tag) + "'");
    }
    OpenElement open;
    open.name = name;
    open.state = ancestor.state;
    open.kept = projector_.Contains(name) &&
                (open_.empty() || open_.back().kept);
    open_.push_back(std::move(open));
  }
  if (!ancestors.empty()) saw_root_ = true;
  return Status::Ok();
}

Status ValidatingPruner::StartDocument() {
  return downstream_->StartDocument();
}

Status ValidatingPruner::EndDocument() {
  if (!saw_root_) return InvalidError("document has no root element");
  return downstream_->EndDocument();
}

Status ValidatingPruner::StartElement(
    std::string_view tag, const std::vector<SaxAttribute>& attributes) {
  XMLPROJ_RETURN_IF_ERROR(XMLPROJ_FAULT_HIT(fault_, "prune.element"));
  ++stats_.input_nodes;
  NameId name = dtd_.NameOfTag(tag);
  if (name == kNoName) {
    return InvalidError("undeclared element '" + std::string(tag) + "'");
  }
  if (open_.empty()) {
    if (saw_root_) {
      return InvalidError("multiple root elements");
    }
    if (name != dtd_.root()) {
      return InvalidError("root element '" + std::string(tag) +
                          "' does not match DTD root '" +
                          dtd_.production(dtd_.root()).tag + "'");
    }
    saw_root_ = true;
  } else {
    // The child participates in the parent's content model whether or not
    // it survives projection: validation is of the *input*.
    OpenElement& parent = open_.back();
    dtd_.MatcherOf(parent.name).Advance(&parent.state, name);
    if (parent.state.dead) {
      return InvalidError(
          "children of element '" + dtd_.production(parent.name).tag +
          "' do not match its content model (at child '" +
          std::string(tag) + "')");
    }
  }
  for (const AttributeDecl& decl : dtd_.production(name).attributes) {
    if (!decl.required) continue;
    bool present = false;
    for (const SaxAttribute& a : attributes) {
      if (a.name == decl.name) {
        present = true;
        break;
      }
    }
    if (!present) {
      return InvalidError("element '" + std::string(tag) +
                          "' is missing required attribute '" + decl.name +
                          "'");
    }
  }

  OpenElement open;
  open.name = name;
  open.state = dtd_.MatcherOf(name).StartState();
  open.kept = projector_.Contains(name) &&
              (open_.empty() || open_.back().kept);
  open_.push_back(std::move(open));
  if (open_.back().kept) {
    ++stats_.kept_nodes;
    return downstream_->StartElement(tag, attributes);
  }
  return Status::Ok();
}

Status ValidatingPruner::EndElement(std::string_view tag) {
  OpenElement& top = open_.back();
  if (!dtd_.MatcherOf(top.name).Accepts(top.state)) {
    return InvalidError("children of element '" + std::string(tag) +
                        "' do not match its content model " +
                        dtd_.production(top.name)
                            .content.ToString(dtd_.NameStrings()));
  }
  bool kept = top.kept;
  open_.pop_back();
  if (kept) return downstream_->EndElement(tag);
  return Status::Ok();
}

Status ValidatingPruner::Characters(std::string_view text) {
  ++stats_.input_nodes;
  stats_.input_text_bytes += text.size();
  if (open_.empty()) {
    return InvalidError("text content outside the root element");
  }
  OpenElement& parent = open_.back();
  NameId string_name = dtd_.StringNameOf(parent.name);
  if (string_name == kNoName) {
    return InvalidError("text content not allowed inside element '" +
                        dtd_.production(parent.name).tag + "'");
  }
  dtd_.MatcherOf(parent.name).Advance(&parent.state, string_name);
  if (parent.state.dead) {
    return InvalidError("text content violates the content model of '" +
                        dtd_.production(parent.name).tag + "'");
  }
  if (parent.kept && projector_.Contains(string_name)) {
    ++stats_.kept_nodes;
    stats_.kept_text_bytes += text.size();
    return downstream_->Characters(text);
  }
  return Status::Ok();
}

Result<Document> ParseValidateAndPrune(std::string_view xml_text,
                                       const Dtd& dtd,
                                       const NameSet& projector,
                                       PruneStats* stats) {
  DomBuilderHandler dom;
  ValidatingPruner pruner(dtd, projector, &dom);
  XMLPROJ_RETURN_IF_ERROR(ParseXmlStream(xml_text, &pruner));
  if (stats != nullptr) *stats = pruner.stats();
  return dom.TakeDocument();
}

Result<Document> ParseAndPrune(std::string_view xml_text, const Dtd& dtd,
                               const NameSet& projector, PruneStats* stats) {
  DomBuilderHandler dom;
  StreamingPruner pruner(dtd, projector, &dom);
  XMLPROJ_RETURN_IF_ERROR(ParseXmlStream(xml_text, &pruner));
  if (stats != nullptr) *stats = pruner.stats();
  return dom.TakeDocument();
}

Result<Document> PruneViaStreaming(const Document& doc, const Dtd& dtd,
                                   const NameSet& projector,
                                   PruneStats* stats) {
  DomBuilderHandler dom;
  StreamingPruner pruner(dtd, projector, &dom);
  XMLPROJ_RETURN_IF_ERROR(ReplayAsSax(doc, &pruner));
  if (stats != nullptr) *stats = pruner.stats();
  return dom.TakeDocument();
}

}  // namespace xmlproj
