#include "projection/pipeline.h"

#include <atomic>
#include <future>
#include <utility>

#include "common/thread_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

// The fused per-document pass: SAX events from the parser flow through the
// pruner straight into the serializer — no DOM, O(depth) state, exactly
// the paper's one-pass deployment.
Status RunOneTask(const PipelineTask& task, const Dtd& dtd, bool validate,
                  PipelineResult* out) {
  out->output.clear();
  SerializingHandler sink(&out->output);
  if (validate) {
    ValidatingPruner pruner(dtd, *task.projector, &sink);
    Status status = ParseXmlStream(*task.xml_text, &pruner);
    out->stats = pruner.stats();
    return status;
  }
  StreamingPruner pruner(dtd, *task.projector, &sink);
  Status status = ParseXmlStream(*task.xml_text, &pruner);
  out->stats = pruner.stats();
  return status;
}

Status AnnotateTaskError(size_t index, const Status& status) {
  return Status(status.code(), "pipeline task " + std::to_string(index) +
                                   ": " + status.message());
}

Status CheckTasks(std::span<const PipelineTask> tasks) {
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].xml_text == nullptr || tasks[i].projector == nullptr) {
      return InvalidError("pipeline task " + std::to_string(i) +
                          " has a null document or projector");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<PipelineResult>> RunPruningPipeline(
    std::span<const PipelineTask> tasks, const Dtd& dtd,
    const PipelineOptions& options) {
  XMLPROJ_RETURN_IF_ERROR(CheckTasks(tasks));
  std::vector<PipelineResult> results(tasks.size());
  if (tasks.empty()) return results;

  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }

  if (threads == 1) {
    // Reference sequential path: same pass, same order, no pool.
    for (size_t i = 0; i < tasks.size(); ++i) {
      Status status =
          RunOneTask(tasks[i], dtd, options.validate, &results[i]);
      if (!status.ok()) return AnnotateTaskError(i, status);
    }
    return results;
  }

  std::atomic<bool> cancelled{false};
  std::vector<std::future<Status>> done;
  done.reserve(tasks.size());
  {
    ThreadPool pool(threads, options.queue_capacity);
    for (size_t i = 0; i < tasks.size(); ++i) {
      done.push_back(pool.Submit([&, i]() -> Status {
        if (cancelled.load(std::memory_order_relaxed)) {
          return CancelledError("skipped after an earlier task failed");
        }
        Status status =
            RunOneTask(tasks[i], dtd, options.validate, &results[i]);
        if (!status.ok()) {
          cancelled.store(true, std::memory_order_relaxed);
        }
        return status;
      }));
    }
    // Pool destructor drains and joins; every future below is ready.
  }

  // Report the lowest-indexed real failure (cancelled tasks only lose to
  // the error that triggered the cancellation).
  Status first_error;
  Status first_cancelled;
  for (size_t i = 0; i < done.size(); ++i) {
    Status status = done[i].get();
    if (status.ok()) continue;
    if (status.code() == StatusCode::kCancelled) {
      if (first_cancelled.ok()) first_cancelled = AnnotateTaskError(i, status);
      continue;
    }
    if (first_error.ok()) first_error = AnnotateTaskError(i, status);
  }
  if (!first_error.ok()) return first_error;
  // All non-OK statuses were cancellations with no originating error:
  // cannot happen in this pipeline, but fail loudly rather than return
  // partially-empty results.
  if (!first_cancelled.ok()) return first_cancelled;
  return results;
}

Result<std::vector<PipelineResult>> PruneCorpus(
    std::span<const std::string> corpus, const Dtd& dtd,
    const NameSet& projector, const PipelineOptions& options) {
  std::vector<PipelineTask> tasks(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    tasks[i].xml_text = &corpus[i];
    tasks[i].projector = &projector;
  }
  return RunPruningPipeline(tasks, dtd, options);
}

Result<std::vector<PipelineResult>> PruneCorpusPerQuery(
    std::span<const std::string> corpus, const Dtd& dtd,
    std::span<const NameSet> projectors, const PipelineOptions& options) {
  std::vector<PipelineTask> tasks(corpus.size() * projectors.size());
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (size_t q = 0; q < projectors.size(); ++q) {
      PipelineTask& task = tasks[d * projectors.size() + q];
      task.xml_text = &corpus[d];
      task.projector = &projectors[q];
    }
  }
  return RunPruningPipeline(tasks, dtd, options);
}

size_t TotalOutputBytes(std::span<const PipelineResult> results) {
  size_t total = 0;
  for (const PipelineResult& r : results) total += r.output.size();
  return total;
}

}  // namespace xmlproj
