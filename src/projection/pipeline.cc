#include "projection/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/circuit.h"
#include "projection/checkpoint.h"
#include "common/memory_meter.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/sampling.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/splice.h"

namespace xmlproj {
namespace {

// Resolved metric handles for one pipeline run; null handles (the
// default) short-circuit every instrumentation site. Metric names are
// Prometheus-safe and documented in README "Observability".
struct PipelineMetrics {
  Counter* tasks_total = nullptr;
  Counter* errors_total = nullptr;
  Counter* input_bytes_total = nullptr;
  Counter* output_bytes_total = nullptr;
  Counter* input_nodes_total = nullptr;
  Counter* kept_nodes_total = nullptr;
  Counter* input_text_bytes_total = nullptr;
  Counter* kept_text_bytes_total = nullptr;
  // Fault-tolerance counters (README "Fault tolerance").
  Counter* retries_total = nullptr;
  Counter* isolated_total = nullptr;
  Counter* degraded_total = nullptr;
  Counter* deadline_exceeded_total = nullptr;
  Counter* resource_exhausted_total = nullptr;
  // Intra-document chunking counters (README "Observability").
  Counter* chunks_total = nullptr;
  Counter* chunked_docs_total = nullptr;
  Counter* chunk_fallbacks_total = nullptr;
  Histogram* chunk_split_ns = nullptr;
  Histogram* chunk_stitch_ns = nullptr;
  Histogram* chunk_run_ns = nullptr;
  Histogram* parse_ns = nullptr;
  Histogram* prune_ns = nullptr;
  Histogram* serialize_ns = nullptr;
  Histogram* task_ns = nullptr;
  Histogram* queue_wait_ns = nullptr;
  // Live progress gauges, updated at task granularity so a /statusz
  // scrape mid-run sees how far the corpus has gotten. At the end of a
  // non-cancelled run completed + failed == tasks and inflight == 0.
  Gauge* progress_tasks = nullptr;
  Gauge* progress_completed = nullptr;
  Gauge* progress_failed = nullptr;
  Gauge* progress_inflight = nullptr;
  // Peak of the per-task metered memory (budgeted or meter_memory runs);
  // SetMax fold, so the gauge survives MergeFrom across shards.
  Gauge* memory_peak_bytes = nullptr;
  // Checkpoint/resume and watchdog counters (README "Checkpoint &
  // resume"): appends made durable, tasks skipped by a resume plan, runs
  // started from a resume plan, watchdog firings, and tasks abandoned
  // un-run by a graceful drain.
  Counter* checkpoint_appends = nullptr;
  Counter* checkpoint_tasks_skipped = nullptr;
  Counter* checkpoint_resume_total = nullptr;
  Counter* watchdog_total = nullptr;
  Counter* drained_total = nullptr;

  static PipelineMetrics Resolve(MetricsRegistry* registry) {
    PipelineMetrics m;
    if (registry == nullptr) return m;
    m.tasks_total = registry->GetCounter("xmlproj_pipeline_tasks_total");
    m.errors_total = registry->GetCounter("xmlproj_pipeline_errors_total");
    m.input_bytes_total =
        registry->GetCounter("xmlproj_pipeline_input_bytes_total");
    m.output_bytes_total =
        registry->GetCounter("xmlproj_pipeline_output_bytes_total");
    m.input_nodes_total =
        registry->GetCounter("xmlproj_pipeline_input_nodes_total");
    m.kept_nodes_total =
        registry->GetCounter("xmlproj_pipeline_kept_nodes_total");
    m.input_text_bytes_total =
        registry->GetCounter("xmlproj_pipeline_input_text_bytes_total");
    m.kept_text_bytes_total =
        registry->GetCounter("xmlproj_pipeline_kept_text_bytes_total");
    m.retries_total = registry->GetCounter("xmlproj_pipeline_retries_total");
    m.isolated_total =
        registry->GetCounter("xmlproj_pipeline_isolated_total");
    m.degraded_total =
        registry->GetCounter("xmlproj_pipeline_degraded_total");
    m.deadline_exceeded_total =
        registry->GetCounter("xmlproj_pipeline_deadline_exceeded_total");
    m.resource_exhausted_total =
        registry->GetCounter("xmlproj_pipeline_resource_exhausted_total");
    m.chunks_total = registry->GetCounter("xmlproj_chunks_total");
    m.chunked_docs_total =
        registry->GetCounter("xmlproj_pipeline_chunked_docs_total");
    m.chunk_fallbacks_total =
        registry->GetCounter("xmlproj_pipeline_chunk_fallbacks_total");
    m.chunk_split_ns = registry->GetHistogram("xmlproj_chunk_split_ns");
    m.chunk_stitch_ns = registry->GetHistogram("xmlproj_chunk_stitch_ns");
    m.chunk_run_ns = registry->GetHistogram("xmlproj_chunk_run_ns");
    m.parse_ns = registry->GetHistogram("xmlproj_stage_parse_ns");
    m.prune_ns = registry->GetHistogram("xmlproj_stage_prune_ns");
    m.serialize_ns = registry->GetHistogram("xmlproj_stage_serialize_ns");
    m.task_ns = registry->GetHistogram("xmlproj_stage_task_ns");
    m.queue_wait_ns = registry->GetHistogram("xmlproj_stage_queue_wait_ns");
    m.progress_tasks = registry->GetGauge("xmlproj_progress_tasks");
    m.progress_completed = registry->GetGauge("xmlproj_progress_completed");
    m.progress_failed = registry->GetGauge("xmlproj_progress_failed");
    m.progress_inflight = registry->GetGauge("xmlproj_progress_inflight");
    m.memory_peak_bytes = registry->GetGauge("xmlproj_memory_peak_bytes");
    m.checkpoint_appends =
        registry->GetCounter("xmlproj_checkpoint_appends");
    m.checkpoint_tasks_skipped =
        registry->GetCounter("xmlproj_checkpoint_tasks_skipped");
    m.checkpoint_resume_total =
        registry->GetCounter("xmlproj_checkpoint_resume_total");
    m.watchdog_total =
        registry->GetCounter("xmlproj_pipeline_watchdog_total");
    m.drained_total = registry->GetCounter("xmlproj_pipeline_drained_total");
    // HELP text for the families an operator meets first on a scrape
    // (`# HELP` lines in /metrics; see obs/export.h).
    registry->SetHelp("xmlproj_pipeline_tasks_total",
                      "Pipeline tasks executed (one per document x query)");
    registry->SetHelp("xmlproj_pipeline_input_bytes_total",
                      "Input XML bytes consumed by the pruning pipeline");
    registry->SetHelp("xmlproj_pipeline_output_bytes_total",
                      "Projected output bytes produced by the pipeline");
    registry->SetHelp("xmlproj_pipeline_kept_nodes_total",
                      "Nodes kept by projection (paper Table 1 numerator)");
    registry->SetHelp("xmlproj_progress_tasks",
                      "Tasks submitted to the current pipeline run");
    registry->SetHelp("xmlproj_progress_completed",
                      "Tasks finished successfully in the current run");
    registry->SetHelp("xmlproj_progress_failed",
                      "Tasks that exhausted their error policy this run");
    registry->SetHelp("xmlproj_progress_inflight",
                      "Tasks currently executing");
    registry->SetHelp("xmlproj_stage_task_ns",
                      "Whole fused-pass latency per task, nanoseconds");
    registry->SetHelp("xmlproj_memory_peak_bytes",
                      "Largest per-task metered memory peak (budgeted or "
                      "meter_memory runs)");
    registry->SetHelp("xmlproj_checkpoint_appends",
                      "Durable (fsync'd) checkpoint records appended");
    registry->SetHelp("xmlproj_checkpoint_tasks_skipped",
                      "Tasks skipped because a resume plan settled them");
    registry->SetHelp("xmlproj_checkpoint_resume_total",
                      "Pipeline runs started from a resume plan");
    registry->SetHelp("xmlproj_pipeline_watchdog_total",
                      "Tasks flagged by the hung-task watchdog");
    registry->SetHelp("xmlproj_pipeline_drained_total",
                      "Tasks abandoned un-run by a graceful drain");
    return m;
  }
};

ThreadPoolMetrics ResolvePoolMetrics(MetricsRegistry* registry,
                                     TraceCollector* trace) {
  ThreadPoolMetrics m;
  if (registry != nullptr) {
    m.tasks_total = registry->GetCounter("xmlproj_pool_tasks_total");
    m.busy_ns_total = registry->GetCounter("xmlproj_pool_busy_ns_total");
    m.queue_wait_ns = registry->GetHistogram("xmlproj_pool_task_wait_ns");
    m.run_ns = registry->GetHistogram("xmlproj_pool_task_run_ns");
    m.queue_depth = registry->GetGauge("xmlproj_pool_queue_depth");
    m.queue_depth_peak = registry->GetGauge("xmlproj_pool_queue_depth_peak");
    m.active_workers = registry->GetGauge("xmlproj_pool_active_workers");
  }
  m.trace = trace;
  return m;
}

// SAX passthrough that estimates the time spent in its downstream
// handler. Chaining two of these around the pruner and the serializer
// attributes the fused pass to parse / prune / serialize: time inside the
// serializer is "serialize", time inside the pruner minus that is
// "prune", and the rest of the pass is "parse". Only inserted when
// metrics or tracing are enabled, and clocked via SampledTimer — two
// clock reads per 64 events instead of per event, which is what pushed
// the recorded instrumentation overhead above 100% of the bare pass.
class TimingSaxFilter : public SaxHandler {
 public:
  explicit TimingSaxFilter(SaxHandler* downstream)
      : downstream_(downstream) {}

  uint64_t elapsed_ns() const { return timer_.elapsed_ns(); }

  void SetLocator(const SaxLocator* locator) override {
    downstream_->SetLocator(locator);
  }

  Status StartDocument() override {
    return Timed([&] { return downstream_->StartDocument(); });
  }
  Status EndDocument() override {
    return Timed([&] { return downstream_->EndDocument(); });
  }
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    return Timed([&] { return downstream_->StartElement(tag, attributes); });
  }
  Status EndElement(std::string_view tag) override {
    return Timed([&] { return downstream_->EndElement(tag); });
  }
  Status Characters(std::string_view text) override {
    return Timed([&] { return downstream_->Characters(text); });
  }
  Status Doctype(std::string_view name,
                 std::string_view internal_subset) override {
    return Timed([&] { return downstream_->Doctype(name, internal_subset); });
  }

 private:
  template <typename Fn>
  Status Timed(Fn&& fn) {
    if (!timer_.Sample()) return fn();
    uint64_t t0 = MonotonicNowNs();
    Status status = fn();
    timer_.Add(MonotonicNowNs() - t0);
    return status;
  }

  SaxHandler* downstream_;
  SampledTimer timer_;
};

// Per-open-element bookkeeping charge for the budget meter: the pruner /
// validator / parser stacks each keep O(1) state per open element.
constexpr size_t kStackFrameBytes = 64;

// SAX filter enforcing a TaskBudget over the fused pass. Placed outermost
// (right below the parser) so it sees every event, pruned or kept:
//
//  - wall-clock deadline: one steady-clock read before each event (only
//    when a deadline is configured), converting a stalled pass into
//    kDeadlineExceeded at event granularity;
//  - byte cap: after each event, the growth of the serialized output plus
//    the open-element stack charge is fed to a MemoryMeter; crossing the
//    cap aborts with kResourceExhausted within one event of the cap (the
//    overshoot is bounded by a single event's output).
class BudgetGuard : public SaxHandler {
 public:
  // `cancel` (nullable) is the watchdog's kill switch: once it flips, the
  // next SAX event aborts the pass — the only way to interrupt a task
  // that is wedged *between* deadline checks (e.g. an injected stall).
  BudgetGuard(SaxHandler* downstream, const SplicingSerializingHandler* sink,
              const TaskBudget& budget, const std::atomic<bool>* cancel)
      : downstream_(downstream),
        sink_(sink),
        cancel_(cancel),
        max_bytes_(budget.max_bytes),
        deadline_ms_(budget.deadline_ms) {
    if (budget.deadline_ms > 0) {
      deadline_ns_ =
          MonotonicNowNs() + budget.deadline_ms * uint64_t{1000000};
    }
  }

  size_t peak_bytes() const { return meter_.peak(); }

  void SetLocator(const SaxLocator* locator) override {
    downstream_->SetLocator(locator);
  }

  Status StartDocument() override {
    XMLPROJ_RETURN_IF_ERROR(CheckDeadline());
    XMLPROJ_RETURN_IF_ERROR(downstream_->StartDocument());
    return Account(0, 0);
  }
  Status EndDocument() override {
    XMLPROJ_RETURN_IF_ERROR(CheckDeadline());
    XMLPROJ_RETURN_IF_ERROR(downstream_->EndDocument());
    return Account(0, 0);
  }
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    XMLPROJ_RETURN_IF_ERROR(CheckDeadline());
    XMLPROJ_RETURN_IF_ERROR(downstream_->StartElement(tag, attributes));
    return Account(tag.size() + kStackFrameBytes, 0);
  }
  Status EndElement(std::string_view tag) override {
    XMLPROJ_RETURN_IF_ERROR(CheckDeadline());
    XMLPROJ_RETURN_IF_ERROR(downstream_->EndElement(tag));
    return Account(0, tag.size() + kStackFrameBytes);
  }
  Status Characters(std::string_view text) override {
    XMLPROJ_RETURN_IF_ERROR(CheckDeadline());
    XMLPROJ_RETURN_IF_ERROR(downstream_->Characters(text));
    return Account(0, 0);
  }
  Status Doctype(std::string_view name,
                 std::string_view internal_subset) override {
    XMLPROJ_RETURN_IF_ERROR(CheckDeadline());
    XMLPROJ_RETURN_IF_ERROR(downstream_->Doctype(name, internal_subset));
    return Account(0, 0);
  }

 private:
  Status CheckDeadline() {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return DeadlineExceededError(StringPrintf(
          "task cancelled by the watchdog past its %llu ms deadline",
          static_cast<unsigned long long>(deadline_ms_)));
    }
    if (deadline_ns_ != 0 && MonotonicNowNs() > deadline_ns_) {
      return DeadlineExceededError(
          StringPrintf("task exceeded its %llu ms deadline",
                       static_cast<unsigned long long>(deadline_ms_)));
    }
    return Status::Ok();
  }

  Status Account(size_t add_bytes, size_t sub_bytes) {
    if (add_bytes > 0) meter_.Add(add_bytes);
    if (sub_bytes > 0) meter_.Sub(sub_bytes);
    // produced_bytes() includes the sink's deferred splice span, so a
    // long kept run cannot hide output growth from the cap until flush.
    size_t produced = sink_->produced_bytes();
    if (produced > accounted_output_) {
      meter_.Add(produced - accounted_output_);
      accounted_output_ = produced;
    }
    if (max_bytes_ != 0 && meter_.current() > max_bytes_) {
      return ResourceExhaustedError(StringPrintf(
          "task memory budget exhausted: %zu bytes metered, cap %zu",
          meter_.current(), max_bytes_));
    }
    return Status::Ok();
  }

  SaxHandler* downstream_;
  const SplicingSerializingHandler* sink_;
  const std::atomic<bool>* cancel_;
  const size_t max_bytes_;
  const uint64_t deadline_ms_;
  uint64_t deadline_ns_ = 0;
  size_t accounted_output_ = 0;
  MemoryMeter meter_;
};

// Stat-counting passthrough for the degraded identity pass: every node is
// "kept", so the result's PruneStats stay meaningful in the summary.
class CountingPassthrough : public SaxHandler {
 public:
  explicit CountingPassthrough(SaxHandler* downstream)
      : downstream_(downstream) {}

  const PruneStats& stats() const { return stats_; }

  void SetLocator(const SaxLocator* locator) override {
    downstream_->SetLocator(locator);
  }

  Status StartDocument() override { return downstream_->StartDocument(); }
  Status EndDocument() override { return downstream_->EndDocument(); }
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    ++stats_.input_nodes;
    ++stats_.kept_nodes;
    return downstream_->StartElement(tag, attributes);
  }
  Status EndElement(std::string_view tag) override {
    return downstream_->EndElement(tag);
  }
  Status Characters(std::string_view text) override {
    ++stats_.input_nodes;
    ++stats_.kept_nodes;
    stats_.input_text_bytes += text.size();
    stats_.kept_text_bytes += text.size();
    return downstream_->Characters(text);
  }
  Status Doctype(std::string_view name,
                 std::string_view internal_subset) override {
    return downstream_->Doctype(name, internal_subset);
  }

 private:
  SaxHandler* downstream_;
  PruneStats stats_;
};

// Hung-task watchdog (PipelineOptions::watchdog_factor): one monitor
// thread polls the in-flight registry and, for any task running past its
// grace limit, (1) flips the task's cancel flag so BudgetGuard aborts it
// at the next SAX event, and (2) — when a checkpoint is attached —
// appends a stage-"watchdog" quarantine record *while the task is still
// wedged*, so even a subsequent crash leaves the poisonous document on
// record for resume to skip. A task that later completes anyway
// supersedes that record (the resume planner takes the last record per
// task). The watchdog cannot preempt a thread: a pass stalled inside a
// single SAX callback stays stalled until that callback returns — the
// record-before-unwedge ordering is exactly what makes that survivable.
class TaskWatchdog {
 public:
  TaskWatchdog(uint64_t limit_ns, RunCheckpoint* checkpoint,
               Counter* fired_total, StructuredLogger* logger)
      : limit_ns_(limit_ns),
        checkpoint_(checkpoint),
        fired_total_(fired_total),
        logger_(logger),
        thread_([this] { Loop(); }) {}

  ~TaskWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  // `cancel` must stay alive until the matching Unwatch.
  void Watch(size_t task, std::atomic<bool>* cancel) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[task] = Slot{MonotonicNowNs() + limit_ns_, cancel, false};
  }

  // Ends the watch; true when the watchdog fired for this task.
  bool Unwatch(size_t task) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(task);
    if (it == slots_.end()) return false;
    bool fired = it->second.fired;
    slots_.erase(it);
    return fired;
  }

 private:
  struct Slot {
    uint64_t deadline_ns = 0;
    std::atomic<bool>* cancel = nullptr;
    bool fired = false;
  };

  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(5));
      if (stop_) break;
      uint64_t now = MonotonicNowNs();
      std::vector<size_t> fired_now;
      for (auto& [task, slot] : slots_) {
        if (slot.fired || now < slot.deadline_ns) continue;
        slot.fired = true;
        slot.cancel->store(true, std::memory_order_relaxed);
        fired_now.push_back(task);
      }
      if (fired_now.empty()) continue;
      // Checkpoint I/O outside the lock: an fsync must not block
      // Watch/Unwatch on the worker threads.
      lock.unlock();
      for (size_t task : fired_now) {
        if (fired_total_ != nullptr) fired_total_->Increment();
        if (logger_ != nullptr) {
          logger_->Log(LogLevel::kWarn, "pipeline.watchdog",
                       {{"task", static_cast<uint64_t>(task)},
                        {"limit_ms", limit_ns_ / 1000000}});
        }
        if (checkpoint_ != nullptr) {
          CheckpointTaskRecord record;
          record.task = task;
          record.completed = false;
          record.stage = "watchdog";
          record.code = StatusCodeName(StatusCode::kDeadlineExceeded);
          record.attempts = 1;
          // Best effort: the task itself still reports its outcome.
          (void)checkpoint_->AppendTask(record);
        }
      }
      lock.lock();
    }
  }

  const uint64_t limit_ns_;
  RunCheckpoint* const checkpoint_;
  Counter* const fired_total_;
  StructuredLogger* const logger_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<size_t, Slot> slots_;
  bool stop_ = false;
  std::thread thread_;
};

// Attributes one fused pass to parse / prune / serialize from the two
// TimingSaxFilter readings (`downstream_ns` = time inside the pruner and
// everything below it, `serialize_ns` = time inside the serializer), and
// publishes histogram samples plus, when tracing, three spans tiling
// [start, start+total]. The stages interleave per SAX event in reality;
// the spans show the accumulated attribution laid out sequentially.
void RecordStageSplit(const PipelineMetrics& metrics, TraceCollector* trace,
                      size_t index, uint64_t start_ns, uint64_t total_ns,
                      uint64_t downstream_ns, uint64_t serialize_ns,
                      bool validate) {
  // Clamp: the filters' own clock overhead can nudge readings past total.
  if (downstream_ns > total_ns) downstream_ns = total_ns;
  if (serialize_ns > downstream_ns) serialize_ns = downstream_ns;
  uint64_t parse_ns = total_ns - downstream_ns;
  uint64_t prune_ns = downstream_ns - serialize_ns;
  if (metrics.parse_ns != nullptr) {
    metrics.parse_ns->Record(parse_ns);
    metrics.prune_ns->Record(prune_ns);
    metrics.serialize_ns->Record(serialize_ns);
    metrics.task_ns->Record(total_ns);
  }
  if (trace != nullptr) {
    std::vector<TraceArg> args = {{"task", static_cast<int64_t>(index)}};
    trace->AddCompleteEvent("parse", "stage", start_ns, parse_ns, args);
    trace->AddCompleteEvent(validate ? "validate+prune" : "prune", "stage",
                            start_ns + parse_ns, prune_ns, args);
    trace->AddCompleteEvent("serialize", "stage",
                            start_ns + parse_ns + prune_ns, serialize_ns,
                            args);
  }
}

// Everything one task execution needs, resolved once per run.
struct TaskEnv {
  // Kept alongside the resolved handles for the labeled-series path:
  // per-task label sets resolve against the registry at task granularity
  // (PipelineTask::labels). Null when metrics are off.
  MetricsRegistry* registry = nullptr;
  const Dtd* dtd = nullptr;
  bool validate = false;
  ErrorPolicy policy = ErrorPolicy::kFailFast;
  RetryOptions retry;
  TaskBudget budget;
  bool degrade = false;
  FaultInjector* fault = nullptr;
  // Admission-control breaker (only set when policy != kFailFast) and
  // the meter-without-cap flag; see PipelineOptions.
  CircuitBreaker* breaker = nullptr;
  bool meter = false;
  PipelineMetrics metrics;
  TraceCollector* trace = nullptr;
  bool instrumented = false;
  // Intra-document chunking: options plus the pool chunk helpers are
  // recruited from (null when the run has no pool).
  IntraDocOptions intra;
  ThreadPool* pool = nullptr;
  // Durability and hang protection (null = off): the open checkpoint
  // outcomes commit to, and the watchdog in-flight registry.
  RunCheckpoint* checkpoint = nullptr;
  TaskWatchdog* watchdog = nullptr;
};

struct TaskOutcome {
  Status status;
  int attempts = 1;
  bool degraded = false;
  size_t peak_bytes = 0;
  // Denied at admission by an open circuit breaker — the task never
  // executed, and its quarantine stage is "circuit" rather than the
  // status-derived one (kUnavailable would otherwise map to "io").
  bool fast_failed = false;
  // The watchdog fired and the task failed: quarantine stage "watchdog".
  bool watchdog = false;
  // Durability failure after a successful pass: "commit" (atomic output
  // rename failed) or "checkpoint" (record append failed). Overrides the
  // status-derived stage.
  const char* stage_override = nullptr;
};

const char* StageForStatus(StatusCode code, bool validate);

// Quarantine stage attribution for one task outcome. `code` is the
// authoritative final status code (the pool future's, which can differ
// from the outcome's when the worker never ran the task body).
const char* FailureStage(const TaskOutcome& outcome, StatusCode code,
                         bool validate) {
  if (outcome.fast_failed) return "circuit";
  if (outcome.watchdog) return "watchdog";
  if (outcome.stage_override != nullptr) return outcome.stage_override;
  return StageForStatus(code, validate);
}

// One attempt of the fused per-document pass: SAX events from the parser
// flow through the (optional) budget guard and the pruner straight into
// the serializer — no DOM, O(depth) state, exactly the paper's one-pass
// deployment. `identity` replaces the pruner with a counting passthrough
// (the degraded no-prune fallback). Timing filters are spliced in only
// when instrumented; `submit_ns` of 0 suppresses the queue-wait sample.
Status RunAttempt(const TaskEnv& env, const PipelineTask& task, size_t index,
                  uint64_t submit_ns, bool identity,
                  const std::atomic<bool>* cancel, PipelineResult* out,
                  size_t* peak_bytes) {
  XMLPROJ_RETURN_IF_ERROR(XMLPROJ_FAULT_HIT(env.fault, "pipeline.task"));

  // Span emission honors TraceOptions::sample_every_n per task; metric
  // histograms stay unsampled (they aggregate, spans accumulate).
  TraceCollector* span_trace =
      env.trace != nullptr && env.trace->ShouldSample(index) ? env.trace
                                                             : nullptr;
  uint64_t start_ns = 0;
  if (env.instrumented) {
    start_ns = MonotonicNowNs();
    if (submit_ns != 0 && start_ns > submit_ns) {
      uint64_t wait_ns = start_ns - submit_ns;
      if (env.metrics.queue_wait_ns != nullptr) {
        env.metrics.queue_wait_ns->Record(wait_ns);
      }
      if (span_trace != nullptr) {
        span_trace->AddCompleteEvent("queue-wait", "pool", submit_ns, wait_ns,
                                     {{"task", static_cast<int64_t>(index)}});
      }
    }
  }

  out->output.clear();
  out->stats = PruneStats{};
  out->degraded = false;

  // Intra-document chunked path: plan a split, and when the planner
  // accepts, prune the chunks concurrently — byte-identical to the
  // sequential pass below. Planner refusals fall through to the
  // sequential pass (and reproduce its exact diagnostics on bad input).
  // The degraded identity pass is never chunked: it exists to salvage
  // off-grammar documents the planner would misjudge.
  if (!identity && env.intra.enabled()) {
    uint64_t split_start = env.instrumented ? MonotonicNowNs() : 0;
    std::optional<ChunkPlan> plan = PlanChunks(
        *task.xml_text, *env.dtd, *task.projector, env.validate, env.intra);
    if (env.instrumented) {
      uint64_t split_ns = MonotonicNowNs() - split_start;
      if (env.metrics.chunk_split_ns != nullptr) {
        env.metrics.chunk_split_ns->Record(split_ns);
      }
      if (span_trace != nullptr && plan.has_value()) {
        span_trace->AddCompleteEvent("split", "chunk", split_start, split_ns,
                                     {{"task", static_cast<int64_t>(index)}});
      }
    }
    if (plan.has_value()) {
      if (env.metrics.chunked_docs_total != nullptr) {
        env.metrics.chunked_docs_total->Increment();
      }
      ChunkRunContext context;
      context.pool = env.pool;
      context.max_helpers = env.intra.threads - 1;
      context.fault = env.fault;
      context.max_bytes = env.budget.max_bytes;
      if (env.budget.deadline_ms > 0) {
        context.deadline_ns =
            MonotonicNowNs() + env.budget.deadline_ms * uint64_t{1000000};
      }
      context.telemetry.chunks_total = env.metrics.chunks_total;
      context.telemetry.chunk_run_ns = env.metrics.chunk_run_ns;
      context.telemetry.stitch_ns = env.metrics.chunk_stitch_ns;
      context.telemetry.trace = env.trace;
      context.telemetry.sample_spans = span_trace != nullptr;
      context.telemetry.task_index = index;
      Status status = RunChunkedPrune(*task.xml_text, *env.dtd,
                                      *task.projector, env.validate, *plan,
                                      context, &out->output, &out->stats,
                                      peak_bytes);
      if (env.instrumented && env.metrics.task_ns != nullptr) {
        env.metrics.task_ns->Record(MonotonicNowNs() - start_ns);
      }
      return status;
    }
    if (env.metrics.chunk_fallbacks_total != nullptr) {
      env.metrics.chunk_fallbacks_total->Increment();
    }
  }

  XmlParseOptions parse_options;
  parse_options.fault = env.fault;

  // Zero-copy sink: kept events splice their raw byte spans out of the
  // input; EndDocument (through the chain) flushes the final span.
  SplicingSerializingHandler sink(*task.xml_text, &out->output);
  TimingSaxFilter serialize_timer(&sink);
  SaxHandler* serialize_target =
      env.instrumented ? static_cast<SaxHandler*>(&serialize_timer) : &sink;

  uint64_t downstream_ns = 0;
  uint64_t serialize_ns = 0;
  auto run_pass = [&](SaxHandler* pass_root) -> Status {
    TimingSaxFilter prune_timer(pass_root);
    SaxHandler* top =
        env.instrumented ? static_cast<SaxHandler*>(&prune_timer) : pass_root;
    std::optional<BudgetGuard> guard;
    // The guard is also the memory meter: meter_memory runs it with zero
    // caps (BudgetGuard skips the cap and deadline checks then) purely
    // for the peak_bytes reading that budget auto-tuning feeds on.
    if (env.budget.active() || env.meter) {
      guard.emplace(top, &sink, env.budget, cancel);
      top = &*guard;
    }
    Status status = ParseXmlStream(*task.xml_text, top, parse_options);
    sink.Finish();
    if (guard.has_value()) *peak_bytes = guard->peak_bytes();
    downstream_ns = prune_timer.elapsed_ns();
    serialize_ns = serialize_timer.elapsed_ns();
    return status;
  };

  Status status;
  if (identity) {
    CountingPassthrough pass(serialize_target);
    status = run_pass(&pass);
    out->stats = pass.stats();
  } else if (env.validate) {
    ValidatingPruner pruner(*env.dtd, *task.projector, serialize_target);
    pruner.set_fault_injector(env.fault);
    status = run_pass(&pruner);
    out->stats = pruner.stats();
  } else {
    StreamingPruner pruner(*env.dtd, *task.projector, serialize_target);
    pruner.set_fault_injector(env.fault);
    status = run_pass(&pruner);
    out->stats = pruner.stats();
  }

  if (env.instrumented) {
    uint64_t total_ns = MonotonicNowNs() - start_ns;
    RecordStageSplit(env.metrics, span_trace, index, start_ns, total_ns,
                     downstream_ns, serialize_ns,
                     /*validate=*/env.validate && !identity);
  }
  return status;
}

// Runs one task to its final outcome: the retry loop (kRetry only), the
// degraded identity fallback, and the per-task metric publication. On a
// non-OK outcome `out` is left cleared.
TaskOutcome ExecuteTask(const TaskEnv& env, const PipelineTask& task,
                        size_t index, uint64_t submit_ns,
                        PipelineResult* out) {
  TaskOutcome outcome;
  // Admission control: while the breaker is open the task is quarantined
  // without running — no parse, no worker time, no execution metrics. It
  // still counts into progress_failed so completed + failed == tasks
  // holds at run end.
  if (env.breaker != nullptr && !env.breaker->Allow()) {
    outcome.fast_failed = true;
    outcome.status = UnavailableError(
        "circuit breaker open: task fast-failed at admission");
    out->output.clear();
    out->stats = PruneStats{};
    out->degraded = false;
    if (env.metrics.progress_failed != nullptr) {
      env.metrics.progress_failed->Add(1);
    }
    return outcome;
  }
  if (env.metrics.progress_inflight != nullptr) {
    env.metrics.progress_inflight->Add(1);
  }
  // Watchdog coverage spans the whole outcome (all attempts plus the
  // degrade fallback): the grace limit bounds the *task*, not one pass.
  std::atomic<bool> watchdog_cancel{false};
  if (env.watchdog != nullptr) env.watchdog->Watch(index, &watchdog_cancel);
  const std::atomic<bool>* cancel =
      env.watchdog != nullptr ? &watchdog_cancel : nullptr;
  const bool labeled = env.registry != nullptr && task.labels != nullptr &&
                       !task.labels->empty();
  const uint64_t labeled_start_ns = labeled ? MonotonicNowNs() : 0;
  const int max_attempts = env.policy == ErrorPolicy::kRetry
                               ? std::max(1, env.retry.max_attempts)
                               : 1;
  double backoff_ms = static_cast<double>(env.retry.backoff_ms);
  for (int attempt = 1;; ++attempt) {
    outcome.status = RunAttempt(env, task, index,
                                attempt == 1 ? submit_ns : 0,
                                /*identity=*/false, cancel, out,
                                &outcome.peak_bytes);
    outcome.attempts = attempt;
    // Only kUnavailable is transient: a parse error or budget blowout
    // will fail identically on every attempt.
    if (outcome.status.ok() || attempt >= max_attempts ||
        outcome.status.code() != StatusCode::kUnavailable) {
      break;
    }
    if (env.metrics.retries_total != nullptr) {
      env.metrics.retries_total->Increment();
    }
    if (backoff_ms >= 1.0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(backoff_ms)));
    }
    backoff_ms *= env.retry.multiplier;
  }

  if (!outcome.status.ok() && env.degrade &&
      (outcome.status.code() == StatusCode::kInvalid ||
       outcome.status.code() == StatusCode::kNotFound)) {
    // The document does not fit the DTD, so type-based projection is
    // inapplicable — but the document itself may be fine. Identity pass:
    // the query still answers, just without the memory savings.
    PipelineResult fallback;
    size_t fallback_peak = 0;
    Status fallback_status = RunAttempt(env, task, index, 0,
                                        /*identity=*/true, cancel, &fallback,
                                        &fallback_peak);
    if (fallback_status.ok()) {
      *out = std::move(fallback);
      out->degraded = true;
      outcome.degraded = true;
      outcome.status = Status::Ok();
      if (env.metrics.degraded_total != nullptr) {
        env.metrics.degraded_total->Increment();
      }
    }
  }

  if (env.watchdog != nullptr) {
    bool fired = env.watchdog->Unwatch(index);
    // A fired watchdog on a task that completed anyway is a non-event:
    // the completed checkpoint record supersedes the watchdog's.
    outcome.watchdog = fired && !outcome.status.ok();
  }

  // Durability: commit the output atomically (write *.tmp, fsync,
  // rename), then append the completed record (fflush + fsync). Either
  // step failing fails the task — a checkpointed run must not report
  // work it cannot prove is on disk. Both steps carry failpoints for the
  // chaos suite.
  if (env.checkpoint != nullptr && outcome.status.ok()) {
    Status durable = XMLPROJ_FAULT_HIT(env.fault, "pipeline.commit");
    if (durable.ok()) {
      durable = env.checkpoint->CommitOutput(index, out->output);
    }
    if (!durable.ok()) {
      outcome.stage_override = "commit";
      outcome.status = std::move(durable);
    } else {
      durable = XMLPROJ_FAULT_HIT(env.fault, "checkpoint.append");
      if (durable.ok()) {
        CheckpointTaskRecord record;
        record.task = index;
        record.completed = true;
        record.degraded = out->degraded;
        record.output_path = RunCheckpoint::TaskOutputRelPath(index);
        record.output_bytes = out->output.size();
        record.output_hash = ContentHash64(out->output);
        record.input_bytes = task.xml_text->size();
        record.input_nodes = out->stats.input_nodes;
        record.kept_nodes = out->stats.kept_nodes;
        record.input_text_bytes = out->stats.input_text_bytes;
        record.kept_text_bytes = out->stats.kept_text_bytes;
        durable = env.checkpoint->AppendTask(record);
      }
      if (!durable.ok()) {
        outcome.stage_override = "checkpoint";
        outcome.status = std::move(durable);
      } else if (env.metrics.checkpoint_appends != nullptr) {
        env.metrics.checkpoint_appends->Increment();
      }
    }
  }

  if (!outcome.status.ok()) {
    out->output.clear();
    out->stats = PruneStats{};
    out->degraded = false;
  }

  if (env.metrics.tasks_total != nullptr) {
    env.metrics.tasks_total->Increment();
    env.metrics.input_bytes_total->Increment(task.xml_text->size());
    env.metrics.output_bytes_total->Increment(out->output.size());
    env.metrics.input_nodes_total->Increment(out->stats.input_nodes);
    env.metrics.kept_nodes_total->Increment(out->stats.kept_nodes);
    env.metrics.input_text_bytes_total->Increment(out->stats.input_text_bytes);
    env.metrics.kept_text_bytes_total->Increment(out->stats.kept_text_bytes);
    if (!outcome.status.ok()) {
      env.metrics.errors_total->Increment();
      if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
        env.metrics.deadline_exceeded_total->Increment();
      }
      if (outcome.status.code() == StatusCode::kResourceExhausted) {
        env.metrics.resource_exhausted_total->Increment();
      }
    }
  }

  if (labeled) {
    // Per-label slices of the Table-1 counters (plus a labeled task
    // latency histogram): the unlabeled totals above are the sum over
    // slices. One registry lookup per metric per task; GetCounter can
    // return null only on a kind conflict, which disables the slice.
    const MetricLabels& labels = *task.labels;
    auto add = [&](const char* name, uint64_t n) {
      Counter* c = env.registry->GetCounter(name, labels);
      if (c != nullptr) c->Increment(n);
    };
    add("xmlproj_pipeline_tasks_total", 1);
    add("xmlproj_pipeline_input_bytes_total", task.xml_text->size());
    add("xmlproj_pipeline_output_bytes_total", out->output.size());
    add("xmlproj_pipeline_input_nodes_total", out->stats.input_nodes);
    add("xmlproj_pipeline_kept_nodes_total", out->stats.kept_nodes);
    if (!outcome.status.ok()) add("xmlproj_pipeline_errors_total", 1);
    if (out->degraded) add("xmlproj_pipeline_degraded_total", 1);
    Histogram* h = env.registry->GetHistogram("xmlproj_stage_task_ns", labels);
    if (h != nullptr) h->Record(MonotonicNowNs() - labeled_start_ns);
  }

  if (outcome.peak_bytes > 0 && env.metrics.memory_peak_bytes != nullptr) {
    env.metrics.memory_peak_bytes->SetMax(
        static_cast<int64_t>(outcome.peak_bytes));
  }

  // Executed outcomes feed the breaker's sliding window; a degraded
  // completion served the document, so it counts as a success.
  if (env.breaker != nullptr) {
    if (outcome.status.ok()) {
      env.breaker->RecordSuccess();
    } else {
      env.breaker->RecordFailure();
    }
  }

  // Quarantine-to-be tasks get their terminal outcome on disk *here*, in
  // the worker, not at run end: crash-safety is the point. Fast-failed
  // (circuit) tasks never executed and are deliberately not recorded —
  // a resume should re-admit them. Under kFailFast the run aborts and
  // nothing is settled, so failures are likewise not recorded.
  if (env.checkpoint != nullptr && !outcome.status.ok() &&
      !outcome.fast_failed && env.policy != ErrorPolicy::kFailFast) {
    CheckpointTaskRecord record;
    record.task = index;
    record.completed = false;
    record.stage = FailureStage(outcome, outcome.status.code(), env.validate);
    record.code = StatusCodeName(outcome.status.code());
    record.attempts = outcome.attempts;
    if (env.checkpoint->AppendTask(record).ok() &&
        env.metrics.checkpoint_appends != nullptr) {
      env.metrics.checkpoint_appends->Increment();
    }
  }

  if (env.metrics.progress_inflight != nullptr) {
    env.metrics.progress_inflight->Sub(1);
    if (outcome.status.ok()) {
      env.metrics.progress_completed->Add(1);
    } else {
      env.metrics.progress_failed->Add(1);
    }
  }
  return outcome;
}

Status AnnotateTaskError(size_t index, const Status& status) {
  return Status(status.code(), "pipeline task " + std::to_string(index) +
                                   ": " + status.message());
}

const char* StageForStatus(StatusCode code, bool validate) {
  switch (code) {
    case StatusCode::kParseError:
      return "parse";
    case StatusCode::kInvalid:
      return validate ? "validate" : "prune";
    case StatusCode::kNotFound:
      return "prune";
    case StatusCode::kResourceExhausted:
      return "budget";
    case StatusCode::kDeadlineExceeded:
      return "deadline";
    case StatusCode::kUnavailable:
      return "io";
    case StatusCode::kCancelled:
      return "pool";
    default:
      return "task";
  }
}

Status CheckTasks(std::span<const PipelineTask> tasks) {
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].xml_text == nullptr || tasks[i].projector == nullptr) {
      return InvalidError("pipeline task " + std::to_string(i) +
                          " has a null document or projector");
    }
  }
  return Status::Ok();
}

}  // namespace

void PipelineSummary::AddTask(size_t task_input_bytes,
                              const PipelineResult& result) {
  ++tasks;
  input_bytes += task_input_bytes;
  output_bytes += result.output.size();
  input_nodes += result.stats.input_nodes;
  kept_nodes += result.stats.kept_nodes;
  input_text_bytes += result.stats.input_text_bytes;
  kept_text_bytes += result.stats.kept_text_bytes;
}

Result<PipelineRun> RunPruningPipeline(std::span<const PipelineTask> tasks,
                                       const Dtd& dtd,
                                       const PipelineOptions& options) {
  XMLPROJ_RETURN_IF_ERROR(CheckTasks(tasks));
  PipelineRun run;
  run.results.resize(tasks.size());
  if (tasks.empty()) return run;

  const bool instrumented =
      options.metrics != nullptr || options.trace != nullptr;
  TaskEnv env;
  env.dtd = &dtd;
  env.validate = options.validate;
  env.policy = options.policy;
  env.retry = options.retry;
  env.budget = options.budget;
  env.degrade = options.degrade_on_invalid;
  env.fault = options.fault;
  // Under kFailFast the breaker is ignored (see PipelineOptions): the
  // policy already stops at the first failure.
  env.breaker =
      options.policy != ErrorPolicy::kFailFast ? options.breaker : nullptr;
  env.meter = options.meter_memory;
  env.registry = options.metrics;
  env.metrics = PipelineMetrics::Resolve(options.metrics);
  env.trace = options.trace;
  env.instrumented = instrumented;
  env.intra = options.intra_doc;
  env.checkpoint =
      options.checkpoint != nullptr && options.checkpoint->open()
          ? options.checkpoint
          : nullptr;

  const ResumePlan* resume = options.resume;
  if (resume != nullptr) {
    if (!resume->resumable) {
      return InvalidError("pipeline was handed a non-resumable plan: " +
                          resume->mismatch);
    }
    if (resume->done.size() != tasks.size()) {
      return InvalidError(
          "resume plan covers " + std::to_string(resume->done.size()) +
          " task(s) but the run has " + std::to_string(tasks.size()));
    }
  }

  // Hung-task watchdog: only meaningful relative to a deadline budget
  // (the grace limit is watchdog_factor × deadline). Declared before the
  // execution scopes so it outlives every Watch/Unwatch.
  std::optional<TaskWatchdog> watchdog;
  if (options.watchdog_factor > 0 && options.budget.deadline_ms > 0) {
    uint64_t limit_ns = static_cast<uint64_t>(
        static_cast<double>(options.budget.deadline_ms) * 1e6 *
        options.watchdog_factor);
    watchdog.emplace(limit_ns, env.checkpoint, env.metrics.watchdog_total,
                     options.logger);
    env.watchdog = &*watchdog;
  }

  const std::atomic<bool>* stop = options.stop;
  auto stop_requested = [stop] {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  };

  auto wall_start = std::chrono::steady_clock::now();

  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (options.metrics != nullptr) {
    options.metrics->GetGauge("xmlproj_pipeline_threads")->Set(threads);
  }
  if (env.metrics.progress_tasks != nullptr) {
    // Progress gauges describe the current run: reset so a scrape during
    // run N is not contaminated by run N-1 (the *_total counters keep
    // cross-run accounting).
    env.metrics.progress_tasks->Set(static_cast<int64_t>(tasks.size()));
    env.metrics.progress_completed->Set(0);
    env.metrics.progress_failed->Set(0);
    env.metrics.progress_inflight->Set(0);
  }

  // Per-task final status and outcome detail, index-aligned with `tasks`
  // (workers write disjoint slots).
  std::vector<Status> finals(tasks.size());
  std::vector<TaskOutcome> outcomes(tasks.size());
  // skipped[i] — settled by the resume plan, never submitted;
  // drained[i] — abandoned un-run after a stop request (no terminal
  // outcome: not checkpointed, not a failure, re-run on resume).
  std::vector<char> skipped(tasks.size(), 0);
  std::vector<char> drained(tasks.size(), 0);

  if (resume != nullptr) {
    if (env.metrics.checkpoint_resume_total != nullptr) {
      env.metrics.checkpoint_resume_total->Increment();
    }
    std::vector<char> prior_failed(tasks.size(), 0);
    for (const TaskFailure& f : resume->prior_failures) {
      if (f.task < prior_failed.size()) prior_failed[f.task] = 1;
    }
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (!resume->done[i]) continue;
      skipped[i] = 1;
      if (env.metrics.checkpoint_tasks_skipped != nullptr) {
        env.metrics.checkpoint_tasks_skipped->Increment();
      }
      // Settled tasks count into progress immediately: a /statusz scrape
      // of a resumed run shows the corpus position, not just this
      // process's share.
      if (env.metrics.progress_completed != nullptr) {
        if (prior_failed[i]) {
          env.metrics.progress_failed->Add(1);
        } else {
          env.metrics.progress_completed->Add(1);
        }
      }
    }
  }

  if (threads == 1) {
    // Reference sequential path: same pass, same order, documents run one
    // at a time on the calling thread. With intra-document chunking a
    // helper pool serves *chunks* only — document ordering and error
    // semantics stay exactly sequential.
    std::optional<ThreadPool> helper_pool;
    if (env.intra.enabled()) {
      helper_pool.emplace(env.intra.threads - 1, options.queue_capacity,
                          instrumented ? ResolvePoolMetrics(options.metrics,
                                                            options.trace)
                                       : ThreadPoolMetrics{},
                          options.fault);
      env.pool = &*helper_pool;
    }
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (skipped[i]) continue;
      if (stop_requested()) {
        for (size_t j = i; j < tasks.size(); ++j) {
          if (!skipped[j]) drained[j] = 1;
        }
        break;
      }
      outcomes[i] = ExecuteTask(env, tasks[i], i, /*submit_ns=*/0,
                                &run.results[i]);
      finals[i] = outcomes[i].status;
      if (!finals[i].ok() && options.policy == ErrorPolicy::kFailFast) {
        return AnnotateTaskError(i, finals[i]);
      }
    }
  } else {
    std::atomic<bool> cancelled{false};
    // Index-aligned; slots for skipped/never-submitted tasks hold an
    // invalid (default) future.
    std::vector<std::future<Status>> done(tasks.size());
    {
      // One pool serves documents and (opportunistically) their chunks:
      // sized for whichever dimension wants more workers. Chunk helpers
      // are fire-and-forget TrySubmit tasks that no-op once their
      // document's chunks are claimed, so a busy pool starves chunk
      // parallelism gracefully instead of deadlocking.
      int pool_threads =
          env.intra.enabled() ? std::max(threads, env.intra.threads)
                              : threads;
      ThreadPool pool(pool_threads, options.queue_capacity,
                      instrumented ? ResolvePoolMetrics(options.metrics,
                                                        options.trace)
                                   : ThreadPoolMetrics{},
                      options.fault);
      env.pool = &pool;
      for (size_t i = 0; i < tasks.size(); ++i) {
        if (skipped[i]) continue;
        if (stop_requested()) {
          // Graceful drain, admission side: everything not yet submitted
          // is abandoned without a terminal outcome.
          for (size_t j = i; j < tasks.size(); ++j) {
            if (!skipped[j]) drained[j] = 1;
          }
          break;
        }
        uint64_t submit_ns = instrumented ? MonotonicNowNs() : 0;
        done[i] = pool.Submit([&, i, submit_ns]() -> Status {
          if (cancelled.load(std::memory_order_relaxed)) {
            return CancelledError("skipped after an earlier task failed");
          }
          if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
            // Graceful drain, worker side: a queued task claimed after
            // the stop request never starts. Workers own disjoint slots,
            // so the flag write is race-free.
            drained[i] = 1;
            return CancelledError("drained: stop requested before start");
          }
          outcomes[i] =
              ExecuteTask(env, tasks[i], i, submit_ns, &run.results[i]);
          if (!outcomes[i].status.ok() &&
              env.policy == ErrorPolicy::kFailFast) {
            cancelled.store(true, std::memory_order_relaxed);
          }
          return outcomes[i].status;
        });
      }
      if (stop_requested() && options.drain_ms > 0) {
        // Bounded drain: in-flight tasks get drain_ms to finish; work
        // still queued past the deadline resolves kCancelled (and is
        // marked drained below). Without a stop request the destructor
        // drains everything, as before.
        pool.Shutdown(std::chrono::milliseconds(options.drain_ms));
      }
      // Pool destructor drains and joins; every future below is ready.
    }
    // The future is authoritative: it carries pool-level outcomes
    // (cancellation, injected worker faults) the task body never saw.
    for (size_t i = 0; i < done.size(); ++i) {
      if (done[i].valid()) finals[i] = done[i].get();
    }
    if (stop_requested()) {
      // Queued tasks the deadline shutdown cancelled have kCancelled
      // futures and never ran: they drained, same as never-submitted.
      for (size_t i = 0; i < finals.size(); ++i) {
        if (!skipped[i] && !drained[i] &&
            finals[i].code() == StatusCode::kCancelled) {
          drained[i] = 1;
        }
      }
    }

    if (options.policy == ErrorPolicy::kFailFast) {
      // Report the lowest-indexed real failure (cancelled tasks only lose
      // to the error that triggered the cancellation).
      Status first_error;
      Status first_cancelled;
      for (size_t i = 0; i < finals.size(); ++i) {
        if (skipped[i] || drained[i]) continue;
        const Status& status = finals[i];
        if (status.ok()) continue;
        if (status.code() == StatusCode::kCancelled) {
          if (first_cancelled.ok()) {
            first_cancelled = AnnotateTaskError(i, status);
          }
          continue;
        }
        if (first_error.ok()) first_error = AnnotateTaskError(i, status);
      }
      if (!first_error.ok()) return first_error;
      // All non-OK statuses were cancellations with no originating error:
      // cannot happen in this pipeline (drained tasks were filtered
      // above), but fail loudly rather than return partially-empty
      // results.
      if (!first_cancelled.ok()) return first_cancelled;
    }
  }

  // kIsolate / kRetry: quarantine failures into structured reports; the
  // run itself succeeds with the surviving results.
  if (options.policy != ErrorPolicy::kFailFast) {
    for (size_t i = 0; i < finals.size(); ++i) {
      if (skipped[i] || drained[i]) continue;
      if (finals[i].ok()) continue;
      TaskFailure failure;
      failure.task = i;
      failure.stage =
          FailureStage(outcomes[i], finals[i].code(), options.validate);
      failure.status = finals[i];
      failure.attempts = outcomes[i].attempts;
      failure.peak_bytes = outcomes[i].peak_bytes;
      run.failures.push_back(std::move(failure));
      run.results[i] = PipelineResult{};
      if (env.metrics.isolated_total != nullptr) {
        env.metrics.isolated_total->Increment();
      }
    }
  }

  for (size_t i = 0; i < tasks.size(); ++i) {
    // Peaks from failed tasks count too: a budget blowout is exactly the
    // observation auto-tuning must not lose.
    run.summary.max_task_peak_bytes =
        std::max(run.summary.max_task_peak_bytes, outcomes[i].peak_bytes);
    if (skipped[i] || drained[i]) continue;
    if (!finals[i].ok()) continue;
    run.summary.AddTask(tasks[i].xml_text->size(), run.results[i]);
    if (run.results[i].degraded) ++run.summary.degraded;
    run.summary.retries += static_cast<size_t>(outcomes[i].attempts - 1);
  }

  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!drained[i]) continue;
    ++run.summary.drained;
    run.results[i] = PipelineResult{};
    if (env.metrics.drained_total != nullptr) {
      env.metrics.drained_total->Increment();
    }
  }
  if (run.summary.drained > 0 && options.logger != nullptr) {
    options.logger->Log(LogLevel::kInfo, "pipeline.drain",
                        {{"drained", static_cast<uint64_t>(run.summary.drained)},
                         {"tasks", static_cast<uint64_t>(tasks.size())}});
  }

  if (resume != nullptr) {
    // Fold the interrupted run's settled work into this run's totals so
    // the final summary describes the whole corpus, not this process's
    // share. Prior failures re-enter the report verbatim.
    run.summary.resumed_skipped = resume->skipped_completed +
                                  resume->skipped_quarantined;
    const PipelineSummary& prior = resume->prior;
    run.summary.tasks += prior.tasks;
    run.summary.input_bytes += prior.input_bytes;
    run.summary.output_bytes += prior.output_bytes;
    run.summary.input_nodes += prior.input_nodes;
    run.summary.kept_nodes += prior.kept_nodes;
    run.summary.input_text_bytes += prior.input_text_bytes;
    run.summary.kept_text_bytes += prior.kept_text_bytes;
    run.summary.degraded += prior.degraded;
    for (const TaskFailure& f : resume->prior_failures) {
      run.failures.push_back(f);
    }
    std::sort(run.failures.begin(), run.failures.end(),
              [](const TaskFailure& a, const TaskFailure& b) {
                return a.task < b.task;
              });
  }
  run.summary.failed = run.failures.size();
  run.summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return run;
}

Result<PipelineRun> PruneCorpus(std::span<const std::string> corpus,
                                const Dtd& dtd, const NameSet& projector,
                                const PipelineOptions& options) {
  std::vector<PipelineTask> tasks(corpus.size());
  MetricLabels corpus_labels;
  if (options.metrics != nullptr && !options.corpus_label.empty()) {
    corpus_labels.push_back({"corpus", options.corpus_label});
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    tasks[i].xml_text = &corpus[i];
    tasks[i].projector = &projector;
    if (!corpus_labels.empty()) tasks[i].labels = &corpus_labels;
  }
  return RunPruningPipeline(tasks, dtd, options);
}

Result<PipelineRun> PruneDocument(const std::string& xml_text, const Dtd& dtd,
                                  const NameSet& projector,
                                  const PipelineOptions& options) {
  PipelineOptions doc_options = options;
  doc_options.num_threads = 1;  // inline: one task, no pool
  doc_options.policy = ErrorPolicy::kFailFast;
  return PruneCorpus({&xml_text, 1}, dtd, projector, doc_options);
}

Result<PipelineRun> PruneCorpusPerQuery(std::span<const std::string> corpus,
                                        const Dtd& dtd,
                                        std::span<const NameSet> projectors,
                                        const PipelineOptions& options) {
  std::vector<PipelineTask> tasks(corpus.size() * projectors.size());
  // One label set per query, shared by that query's tasks across the
  // corpus; built up front so the borrowed pointers outlive the run.
  std::vector<MetricLabels> query_labels;
  if (options.metrics != nullptr && options.label_queries) {
    query_labels.resize(projectors.size());
    for (size_t q = 0; q < projectors.size(); ++q) {
      query_labels[q].push_back({"query_id", std::to_string(q)});
      if (!options.corpus_label.empty()) {
        query_labels[q].push_back({"corpus", options.corpus_label});
      }
    }
  }
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (size_t q = 0; q < projectors.size(); ++q) {
      PipelineTask& task = tasks[d * projectors.size() + q];
      task.xml_text = &corpus[d];
      task.projector = &projectors[q];
      if (!query_labels.empty()) task.labels = &query_labels[q];
    }
  }
  return RunPruningPipeline(tasks, dtd, options);
}

size_t TotalOutputBytes(std::span<const PipelineResult> results) {
  size_t total = 0;
  for (const PipelineResult& r : results) total += r.output.size();
  return total;
}

}  // namespace xmlproj
