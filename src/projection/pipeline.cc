#include "projection/pipeline.h"

#include <atomic>
#include <chrono>
#include <future>
#include <utility>

#include "common/thread_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

// Resolved metric handles for one pipeline run; null handles (the
// default) short-circuit every instrumentation site. Metric names are
// Prometheus-safe and documented in README "Observability".
struct PipelineMetrics {
  Counter* tasks_total = nullptr;
  Counter* errors_total = nullptr;
  Counter* input_bytes_total = nullptr;
  Counter* output_bytes_total = nullptr;
  Counter* input_nodes_total = nullptr;
  Counter* kept_nodes_total = nullptr;
  Counter* input_text_bytes_total = nullptr;
  Counter* kept_text_bytes_total = nullptr;
  Histogram* parse_ns = nullptr;
  Histogram* prune_ns = nullptr;
  Histogram* serialize_ns = nullptr;
  Histogram* task_ns = nullptr;
  Histogram* queue_wait_ns = nullptr;

  static PipelineMetrics Resolve(MetricsRegistry* registry) {
    PipelineMetrics m;
    if (registry == nullptr) return m;
    m.tasks_total = registry->GetCounter("xmlproj_pipeline_tasks_total");
    m.errors_total = registry->GetCounter("xmlproj_pipeline_errors_total");
    m.input_bytes_total =
        registry->GetCounter("xmlproj_pipeline_input_bytes_total");
    m.output_bytes_total =
        registry->GetCounter("xmlproj_pipeline_output_bytes_total");
    m.input_nodes_total =
        registry->GetCounter("xmlproj_pipeline_input_nodes_total");
    m.kept_nodes_total =
        registry->GetCounter("xmlproj_pipeline_kept_nodes_total");
    m.input_text_bytes_total =
        registry->GetCounter("xmlproj_pipeline_input_text_bytes_total");
    m.kept_text_bytes_total =
        registry->GetCounter("xmlproj_pipeline_kept_text_bytes_total");
    m.parse_ns = registry->GetHistogram("xmlproj_stage_parse_ns");
    m.prune_ns = registry->GetHistogram("xmlproj_stage_prune_ns");
    m.serialize_ns = registry->GetHistogram("xmlproj_stage_serialize_ns");
    m.task_ns = registry->GetHistogram("xmlproj_stage_task_ns");
    m.queue_wait_ns = registry->GetHistogram("xmlproj_stage_queue_wait_ns");
    return m;
  }
};

ThreadPoolMetrics ResolvePoolMetrics(MetricsRegistry* registry,
                                     TraceCollector* trace) {
  ThreadPoolMetrics m;
  if (registry != nullptr) {
    m.tasks_total = registry->GetCounter("xmlproj_pool_tasks_total");
    m.busy_ns_total = registry->GetCounter("xmlproj_pool_busy_ns_total");
    m.queue_wait_ns = registry->GetHistogram("xmlproj_pool_task_wait_ns");
    m.run_ns = registry->GetHistogram("xmlproj_pool_task_run_ns");
    m.queue_depth = registry->GetGauge("xmlproj_pool_queue_depth");
    m.queue_depth_peak = registry->GetGauge("xmlproj_pool_queue_depth_peak");
  }
  m.trace = trace;
  return m;
}

// SAX passthrough that accumulates the time spent in its downstream
// handler. Chaining two of these around the pruner and the serializer
// attributes the fused pass to parse / prune / serialize: time inside the
// serializer is "serialize", time inside the pruner minus that is
// "prune", and the rest of the pass is "parse". Only inserted when
// metrics or tracing are enabled — it costs two clock reads per SAX
// event.
class TimingSaxFilter : public SaxHandler {
 public:
  explicit TimingSaxFilter(SaxHandler* downstream)
      : downstream_(downstream) {}

  uint64_t elapsed_ns() const { return elapsed_ns_; }

  Status StartDocument() override {
    uint64_t t0 = MonotonicNowNs();
    Status status = downstream_->StartDocument();
    elapsed_ns_ += MonotonicNowNs() - t0;
    return status;
  }
  Status EndDocument() override {
    uint64_t t0 = MonotonicNowNs();
    Status status = downstream_->EndDocument();
    elapsed_ns_ += MonotonicNowNs() - t0;
    return status;
  }
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    uint64_t t0 = MonotonicNowNs();
    Status status = downstream_->StartElement(tag, attributes);
    elapsed_ns_ += MonotonicNowNs() - t0;
    return status;
  }
  Status EndElement(std::string_view tag) override {
    uint64_t t0 = MonotonicNowNs();
    Status status = downstream_->EndElement(tag);
    elapsed_ns_ += MonotonicNowNs() - t0;
    return status;
  }
  Status Characters(std::string_view text) override {
    uint64_t t0 = MonotonicNowNs();
    Status status = downstream_->Characters(text);
    elapsed_ns_ += MonotonicNowNs() - t0;
    return status;
  }
  Status Doctype(std::string_view name,
                 std::string_view internal_subset) override {
    uint64_t t0 = MonotonicNowNs();
    Status status = downstream_->Doctype(name, internal_subset);
    elapsed_ns_ += MonotonicNowNs() - t0;
    return status;
  }

 private:
  SaxHandler* downstream_;
  uint64_t elapsed_ns_ = 0;
};

// Attributes one fused pass to parse / prune / serialize from the two
// TimingSaxFilter readings (`downstream_ns` = time inside the pruner and
// everything below it, `serialize_ns` = time inside the serializer), and
// publishes histogram samples plus, when tracing, three spans tiling
// [start, start+total]. The stages interleave per SAX event in reality;
// the spans show the accumulated attribution laid out sequentially.
void RecordStageSplit(const PipelineMetrics& metrics, TraceCollector* trace,
                      size_t index, uint64_t start_ns, uint64_t total_ns,
                      uint64_t downstream_ns, uint64_t serialize_ns,
                      bool validate) {
  // Clamp: the filters' own clock overhead can nudge readings past total.
  if (downstream_ns > total_ns) downstream_ns = total_ns;
  if (serialize_ns > downstream_ns) serialize_ns = downstream_ns;
  uint64_t parse_ns = total_ns - downstream_ns;
  uint64_t prune_ns = downstream_ns - serialize_ns;
  if (metrics.parse_ns != nullptr) {
    metrics.parse_ns->Record(parse_ns);
    metrics.prune_ns->Record(prune_ns);
    metrics.serialize_ns->Record(serialize_ns);
    metrics.task_ns->Record(total_ns);
  }
  if (trace != nullptr) {
    std::vector<TraceArg> args = {{"task", static_cast<int64_t>(index)}};
    trace->AddCompleteEvent("parse", "stage", start_ns, parse_ns, args);
    trace->AddCompleteEvent(validate ? "validate+prune" : "prune", "stage",
                            start_ns + parse_ns, prune_ns, args);
    trace->AddCompleteEvent("serialize", "stage",
                            start_ns + parse_ns + prune_ns, serialize_ns,
                            args);
  }
}

// The fused per-document pass: SAX events from the parser flow through the
// pruner straight into the serializer — no DOM, O(depth) state, exactly
// the paper's one-pass deployment.
Status RunOneTask(const PipelineTask& task, const Dtd& dtd, bool validate,
                  PipelineResult* out) {
  out->output.clear();
  SerializingHandler sink(&out->output);
  if (validate) {
    ValidatingPruner pruner(dtd, *task.projector, &sink);
    Status status = ParseXmlStream(*task.xml_text, &pruner);
    out->stats = pruner.stats();
    return status;
  }
  StreamingPruner pruner(dtd, *task.projector, &sink);
  Status status = ParseXmlStream(*task.xml_text, &pruner);
  out->stats = pruner.stats();
  return status;
}

// Instrumented variant of the fused pass: same event flow with timing
// filters spliced in. `submit_ns` of 0 means the task never queued
// (sequential path), so no queue-wait is reported.
Status RunOneTaskInstrumented(const PipelineTask& task, const Dtd& dtd,
                              bool validate, const PipelineMetrics& metrics,
                              TraceCollector* trace, size_t index,
                              uint64_t submit_ns, PipelineResult* out) {
  uint64_t start_ns = MonotonicNowNs();
  if (submit_ns != 0 && start_ns > submit_ns) {
    uint64_t wait_ns = start_ns - submit_ns;
    if (metrics.queue_wait_ns != nullptr) {
      metrics.queue_wait_ns->Record(wait_ns);
    }
    if (trace != nullptr) {
      trace->AddCompleteEvent("queue-wait", "pool", submit_ns, wait_ns,
                              {{"task", static_cast<int64_t>(index)}});
    }
  }

  out->output.clear();
  SerializingHandler sink(&out->output);
  TimingSaxFilter serialize_timer(&sink);
  Status status;
  if (validate) {
    ValidatingPruner pruner(dtd, *task.projector, &serialize_timer);
    TimingSaxFilter prune_timer(&pruner);
    status = ParseXmlStream(*task.xml_text, &prune_timer);
    out->stats = pruner.stats();
    uint64_t total_ns = MonotonicNowNs() - start_ns;
    RecordStageSplit(metrics, trace, index, start_ns, total_ns,
                     prune_timer.elapsed_ns(), serialize_timer.elapsed_ns(),
                     /*validate=*/true);
  } else {
    StreamingPruner pruner(dtd, *task.projector, &serialize_timer);
    TimingSaxFilter prune_timer(&pruner);
    status = ParseXmlStream(*task.xml_text, &prune_timer);
    out->stats = pruner.stats();
    uint64_t total_ns = MonotonicNowNs() - start_ns;
    RecordStageSplit(metrics, trace, index, start_ns, total_ns,
                     prune_timer.elapsed_ns(), serialize_timer.elapsed_ns(),
                     /*validate=*/false);
  }

  if (metrics.tasks_total != nullptr) {
    metrics.tasks_total->Increment();
    metrics.input_bytes_total->Increment(task.xml_text->size());
    metrics.output_bytes_total->Increment(out->output.size());
    metrics.input_nodes_total->Increment(out->stats.input_nodes);
    metrics.kept_nodes_total->Increment(out->stats.kept_nodes);
    metrics.input_text_bytes_total->Increment(out->stats.input_text_bytes);
    metrics.kept_text_bytes_total->Increment(out->stats.kept_text_bytes);
    if (!status.ok()) metrics.errors_total->Increment();
  }
  return status;
}

Status AnnotateTaskError(size_t index, const Status& status) {
  return Status(status.code(), "pipeline task " + std::to_string(index) +
                                   ": " + status.message());
}

Status CheckTasks(std::span<const PipelineTask> tasks) {
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].xml_text == nullptr || tasks[i].projector == nullptr) {
      return InvalidError("pipeline task " + std::to_string(i) +
                          " has a null document or projector");
    }
  }
  return Status::Ok();
}

}  // namespace

void PipelineSummary::AddTask(size_t task_input_bytes,
                              const PipelineResult& result) {
  ++tasks;
  input_bytes += task_input_bytes;
  output_bytes += result.output.size();
  input_nodes += result.stats.input_nodes;
  kept_nodes += result.stats.kept_nodes;
  input_text_bytes += result.stats.input_text_bytes;
  kept_text_bytes += result.stats.kept_text_bytes;
}

Result<PipelineRun> RunPruningPipeline(std::span<const PipelineTask> tasks,
                                       const Dtd& dtd,
                                       const PipelineOptions& options) {
  XMLPROJ_RETURN_IF_ERROR(CheckTasks(tasks));
  PipelineRun run;
  run.results.resize(tasks.size());
  if (tasks.empty()) return run;

  const bool instrumented =
      options.metrics != nullptr || options.trace != nullptr;
  const PipelineMetrics metrics = PipelineMetrics::Resolve(options.metrics);
  TraceCollector* trace = options.trace;
  auto wall_start = std::chrono::steady_clock::now();

  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (options.metrics != nullptr) {
    options.metrics->GetGauge("xmlproj_pipeline_threads")->Set(threads);
  }

  if (threads == 1) {
    // Reference sequential path: same pass, same order, no pool.
    for (size_t i = 0; i < tasks.size(); ++i) {
      Status status =
          instrumented
              ? RunOneTaskInstrumented(tasks[i], dtd, options.validate,
                                       metrics, trace, i, /*submit_ns=*/0,
                                       &run.results[i])
              : RunOneTask(tasks[i], dtd, options.validate, &run.results[i]);
      if (!status.ok()) return AnnotateTaskError(i, status);
    }
  } else {
    std::atomic<bool> cancelled{false};
    std::vector<std::future<Status>> done;
    done.reserve(tasks.size());
    {
      ThreadPool pool(threads, options.queue_capacity,
                      instrumented ? ResolvePoolMetrics(options.metrics, trace)
                                   : ThreadPoolMetrics{});
      for (size_t i = 0; i < tasks.size(); ++i) {
        uint64_t submit_ns = instrumented ? MonotonicNowNs() : 0;
        done.push_back(pool.Submit([&, i, submit_ns]() -> Status {
          if (cancelled.load(std::memory_order_relaxed)) {
            return CancelledError("skipped after an earlier task failed");
          }
          Status status =
              instrumented
                  ? RunOneTaskInstrumented(tasks[i], dtd, options.validate,
                                           metrics, trace, i, submit_ns,
                                           &run.results[i])
                  : RunOneTask(tasks[i], dtd, options.validate,
                               &run.results[i]);
          if (!status.ok()) {
            cancelled.store(true, std::memory_order_relaxed);
          }
          return status;
        }));
      }
      // Pool destructor drains and joins; every future below is ready.
    }

    // Report the lowest-indexed real failure (cancelled tasks only lose to
    // the error that triggered the cancellation).
    Status first_error;
    Status first_cancelled;
    for (size_t i = 0; i < done.size(); ++i) {
      Status status = done[i].get();
      if (status.ok()) continue;
      if (status.code() == StatusCode::kCancelled) {
        if (first_cancelled.ok()) {
          first_cancelled = AnnotateTaskError(i, status);
        }
        continue;
      }
      if (first_error.ok()) first_error = AnnotateTaskError(i, status);
    }
    if (!first_error.ok()) return first_error;
    // All non-OK statuses were cancellations with no originating error:
    // cannot happen in this pipeline, but fail loudly rather than return
    // partially-empty results.
    if (!first_cancelled.ok()) return first_cancelled;
  }

  for (size_t i = 0; i < tasks.size(); ++i) {
    run.summary.AddTask(tasks[i].xml_text->size(), run.results[i]);
  }
  run.summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return run;
}

Result<PipelineRun> PruneCorpus(std::span<const std::string> corpus,
                                const Dtd& dtd, const NameSet& projector,
                                const PipelineOptions& options) {
  std::vector<PipelineTask> tasks(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    tasks[i].xml_text = &corpus[i];
    tasks[i].projector = &projector;
  }
  return RunPruningPipeline(tasks, dtd, options);
}

Result<PipelineRun> PruneCorpusPerQuery(std::span<const std::string> corpus,
                                        const Dtd& dtd,
                                        std::span<const NameSet> projectors,
                                        const PipelineOptions& options) {
  std::vector<PipelineTask> tasks(corpus.size() * projectors.size());
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (size_t q = 0; q < projectors.size(); ++q) {
      PipelineTask& task = tasks[d * projectors.size() + q];
      task.xml_text = &corpus[d];
      task.projector = &projectors[q];
    }
  }
  return RunPruningPipeline(tasks, dtd, options);
}

size_t TotalOutputBytes(std::span<const PipelineResult> results) {
  size_t total = 0;
  for (const PipelineResult& r : results) total += r.output.size();
  return total;
}

}  // namespace xmlproj
