#include "projection/projector_inference.h"

#include <cassert>

namespace xmlproj {

size_t ProjectorInference::Normalize(const LPath& path,
                                     bool materialize_result) {
  std::vector<MicroStep> out;
  for (const LStep& step : path.steps) {
    // Encoded rules of Fig. 2:
    //   Axis::Test[Cond] == Axis::node / self::Test / self::node[Cond].
    if (step.axis != Axis::kSelf) {
      MicroStep a;
      a.kind = MicroStep::Kind::kAxisNode;
      a.axis = step.axis;
      out.push_back(std::move(a));
    }
    if (step.test != TestKind::kNode) {
      MicroStep b;
      b.kind = MicroStep::Kind::kSelfTest;
      b.test = step.test;
      b.tag = step.tag;
      out.push_back(std::move(b));
    }
    if (!step.cond.empty()) {
      MicroStep c;
      c.kind = MicroStep::Kind::kSelfCond;
      c.cond = step.cond;
      out.push_back(std::move(c));
    }
    if (step.axis == Axis::kSelf && step.test == TestKind::kNode &&
        step.cond.empty()) {
      // Identity step: keep it (it still contributes {Y} to the projector).
      MicroStep b;
      b.kind = MicroStep::Kind::kSelfTest;
      b.test = TestKind::kNode;
      out.push_back(std::move(b));
    }
  }
  if (materialize_result) {
    MicroStep dos;
    dos.kind = MicroStep::Kind::kAxisNode;
    dos.axis = Axis::kDescendantOrSelf;
    out.push_back(std::move(dos));
  }
  if (out.empty()) {
    MicroStep b;
    b.kind = MicroStep::Kind::kSelfTest;
    b.test = TestKind::kNode;
    out.push_back(std::move(b));
  }
  steps_arena_.push_back(std::move(out));
  return steps_arena_.size() - 1;
}

TypeEnv ProjectorInference::EnvFor(NameId y, const NameSet& context) const {
  NameSet singleton(dtd_.name_count());
  singleton.Add(y);
  NameSet bound = singleton | dtd_.Ancestors(singleton);
  TypeEnv env;
  env.type = singleton;
  env.context = (context & bound) | singleton;
  return env;
}

TypeEnv ProjectorInference::TypeOfSuffix(
    const TypeEnv& env, size_t slot, size_t idx,
    std::optional<Axis> override_axis) const {
  const std::vector<MicroStep>& steps = StepsOf(slot);
  TypeEnv current = env;
  for (size_t i = idx; i < steps.size(); ++i) {
    if (current.Empty()) {
      return TypeEnv{NameSet(dtd_.name_count()),
                     NameSet(dtd_.name_count())};
    }
    const MicroStep& step = steps[i];
    switch (step.kind) {
      case MicroStep::Kind::kAxisNode: {
        Axis axis = (i == idx && override_axis.has_value())
                        ? *override_axis
                        : step.axis;
        current = types_.ApplyAxis(current, axis);
        break;
      }
      case MicroStep::Kind::kSelfTest:
        current = types_.ApplySelfTest(current, step.test, step.tag);
        break;
      case MicroStep::Kind::kSelfCond:
        current = types_.ApplyCondition(current, step.cond);
        break;
    }
  }
  return current;
}

NameSet ProjectorInference::InferMany(const TypeEnv& env, size_t slot,
                                      size_t idx,
                                      std::optional<Axis> override_axis) {
  NameSet out(dtd_.name_count());
  env.type.ForEach([this, &env, slot, idx, override_axis, &out](NameId x) {
    out |= InferFrom(x, env.context, slot, idx, override_axis);
  });
  return out;
}

NameSet ProjectorInference::InferConditionPaths(const TypeEnv& env,
                                                size_t slot, size_t idx) {
  NameSet out(dtd_.name_count());
  // Take the conditions by reference from the arena: the vector is stable.
  const std::vector<LPath>& condition = StepsOf(slot)[idx].cond;
  for (const LPath& p : condition) {
    size_t cond_slot;
    auto it = cond_slots_.find(&p);
    if (it != cond_slots_.end()) {
      cond_slot = it->second;
    } else {
      cond_slot = Normalize(p, /*materialize_result=*/false);
      cond_slots_.emplace(&p, cond_slot);
    }
    out |= InferMany(env, cond_slot, 0, std::nullopt);
  }
  return out;
}

NameSet ProjectorInference::InferFrom(NameId y, const NameSet& context,
                                      size_t slot, size_t idx,
                                      std::optional<Axis> override_axis) {
  TypeEnv env = EnvFor(y, context);
  MemoKey key{y, slot, idx,
              override_axis.has_value() ? static_cast<int>(*override_axis)
                                        : -1,
              env.context};
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  const MicroStep& step = StepsOf(slot)[idx];
  const bool last = idx + 1 == StepsOf(slot).size();
  NameSet result(dtd_.name_count());

  switch (step.kind) {
    case MicroStep::Kind::kSelfTest: {
      TypeEnv after = types_.ApplySelfTest(env, step.test, step.tag);
      if (last) {
        // Base rule: Σ ⊢ Step : (τ,κ)  ⟹  Σ ⊩ Step : τ ∪ κ.
        result = after.type | after.context;
      } else {
        // Primitive rule 1: {Y} ∪ τ where Σ' ⊩ P : τ.
        result = InferMany(after, slot, idx + 1, std::nullopt);
        result.Add(y);
      }
      break;
    }
    case MicroStep::Kind::kSelfCond: {
      TypeEnv after = types_.ApplyCondition(env, step.cond);
      // Primitive rule 2: {Y} ∪ τ ∪ τ_1 ∪ ... ∪ τ_n. When the conditional
      // step is last, P is the identity self::node (encoded rule), whose
      // projector is the base rule's τ ∪ κ.
      NameSet continuation(dtd_.name_count());
      if (last) {
        continuation = after.type | after.context;
      } else {
        continuation = InferMany(after, slot, idx + 1, std::nullopt);
      }
      result = continuation | InferConditionPaths(after, slot, idx);
      result.Add(y);
      break;
    }
    case MicroStep::Kind::kAxisNode: {
      Axis axis = override_axis.value_or(step.axis);
      switch (axis) {
        case Axis::kChild:
        case Axis::kParent: {
          TypeEnv after = types_.ApplyAxis(env, axis);
          if (last) {
            result = after.type | after.context;
            break;
          }
          // Keep only step results whose continuation may be non-empty.
          TypeEnv filtered = after;
          filtered.type = NameSet(dtd_.name_count());
          after.type.ForEach(
              [this, &after, slot, idx, &filtered](NameId x) {
                TypeEnv start = EnvFor(x, after.context);
                if (TypeOfSuffix(start, slot, idx + 1, std::nullopt)
                        .type.Any()) {
                  filtered.type.Add(x);
                }
              });
          result = filtered.type |
                   InferMany(filtered, slot, idx + 1, std::nullopt);
          result.Add(y);
          break;
        }
        case Axis::kDescendant:
        case Axis::kAncestor: {
          TypeEnv after = types_.ApplyAxis(env, axis);
          if (last) {
            result = after.type | after.context;
            break;
          }
          // τ = {X_i | (X_i, κ') ⊢ Axis::node/P ≠ ∅} ∪ {Y}: the names on
          // the way to (or at) a useful continuation point.
          TypeEnv spine = after;
          spine.type = NameSet(dtd_.name_count());
          after.type.ForEach(
              [this, &after, slot, idx, axis, &spine](NameId x) {
                TypeEnv start = EnvFor(x, after.context);
                if (TypeOfSuffix(start, slot, idx, axis).type.Any()) {
                  spine.type.Add(x);
                }
              });
          spine.type.Add(y);
          // (τ, κ') ⊩ step'::node/P with step' = child (resp. parent).
          Axis single =
              axis == Axis::kDescendant ? Axis::kChild : Axis::kParent;
          result = spine.type |
                   InferMany(spine, slot, idx, std::optional<Axis>(single));
          break;
        }
        case Axis::kDescendantOrSelf:
        case Axis::kAncestorOrSelf: {
          if (last) {
            TypeEnv after = types_.ApplyAxis(env, axis);
            result = after.type | after.context;
            break;
          }
          // dos::node/P == self::node/P  ∪  descendant::node/P.
          Axis strict = axis == Axis::kDescendantOrSelf ? Axis::kDescendant
                                                        : Axis::kAncestor;
          result = InferFrom(y, context, slot, idx + 1, std::nullopt) |
                   InferFrom(y, context, slot, idx,
                             std::optional<Axis>(strict));
          result.Add(y);
          break;
        }
        default:
          assert(false && "axis outside XPath^l in projector inference");
          break;
      }
      break;
    }
  }

  memo_.emplace(std::move(key), result);
  return result;
}

Result<NameSet> ProjectorInference::InferForPath(
    const LPath& path, bool materialize_result,
    bool start_at_document_node) {
  XMLPROJ_RETURN_IF_ERROR(ValidateLPath(path));
  memo_.clear();
  cond_slots_.clear();
  steps_arena_.clear();
  size_t slot = Normalize(path, materialize_result);
  NameId start =
      start_at_document_node ? dtd_.document_name() : dtd_.root();
  NameSet start_ctx(dtd_.name_count());
  start_ctx.Add(start);
  if (!start_at_document_node) {
    // ({X}, {X, #document}): the document name counts as visited.
    start_ctx.Add(dtd_.document_name());
  }
  NameSet projector = InferFrom(start, start_ctx, slot, 0, std::nullopt);
  memo_.clear();
  cond_slots_.clear();
  steps_arena_.clear();
  projector.Add(dtd_.root());
  return CloseToValidProjector(projector);
}

Result<NameSet> ProjectorInference::InferForPaths(
    std::span<const LPath> paths, bool materialize_result,
    bool start_at_document_node) {
  NameSet out(dtd_.name_count());
  out.Add(dtd_.root());
  for (const LPath& p : paths) {
    XMLPROJ_ASSIGN_OR_RETURN(
        NameSet one,
        InferForPath(p, materialize_result, start_at_document_node));
    out |= one;
  }
  return CloseToValidProjector(out);
}

NameSet ProjectorInference::CloseToValidProjector(
    const NameSet& projector) const {
  // Keep the names reachable from the root through projector-internal
  // edges; anything else can never survive pruning anyway. The synthetic
  // document name is dropped: the document node is always kept.
  NameSet kept(dtd_.name_count());
  if (!projector.Contains(dtd_.root())) return kept;
  kept.Add(dtd_.root());
  bool changed = true;
  while (changed) {
    changed = false;
    NameSet frontier = dtd_.Children(kept) & projector;
    frontier -= kept;
    if (frontier.Any()) {
      kept |= frontier;
      changed = true;
    }
  }
  if (dtd_.document_name() != kNoName) kept.Remove(dtd_.document_name());
  return kept;
}

}  // namespace xmlproj
