// Durable checkpoint for one pruning run: crash-safe progress on disk,
// so a corpus run killed mid-flight resumes instead of restarting.
//
// The paper's whole point is pruning corpora too large to hold in memory
// (§6) — exactly the runs most likely to be interrupted by OOM kills,
// deadline evictions, or an operator's Ctrl-C. A checkpointed run writes
// two kinds of durable state under one directory:
//
//   DIR/checkpoint.jsonl   append-only record of terminal task outcomes
//   DIR/out/task-<i>.xml   committed pruned outputs, one per task
//
// The JSONL file opens with a *header* line binding the checkpoint to
// its inputs — corpus digest, task count, workload name, projector
// NameSet hash, and a fingerprint of the PipelineOptions that shape
// output bytes — so `--resume=DIR` refuses a checkpoint whose inputs or
// options changed (resuming one would silently mix outputs of two
// different runs). Every subsequent line is one task's terminal outcome:
//
//   completed    output path + byte count + FNV-1a content hash (+ the
//                task's PruneStats, so resumed summaries fold exactly),
//                with a `degraded` flag for identity-pass fallbacks
//   quarantined  stage + status code + attempts, mirroring TaskFailure
//
// Appends are journal-style: one line, fflush + fsync, written under a
// mutex (pool workers and the watchdog thread both append). A crash can
// at worst tear the final line; LoadCheckpoint() tolerates and counts
// torn/corrupt lines, and the resume planner simply re-runs tasks whose
// record (or committed output) did not survive. Output commits are
// atomic — write `*.tmp`, fsync, rename — so a file in DIR/out/ is
// always a complete pruned document, never a torn one; the planner still
// re-verifies each committed output by size + content hash before
// trusting it.
//
// Granularity is the *task* (one document × projector), not the chunk:
// see DESIGN.md "Checkpoint granularity". The hot path is untouched —
// one append per task, nothing per SAX event.

#ifndef XMLPROJ_PROJECTION_CHECKPOINT_H_
#define XMLPROJ_PROJECTION_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dtd/name_set.h"
#include "projection/pipeline.h"

namespace xmlproj {

// FNV-1a over `data`, continuing from `seed` (chain calls to hash a
// sequence of fields). The default seed is the standard offset basis.
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
uint64_t Fnv1a64(std::string_view data, uint64_t seed = kFnv1aOffset);

// Fast 64-bit content hash for per-task output verification: an
// 8-bytes-at-a-time FNV-1a variant (word loads + the 64-bit FNV prime,
// byte-wise FNV over the tail). Byte-serial FNV tops out around the
// pruner's own throughput, which would make hashing a double-digit
// share of a checkpointed task; word-at-a-time keeps the bookkeeping
// inside the <=5% bench gate. Not FNV-compatible — only ever compared
// against itself (written at commit, recompared at resume).
uint64_t ContentHash64(std::string_view data);

// What a checkpoint is bound to. Two runs with equal bindings prune the
// same bytes with the same projectors under output-equivalent options,
// so their outputs are interchangeable — the precondition for resume.
struct CheckpointBinding {
  uint64_t corpus_digest = 0;        // FNV over every task's input bytes
  uint64_t projector_hash = 0;       // FNV over every projector NameSet
  uint64_t options_fingerprint = 0;  // output-shaping PipelineOptions only
  uint64_t tasks = 0;
  std::string workload;  // free-form label, e.g. "xmark-dashboard-merged"

  bool Matches(const CheckpointBinding& other, std::string* mismatch) const;
};

// Binding for a corpus × projectors run (the PruneCorpus /
// PruneCorpusPerQuery task layouts: task index = doc * projectors + q).
// The options fingerprint covers only fields that change output bytes or
// terminal outcomes (validate, policy, degrade, budget, chunking) —
// resuming with a different thread count or telemetry setup is fine.
CheckpointBinding ComputeCorpusBinding(std::span<const std::string> corpus,
                                       std::span<const NameSet> projectors,
                                       const PipelineOptions& options,
                                       std::string workload);

// One line of checkpoint.jsonl after the header.
struct CheckpointTaskRecord {
  uint64_t task = 0;
  bool completed = false;  // false = quarantined
  // Completed tasks.
  bool degraded = false;
  std::string output_path;   // relative to the checkpoint dir
  uint64_t output_bytes = 0;
  uint64_t output_hash = 0;  // FNV-1a of the committed bytes
  uint64_t input_bytes = 0;
  uint64_t input_nodes = 0;
  uint64_t kept_nodes = 0;
  uint64_t input_text_bytes = 0;
  uint64_t kept_text_bytes = 0;
  // Quarantined tasks.
  std::string stage;  // TaskFailure::stage ("parse", "watchdog", ...)
  std::string code;   // StatusCodeName of the terminal status
  int attempts = 1;
};

// Header line: the binding plus run identity.
struct CheckpointHeader {
  std::string run_id;
  uint64_t started_unix_ms = 0;
  CheckpointBinding binding;
};

// Append side of one checkpoint directory. Thread-safe: AppendTask
// serializes concurrent workers (and the watchdog) behind a mutex, and
// every append is fflush+fsync'd before returning.
class RunCheckpoint {
 public:
  RunCheckpoint() = default;
  ~RunCheckpoint();
  RunCheckpoint(const RunCheckpoint&) = delete;
  RunCheckpoint& operator=(const RunCheckpoint&) = delete;

  // Starts a fresh checkpoint: creates DIR and DIR/out/ (one level),
  // truncates DIR/checkpoint.jsonl and writes the header. Any prior
  // checkpoint in DIR is superseded.
  Status Create(const std::string& dir, const CheckpointHeader& header);

  // Opens an existing checkpoint for appending (resume): records from
  // the resumed run append after the prior run's. No header is written.
  Status OpenForAppend(const std::string& dir);

  // Atomically commits one task's pruned output to DIR/out/task-<i>.xml
  // (write *.tmp, fsync, rename). Idempotent: a re-run task overwrites
  // its prior commit.
  Status CommitOutput(uint64_t task, const std::string& content) const;

  // Appends one terminal-outcome line (fflush + fsync).
  Status AppendTask(const CheckpointTaskRecord& record);

  uint64_t appends() const;
  const std::string& dir() const { return dir_; }
  bool open() const { return file_ != nullptr; }

  // DIR/checkpoint.jsonl and the committed-output paths.
  static std::string PathFor(const std::string& dir);
  static std::string TaskOutputRelPath(uint64_t task);
  static std::string TaskOutputPath(const std::string& dir, uint64_t task);

  // One record / header as its JSON line (no newline); for tests.
  static std::string FormatHeader(const CheckpointHeader& header);
  static std::string FormatRecord(const CheckpointTaskRecord& record);
  static bool ParseHeader(std::string_view line, CheckpointHeader* out);
  static bool ParseRecord(std::string_view line, CheckpointTaskRecord* out);

  // Loads DIR/checkpoint.jsonl: the header plus every parseable task
  // record in file order (a torn or corrupt line — crash mid-append — is
  // counted into *skipped_lines, nullable, and skipped). False with
  // *error when the file is missing/unreadable or has no valid header.
  static bool LoadCheckpoint(const std::string& dir, CheckpointHeader* header,
                             std::vector<CheckpointTaskRecord>* records,
                             size_t* skipped_lines, std::string* error);

 private:
  Status OpenFile(const std::string& dir, const char* mode);

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string dir_;
  std::string path_;
  uint64_t appends_ = 0;
};

// What a resumed pipeline run should do, computed once before the run.
struct ResumePlan {
  // False when DIR has no loadable checkpoint or its binding does not
  // match the current inputs/options; `mismatch` says why. A resumed run
  // must not start in that state (the tool exits with a distinct code).
  bool resumable = false;
  std::string mismatch;
  std::string run_id;  // the interrupted run's id, from the header

  // done[i] — task i is settled (verified-completed, or quarantined and
  // not re-admitted) and must be skipped by the pipeline.
  std::vector<char> done;
  // Fold of the skipped *completed* tasks' recorded stats; the pipeline
  // adds this into the final PipelineSummary so totals match an
  // uninterrupted run.
  PipelineSummary prior;
  // Quarantined tasks carried forward (not re-admitted): surfaced again
  // in PipelineRun::failures with their recorded stage/code.
  std::vector<TaskFailure> prior_failures;

  size_t skipped_completed = 0;    // verified committed outputs
  size_t skipped_quarantined = 0;  // carried-forward quarantines
  size_t retry_quarantined = 0;    // re-admitted under the retry flag
  size_t invalidated = 0;  // records dropped: missing/tampered output
  size_t torn_lines = 0;   // corrupt checkpoint lines tolerated
};

// Plans a resume of DIR against the current inputs: verifies the header
// binding, re-verifies every completed task's committed output by size +
// content hash (mismatches are re-run, never trusted), and either
// carries quarantined tasks forward or — with `retry_quarantined` —
// re-admits them. The last record per task wins, so a task that was
// watchdog-quarantined while wedged but then completed counts as
// completed.
ResumePlan PlanResume(const std::string& dir,
                      const CheckpointBinding& binding,
                      bool retry_quarantined);

// Status-code name → code, inverse of StatusCodeName for the codes a
// checkpoint can record; unknown names map to kInternal.
StatusCode StatusCodeFromName(std::string_view name);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_CHECKPOINT_H_
