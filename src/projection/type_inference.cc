#include "projection/type_inference.h"

#include <cassert>

namespace xmlproj {

TypeEnv TypeInference::InitialEnv() const {
  NameSet root(dtd_.name_count());
  root.Add(dtd_.root());
  NameSet context = root;
  // The document name is "already visited" above the root element, so
  // upward steps that climb past the root stay sound and precise.
  if (dtd_.document_name() != kNoName) context.Add(dtd_.document_name());
  return TypeEnv{root, context};
}

TypeEnv TypeInference::DocumentEnv() const {
  NameSet doc(dtd_.name_count());
  doc.Add(dtd_.document_name());
  return TypeEnv{doc, doc};
}

NameSet TypeInference::NormalizeContext(const NameSet& context,
                                        const NameSet& type) const {
  NameSet bound = type | dtd_.Ancestors(type);
  return context & bound;
}

NameSet TypeInference::AxisSet(const NameSet& type, Axis axis) const {
  switch (axis) {
    case Axis::kChild:
      return dtd_.Children(type);
    case Axis::kDescendant:
      return dtd_.Descendants(type);
    case Axis::kDescendantOrSelf:
      return type | dtd_.Descendants(type);
    case Axis::kParent:
      return dtd_.Parents(type);
    case Axis::kAncestor:
      return dtd_.Ancestors(type);
    case Axis::kAncestorOrSelf:
      return type | dtd_.Ancestors(type);
    case Axis::kSelf:
      return type;
    default:
      assert(false && "axis outside XPath^l");
      return NameSet(dtd_.name_count());
  }
}

NameSet TypeInference::TestSet(const NameSet& type, TestKind test,
                               const std::string& tag) const {
  switch (test) {
    case TestKind::kNode:
      return type;
    case TestKind::kText:
      return type & dtd_.StringNames();
    case TestKind::kAnyElement: {
      NameSet out = type - dtd_.StringNames();
      if (dtd_.document_name() != kNoName) {
        out.Remove(dtd_.document_name());
      }
      return out;
    }
    case TestKind::kName:
      return type & dtd_.NamesWithTag(tag);
  }
  return NameSet(dtd_.name_count());
}

TypeEnv TypeInference::ApplyAxis(const TypeEnv& env, Axis axis) const {
  NameSet selected = AxisSet(env.type, axis);
  TypeEnv out;
  if (IsUpwardAxis(axis)) {
    // Upward: intersect with the context, for the type and context alike.
    out.type = selected & env.context;
    out.context = NormalizeContext(env.context, out.type);
  } else {
    out.type = std::move(selected);
    out.context = NormalizeContext(env.context | out.type, out.type);
  }
  return out;
}

TypeEnv TypeInference::ApplySelfTest(const TypeEnv& env, TestKind test,
                                     const std::string& tag) const {
  TypeEnv out;
  out.type = TestSet(env.type, test, tag);
  out.context = NormalizeContext(env.context, out.type);
  return out;
}

TypeEnv TypeInference::ApplyCondition(
    const TypeEnv& env, std::span<const LPath> condition) const {
  TypeEnv out;
  out.type = NameSet(dtd_.name_count());
  env.type.ForEach([this, &env, condition, &out](NameId x) {
    NameSet singleton(dtd_.name_count());
    singleton.Add(x);
    TypeEnv start;
    start.type = singleton;
    start.context = NormalizeContext(env.context, singleton);
    // Make sure x itself is in its context (env well-formedness gives
    // x ∈ κ only if it was visited; the condition is evaluated at x).
    start.context.Add(x);
    for (const LPath& p : condition) {
      if (InferPath(start, p).type.Any()) {
        out.type.Add(x);
        break;
      }
    }
  });
  out.context = NormalizeContext(env.context, out.type);
  return out;
}

TypeEnv TypeInference::InferStep(const TypeEnv& env,
                                 const LStep& step) const {
  TypeEnv current = env;
  if (step.axis != Axis::kSelf) {
    current = ApplyAxis(current, step.axis);
  }
  if (step.test != TestKind::kNode) {
    current = ApplySelfTest(current, step.test, step.tag);
  }
  if (!step.cond.empty()) {
    current = ApplyCondition(current, step.cond);
  }
  return current;
}

TypeEnv TypeInference::InferSteps(const TypeEnv& env,
                                  std::span<const LStep> steps) const {
  TypeEnv current = env;
  for (const LStep& step : steps) {
    if (current.Empty()) {
      // Nothing can be selected further; the empty environment is a
      // fixpoint of every rule.
      return TypeEnv{NameSet(dtd_.name_count()), NameSet(dtd_.name_count())};
    }
    current = InferStep(current, step);
  }
  return current;
}

TypeEnv TypeInference::InferPath(const TypeEnv& env,
                                 const LPath& path) const {
  return InferSteps(env, path.steps);
}

}  // namespace xmlproj
