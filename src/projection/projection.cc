#include "projection/projection.h"

#include "projection/projector_inference.h"
#include "xpath/approximate.h"
#include "xpath/parser.h"

namespace xmlproj {

Result<ProjectionAnalysis> AnalyzeXPath(const Dtd& dtd,
                                        const LocationPath& query,
                                        bool materialize_result) {
  XMLPROJ_ASSIGN_OR_RETURN(ApproximatedQuery approx,
                           ApproximateQuery(query));
  if (!approx.var_conditions.empty()) {
    return InvalidError(
        "query contains variable-rooted predicates; analyze it as part of "
        "an XQuery workload");
  }
  ProjectorInference inference(dtd);
  XMLPROJ_ASSIGN_OR_RETURN(
      NameSet projector,
      inference.InferForPath(approx.main, materialize_result,
                             approx.from_document_node));
  for (const LPath& extra : approx.extra_paths) {
    // Extra paths carry predicate data needs: they are absolute (they are
    // promoted from absolute predicates), and their results are consumed
    // by the predicate, so they are materialized only through their own
    // explicit descendant-or-self suffixes.
    XMLPROJ_ASSIGN_OR_RETURN(
        NameSet extra_projector,
        inference.InferForPath(extra, /*materialize_result=*/false,
                               /*start_at_document_node=*/true));
    projector |= extra_projector;
  }
  ProjectionAnalysis out;
  out.projector = inference.CloseToValidProjector(projector);
  out.approximated = std::move(approx.main);
  return out;
}

Result<ProjectionAnalysis> AnalyzeXPathQuery(const Dtd& dtd,
                                             std::string_view query_text,
                                             bool materialize_result) {
  XMLPROJ_ASSIGN_OR_RETURN(LocationPath path, ParseXPath(query_text));
  return AnalyzeXPath(dtd, path, materialize_result);
}

Result<NameSet> AnalyzeXPathQueries(const Dtd& dtd,
                                    std::span<const std::string> queries,
                                    bool materialize_result) {
  NameSet out(dtd.name_count());
  out.Add(dtd.root());
  for (const std::string& q : queries) {
    XMLPROJ_ASSIGN_OR_RETURN(ProjectionAnalysis one,
                             AnalyzeXPathQuery(dtd, q, materialize_result));
    out |= one.projector;
  }
  ProjectorInference inference(dtd);
  return inference.CloseToValidProjector(out);
}

double ProjectorSelectivity(const Dtd& dtd, const NameSet& projector) {
  if (dtd.name_count() == 0) return 0;
  return 100.0 * static_cast<double>(projector.Count()) /
         static_cast<double>(dtd.name_count());
}

}  // namespace xmlproj
