#include "projection/checkpoint.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "obs/export.h"

namespace xmlproj {
namespace {

constexpr uint64_t kFnv1aPrime = 0x100000001b3ull;

// JSON writer fragments, the same journal-style escaping as
// obs/journal.cc (a checkpoint line must survive any byte a stage name
// or workload label can carry).
void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendKeyU64(const char* key, uint64_t value, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(buf);
}

// 64-bit hashes are written as fixed-width hex *strings*: the journal's
// number path round-trips through double (53-bit mantissa), which would
// silently corrupt high hash bits.
void AppendKeyHex64(const char* key, uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  out->append(buf);
  out->append("\"");
}

void AppendKeyString(const char* key, std::string_view value,
                     std::string* out) {
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  AppendJsonEscaped(value, out);
  out->append("\"");
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<uint64_t>(c - 'A' + 10);
    else return false;
  }
  *out = v;
  return true;
}

// Micro JSON reader, same dialect as obs/journal.cc: objects, strings,
// non-negative numbers, strict about everything else — which is the
// corrupt-line tolerance LoadCheckpoint() builds on. (Deliberately
// duplicated rather than exported from the journal: obs/ sits below this
// library and keeps its parser private to its own format.)
class JsonReader {
 public:
  explicit JsonReader(std::string_view in) : in_(in) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ >= in_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < in_.size() && in_[pos_] == c;
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (pos_ >= in_.size() || in_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= in_.size()) return false;
        char esc = in_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > in_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = in_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0x7f) return false;
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool ReadU64(uint64_t* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || pos_ - start > 20) return false;
    errno = 0;
    char* end = nullptr;
    std::string num(in_.substr(start, pos_ - start));
    uint64_t v = std::strtoull(num.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return false;
    *out = v;
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size() && (in_[pos_] == ' ' || in_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

uint64_t HashU64(uint64_t value, uint64_t seed) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(bytes));
  return Fnv1a64(std::string_view(bytes, sizeof(bytes)), seed);
}

uint64_t HashNameSet(const NameSet& set, uint64_t seed) {
  uint64_t h = HashU64(set.universe_size(), seed);
  // No raw-word accessor on NameSet; a few hundred Contains() probes per
  // run is nothing, and the result is layout-independent.
  for (size_t n = 0; n < set.universe_size(); ++n) {
    if (set.Contains(static_cast<NameId>(n))) h = HashU64(n, h);
  }
  return h;
}

bool MkdirOneLevel(const std::string& dir, std::string* error) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "cannot create directory \"" + dir +
               "\": " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

}  // namespace

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

uint64_t ContentHash64(std::string_view data) {
  uint64_t h = kFnv1aOffset ^ (data.size() * kFnv1aPrime);
  size_t pos = 0;
  for (; pos + 8 <= data.size(); pos += 8) {
    uint64_t word;
    std::memcpy(&word, data.data() + pos, sizeof(word));
    h = (h ^ word) * kFnv1aPrime;
  }
  return Fnv1a64(data.substr(pos), h);
}

StatusCode StatusCodeFromName(std::string_view name) {
  struct Entry {
    const char* name;
    StatusCode code;
  };
  static constexpr Entry kEntries[] = {
      {"OK", StatusCode::kOk},
      {"PARSE_ERROR", StatusCode::kParseError},
      {"INVALID", StatusCode::kInvalid},
      {"UNSUPPORTED", StatusCode::kUnsupported},
      {"NOT_FOUND", StatusCode::kNotFound},
      {"CANCELLED", StatusCode::kCancelled},
      {"RESOURCE_EXHAUSTED", StatusCode::kResourceExhausted},
      {"DEADLINE_EXCEEDED", StatusCode::kDeadlineExceeded},
      {"UNAVAILABLE", StatusCode::kUnavailable},
      {"INTERNAL", StatusCode::kInternal},
  };
  for (const Entry& e : kEntries) {
    if (name == e.name) return e.code;
  }
  return StatusCode::kInternal;
}

bool CheckpointBinding::Matches(const CheckpointBinding& other,
                                std::string* mismatch) const {
  auto fail = [&](const std::string& what) {
    if (mismatch != nullptr) *mismatch = what;
    return false;
  };
  if (tasks != other.tasks) {
    return fail("task count changed: checkpoint has " +
                std::to_string(tasks) + ", current run has " +
                std::to_string(other.tasks));
  }
  if (workload != other.workload) {
    return fail("workload changed: checkpoint is \"" + workload +
                "\", current run is \"" + other.workload + "\"");
  }
  if (corpus_digest != other.corpus_digest) {
    return fail("corpus digest changed: the input documents differ");
  }
  if (projector_hash != other.projector_hash) {
    return fail("projector hash changed: the workload projectors differ");
  }
  if (options_fingerprint != other.options_fingerprint) {
    return fail("options fingerprint changed: an output-shaping pipeline "
                "option (validate/policy/degrade/budget/chunking) differs");
  }
  return true;
}

CheckpointBinding ComputeCorpusBinding(std::span<const std::string> corpus,
                                       std::span<const NameSet> projectors,
                                       const PipelineOptions& options,
                                       std::string workload) {
  CheckpointBinding binding;
  binding.workload = std::move(workload);
  binding.tasks = corpus.size() * std::max<size_t>(1, projectors.size());

  uint64_t h = HashU64(corpus.size(), kFnv1aOffset);
  for (const std::string& doc : corpus) {
    h = HashU64(doc.size(), h);
    h = Fnv1a64(doc, h);
  }
  binding.corpus_digest = h;

  h = HashU64(projectors.size(), kFnv1aOffset);
  for (const NameSet& projector : projectors) h = HashNameSet(projector, h);
  binding.projector_hash = h;

  // Only fields that change which bytes a task produces or whether it
  // reaches a terminal outcome. Threads, telemetry, queue capacity and
  // drain settings are free to differ between the runs.
  h = HashU64(options.validate ? 1 : 0, kFnv1aOffset);
  h = HashU64(static_cast<uint64_t>(options.policy), h);
  h = HashU64(options.degrade_on_invalid ? 1 : 0, h);
  h = HashU64(options.budget.max_bytes, h);
  h = HashU64(options.budget.deadline_ms, h);
  h = HashU64(options.intra_doc.enabled() ? 1 : 0, h);
  if (options.intra_doc.enabled()) {
    h = HashU64(options.intra_doc.chunk_bytes, h);
  }
  binding.options_fingerprint = h;
  return binding;
}

RunCheckpoint::~RunCheckpoint() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string RunCheckpoint::PathFor(const std::string& dir) {
  if (dir.empty() || dir.back() == '/') return dir + "checkpoint.jsonl";
  return dir + "/checkpoint.jsonl";
}

std::string RunCheckpoint::TaskOutputRelPath(uint64_t task) {
  return "out/task-" + std::to_string(task) + ".xml";
}

std::string RunCheckpoint::TaskOutputPath(const std::string& dir,
                                          uint64_t task) {
  std::string base = dir;
  if (!base.empty() && base.back() != '/') base.push_back('/');
  return base + TaskOutputRelPath(task);
}

Status RunCheckpoint::OpenFile(const std::string& dir, const char* mode) {
  if (dir.empty()) {
    return InvalidError("checkpoint directory must be non-empty");
  }
  std::string error;
  if (!MkdirOneLevel(dir, &error)) return UnavailableError(error);
  std::string out_dir = dir;
  if (out_dir.back() != '/') out_dir.push_back('/');
  out_dir += "out";
  if (!MkdirOneLevel(out_dir, &error)) return UnavailableError(error);
  std::string path = PathFor(dir);
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    return UnavailableError("cannot open checkpoint \"" + path +
                            "\": " + std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  dir_ = dir;
  path_ = std::move(path);
  appends_ = 0;
  return Status::Ok();
}

Status RunCheckpoint::Create(const std::string& dir,
                             const CheckpointHeader& header) {
  XMLPROJ_RETURN_IF_ERROR(OpenFile(dir, "we"));
  std::string line = FormatHeader(header);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return UnavailableError("cannot write checkpoint header to \"" + path_ +
                            "\": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status RunCheckpoint::OpenForAppend(const std::string& dir) {
  return OpenFile(dir, "ae");
}

Status RunCheckpoint::CommitOutput(uint64_t task,
                                   const std::string& content) const {
  std::string error;
  // fsync before rename: the whole point is that a file present in out/
  // after a crash is complete and durable.
  if (!AtomicWriteTextFile(TaskOutputPath(dir_, task), content,
                           /*fsync_file=*/true, &error)) {
    return UnavailableError("checkpoint commit failed: " + error);
  }
  return Status::Ok();
}

Status RunCheckpoint::AppendTask(const CheckpointTaskRecord& record) {
  std::string line = FormatRecord(record);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return InternalError("checkpoint is not open");
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return UnavailableError("cannot append to checkpoint \"" + path_ +
                            "\": " + std::strerror(errno));
  }
  ++appends_;
  return Status::Ok();
}

uint64_t RunCheckpoint::appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}

std::string RunCheckpoint::FormatHeader(const CheckpointHeader& header) {
  std::string out;
  out.reserve(256);
  out.append("{\"type\":\"header\",");
  AppendKeyString("run_id", header.run_id, &out);
  out.push_back(',');
  AppendKeyU64("started_unix_ms", header.started_unix_ms, &out);
  out.push_back(',');
  AppendKeyU64("tasks", header.binding.tasks, &out);
  out.push_back(',');
  AppendKeyString("workload", header.binding.workload, &out);
  out.push_back(',');
  AppendKeyHex64("corpus_digest", header.binding.corpus_digest, &out);
  out.push_back(',');
  AppendKeyHex64("projector_hash", header.binding.projector_hash, &out);
  out.push_back(',');
  AppendKeyHex64("options_fingerprint", header.binding.options_fingerprint,
                 &out);
  out.push_back('}');
  return out;
}

std::string RunCheckpoint::FormatRecord(const CheckpointTaskRecord& record) {
  std::string out;
  out.reserve(256);
  out.append("{\"type\":\"task\",");
  AppendKeyU64("task", record.task, &out);
  out.append(",\"outcome\":\"");
  out.append(record.completed ? "completed" : "quarantined");
  out.append("\"");
  if (record.completed) {
    out.push_back(',');
    AppendKeyString("path", record.output_path, &out);
    out.push_back(',');
    AppendKeyU64("bytes", record.output_bytes, &out);
    out.push_back(',');
    AppendKeyHex64("hash", record.output_hash, &out);
    out.push_back(',');
    AppendKeyU64("degraded", record.degraded ? 1 : 0, &out);
    out.push_back(',');
    AppendKeyU64("input_bytes", record.input_bytes, &out);
    out.push_back(',');
    AppendKeyU64("input_nodes", record.input_nodes, &out);
    out.push_back(',');
    AppendKeyU64("kept_nodes", record.kept_nodes, &out);
    out.push_back(',');
    AppendKeyU64("input_text_bytes", record.input_text_bytes, &out);
    out.push_back(',');
    AppendKeyU64("kept_text_bytes", record.kept_text_bytes, &out);
  } else {
    out.push_back(',');
    AppendKeyString("stage", record.stage, &out);
    out.push_back(',');
    AppendKeyString("code", record.code, &out);
    out.push_back(',');
    AppendKeyU64("attempts",
                 static_cast<uint64_t>(record.attempts < 1 ? 1
                                                           : record.attempts),
                 &out);
  }
  out.push_back('}');
  return out;
}

namespace {

// Shared object-scanning loop for header and task lines. Returns false
// on any malformed line; `type_out` receives the "type" value and the
// field callback handles everything else.
template <typename FieldFn>
bool ParseCheckpointObject(std::string_view line, std::string* type_out,
                           FieldFn&& field) {
  JsonReader r(line);
  if (!r.Consume('{')) return false;
  bool first = true;
  while (!r.Peek('}')) {
    if (!first && !r.Consume(',')) return false;
    first = false;
    std::string key;
    if (!r.ReadString(&key) || !r.Consume(':')) return false;
    if (key == "type") {
      if (!r.ReadString(type_out)) return false;
      continue;
    }
    if (!field(key, r)) return false;
  }
  if (!r.Consume('}') || !r.AtEnd()) return false;
  return true;
}

// Unknown-key tolerance, same contract as the journal: a newer writer
// may add scalar fields without breaking this reader.
bool SkipScalar(JsonReader& r) {
  std::string sink_s;
  uint64_t sink_u = 0;
  return r.ReadString(&sink_s) || r.ReadU64(&sink_u);
}

}  // namespace

bool RunCheckpoint::ParseHeader(std::string_view line, CheckpointHeader* out) {
  CheckpointHeader header;
  std::string type;
  bool ok = ParseCheckpointObject(
      line, &type, [&](const std::string& key, JsonReader& r) {
        if (key == "run_id") return r.ReadString(&header.run_id);
        if (key == "started_unix_ms") {
          return r.ReadU64(&header.started_unix_ms);
        }
        if (key == "tasks") return r.ReadU64(&header.binding.tasks);
        if (key == "workload") return r.ReadString(&header.binding.workload);
        std::string hex;
        if (key == "corpus_digest") {
          return r.ReadString(&hex) &&
                 ParseHex64(hex, &header.binding.corpus_digest);
        }
        if (key == "projector_hash") {
          return r.ReadString(&hex) &&
                 ParseHex64(hex, &header.binding.projector_hash);
        }
        if (key == "options_fingerprint") {
          return r.ReadString(&hex) &&
                 ParseHex64(hex, &header.binding.options_fingerprint);
        }
        return SkipScalar(r);
      });
  if (!ok || type != "header" || header.run_id.empty()) return false;
  *out = std::move(header);
  return true;
}

bool RunCheckpoint::ParseRecord(std::string_view line,
                                CheckpointTaskRecord* out) {
  CheckpointTaskRecord record;
  std::string type;
  std::string outcome;
  bool saw_task = false;
  bool ok = ParseCheckpointObject(
      line, &type, [&](const std::string& key, JsonReader& r) {
        if (key == "task") {
          saw_task = true;
          return r.ReadU64(&record.task);
        }
        if (key == "outcome") return r.ReadString(&outcome);
        if (key == "path") return r.ReadString(&record.output_path);
        if (key == "bytes") return r.ReadU64(&record.output_bytes);
        if (key == "hash") {
          std::string hex;
          return r.ReadString(&hex) && ParseHex64(hex, &record.output_hash);
        }
        if (key == "degraded") {
          uint64_t v = 0;
          if (!r.ReadU64(&v)) return false;
          record.degraded = v != 0;
          return true;
        }
        if (key == "input_bytes") return r.ReadU64(&record.input_bytes);
        if (key == "input_nodes") return r.ReadU64(&record.input_nodes);
        if (key == "kept_nodes") return r.ReadU64(&record.kept_nodes);
        if (key == "input_text_bytes") {
          return r.ReadU64(&record.input_text_bytes);
        }
        if (key == "kept_text_bytes") {
          return r.ReadU64(&record.kept_text_bytes);
        }
        if (key == "stage") return r.ReadString(&record.stage);
        if (key == "code") return r.ReadString(&record.code);
        if (key == "attempts") {
          uint64_t v = 0;
          if (!r.ReadU64(&v)) return false;
          record.attempts = static_cast<int>(v);
          return true;
        }
        return SkipScalar(r);
      });
  if (!ok || type != "task" || !saw_task) return false;
  if (outcome == "completed") {
    record.completed = true;
    if (record.output_path.empty()) return false;
  } else if (outcome == "quarantined") {
    record.completed = false;
    if (record.stage.empty() || record.code.empty()) return false;
  } else {
    return false;
  }
  *out = std::move(record);
  return true;
}

bool RunCheckpoint::LoadCheckpoint(const std::string& dir,
                                   CheckpointHeader* header,
                                   std::vector<CheckpointTaskRecord>* records,
                                   size_t* skipped_lines, std::string* error) {
  records->clear();
  if (skipped_lines != nullptr) *skipped_lines = 0;
  std::string path = PathFor(dir);
  std::FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot read checkpoint \"" + path +
               "\": " + std::strerror(errno);
    }
    return false;
  }
  bool have_header = false;
  std::string line;
  char buf[4096];
  auto flush_line = [&]() {
    if (line.empty()) return;
    if (!have_header) {
      // The header must be the first parseable line; anything before it
      // means the file is not a checkpoint.
      have_header = ParseHeader(line, header);
      if (!have_header && skipped_lines != nullptr) ++*skipped_lines;
      line.clear();
      return;
    }
    CheckpointTaskRecord record;
    if (ParseRecord(line, &record)) {
      records->push_back(std::move(record));
    } else if (skipped_lines != nullptr) {
      ++*skipped_lines;
    }
    line.clear();
  };
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.append(buf);
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      flush_line();
    }
  }
  // A final line without '\n' is a torn append — try it anyway.
  flush_line();
  std::fclose(f);
  if (!have_header) {
    if (error != nullptr) {
      *error = "checkpoint \"" + path + "\" has no valid header line";
    }
    return false;
  }
  return true;
}

ResumePlan PlanResume(const std::string& dir,
                      const CheckpointBinding& binding,
                      bool retry_quarantined) {
  ResumePlan plan;
  CheckpointHeader header;
  std::vector<CheckpointTaskRecord> records;
  std::string error;
  if (!RunCheckpoint::LoadCheckpoint(dir, &header, &records, &plan.torn_lines,
                                     &error)) {
    plan.mismatch = error;
    return plan;
  }
  if (!header.binding.Matches(binding, &plan.mismatch)) return plan;
  plan.run_id = header.run_id;
  plan.done.assign(binding.tasks, 0);

  // Last record per task wins: a watchdog quarantine written while the
  // task was still wedged is superseded if the task later completed, and
  // a retried task's final outcome supersedes its earlier failures.
  std::unordered_map<uint64_t, const CheckpointTaskRecord*> last;
  for (const CheckpointTaskRecord& record : records) {
    if (record.task >= binding.tasks) {
      ++plan.torn_lines;  // out-of-range: treat like a corrupt line
      continue;
    }
    last[record.task] = &record;
  }

  for (const auto& [task, record] : last) {
    if (!record->completed) {
      if (retry_quarantined) {
        ++plan.retry_quarantined;
        continue;
      }
      plan.done[task] = 1;
      ++plan.skipped_quarantined;
      TaskFailure failure;
      failure.task = task;
      failure.stage = record->stage;
      failure.status = Status(StatusCodeFromName(record->code),
                              "quarantined by interrupted run " +
                                  header.run_id + " (stage " + record->stage +
                                  "), not re-admitted; use "
                                  "--resume-retry-quarantined to re-run");
      failure.attempts = record->attempts;
      plan.prior_failures.push_back(std::move(failure));
      continue;
    }
    // Completed: trust nothing — the committed output must exist with
    // the recorded size and content hash, or the task re-runs.
    std::ifstream in(RunCheckpoint::TaskOutputPath(dir, task),
                     std::ios::binary);
    std::string content;
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (!in.bad()) content = std::move(buffer).str();
    }
    if (!in || content.size() != record->output_bytes ||
        ContentHash64(content) != record->output_hash) {
      ++plan.invalidated;
      continue;
    }
    plan.done[task] = 1;
    ++plan.skipped_completed;
    PipelineResult result;
    result.stats.input_nodes = record->input_nodes;
    result.stats.kept_nodes = record->kept_nodes;
    result.stats.input_text_bytes = record->input_text_bytes;
    result.stats.kept_text_bytes = record->kept_text_bytes;
    plan.prior.AddTask(record->input_bytes, result);
    // AddTask reads output size from the (empty) result; fix it up from
    // the record so byte totals fold exactly.
    plan.prior.output_bytes += record->output_bytes;
    if (record->degraded) ++plan.prior.degraded;
  }
  std::sort(plan.prior_failures.begin(), plan.prior_failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.task < b.task;
            });
  plan.resumable = true;
  return plan;
}

}  // namespace xmlproj
