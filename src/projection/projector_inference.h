// Type-projector inference (paper §4.2, Figure 2).
//
// Given a DTD (X, E) and a XPath^ℓ path P, computes π with
// ({X}, {X}) ⊩_E P : π — a set of names such that pruning any valid
// document down to π preserves the result of P (Theorem 4.5).
//
// Implementation notes:
//  - Each LStep is normalized into "micro-steps" following the encoded
//    rules of Fig. 2: Axis::Test[Cond] ≡ Axis::node / self::Test /
//    self::node[Cond]. The primitive rules then only handle the three
//    micro-step shapes.
//  - The union rule ((τ,κ) ⊩ P = ⋃ ({X},κ) ⊩ P) processes one name at a
//    time; results are memoized on (name, step index, axis override,
//    context) so chains of descendant steps stay polynomial.
//  - The descendant/ancestor rules recurse with the step's axis overridden
//    by child/parent exactly as in the figure.
//  - Materialization (the remark under Theorem 4.5): when the caller needs
//    result *subtrees* (serializing query answers), a trailing
//    descendant-or-self::node micro-step is appended, which realizes
//    τ' ∪ A_E(τ'', descendant).

#ifndef XMLPROJ_PROJECTION_PROJECTOR_INFERENCE_H_
#define XMLPROJ_PROJECTION_PROJECTOR_INFERENCE_H_

#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "projection/type_inference.h"
#include "xpath/xpathl.h"

namespace xmlproj {

class ProjectorInference {
 public:
  explicit ProjectorInference(const Dtd& dtd) : dtd_(dtd), types_(dtd) {}

  // ({X},{X}) ⊩ path : π. With `materialize_result`, subtrees of result
  // nodes are retained as well. With `start_at_document_node` the
  // judgement starts at the synthetic #document name instead of the root
  // element (for absolute paths). The returned projector never contains
  // the document name: the document node is unconditionally kept.
  Result<NameSet> InferForPath(const LPath& path, bool materialize_result,
                               bool start_at_document_node = false);

  // Projector for a workload: projectors are closed under union, so a set
  // of queries is covered by the union of their projectors (§1.2, §5).
  Result<NameSet> InferForPaths(std::span<const LPath> paths,
                                bool materialize_result,
                                bool start_at_document_node = false);

  // Restricts π to the names reachable from the root *within* π. Pruning
  // is insensitive to unreachable names (their ancestors are already
  // gone), and the result is a valid type projector per Def 2.6.
  NameSet CloseToValidProjector(const NameSet& projector) const;

  const TypeInference& types() const { return types_; }

 private:
  struct MicroStep {
    enum class Kind : uint8_t { kAxisNode, kSelfTest, kSelfCond };
    Kind kind = Kind::kAxisNode;
    Axis axis = Axis::kChild;           // kAxisNode
    TestKind test = TestKind::kNode;    // kSelfTest
    std::string tag;                    // kSelfTest
    std::vector<LPath> cond;            // kSelfCond
  };

  // Normalizes `path` into a micro-step vector stored in steps_arena_ and
  // returns its arena slot. Slots identify the vector in memo keys: the
  // same (name, slot, idx, context) always denotes the same judgement.
  size_t Normalize(const LPath& path, bool materialize_result);

  const std::vector<MicroStep>& StepsOf(size_t slot) const {
    return steps_arena_[slot];
  }

  // Per-name environment: context restricted to y and its ancestors.
  TypeEnv EnvFor(NameId y, const NameSet& context) const;

  // Σ ⊢ (micro-steps from idx, with optional axis override on steps[idx]).
  TypeEnv TypeOfSuffix(const TypeEnv& env, size_t slot, size_t idx,
                       std::optional<Axis> override_axis) const;

  // ({y}, κ) ⊩ steps[idx..] with optional override on steps[idx].
  NameSet InferFrom(NameId y, const NameSet& context, size_t slot,
                    size_t idx, std::optional<Axis> override_axis);

  // Union rule over Σ.type.
  NameSet InferMany(const TypeEnv& env, size_t slot, size_t idx,
                    std::optional<Axis> override_axis);

  // Projector of the condition paths of micro-step `idx` (kind kSelfCond)
  // evaluated from Σ.
  NameSet InferConditionPaths(const TypeEnv& env, size_t slot, size_t idx);

  struct MemoKey {
    NameId name;
    size_t slot;
    size_t idx;
    int override_axis;  // -1 = none
    NameSet context;
    bool operator==(const MemoKey& other) const {
      return name == other.name && slot == other.slot &&
             idx == other.idx && override_axis == other.override_axis &&
             context == other.context;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      size_t h = static_cast<size_t>(k.name) * 0x9e3779b97f4a7c15ull;
      h ^= k.idx + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= (k.slot + 1) * 0x2545f4914f6cdd1dull;
      h ^= static_cast<size_t>(k.override_axis + 1) * 1099511628211ull;
      h ^= k.context.Hash();
      return h;
    }
  };

  const Dtd& dtd_;
  TypeInference types_;
  // Normalized micro-step vectors for the current InferForPath invocation:
  // slot 0 is the query, further slots hold condition paths. A deque keeps
  // references stable while new slots are appended mid-recursion.
  std::deque<std::vector<MicroStep>> steps_arena_;
  // Condition-path normalization cache: LPath address -> arena slot
  // (cond vectors live in steps_arena_ MicroSteps, so addresses are
  // stable for the invocation).
  std::unordered_map<const LPath*, size_t> cond_slots_;
  std::unordered_map<MemoKey, NameSet, MemoKeyHash> memo_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_PROJECTOR_INFERENCE_H_
