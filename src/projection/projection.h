// One-call API: from XPath query text to a type projector.
//
// Pipeline (paper §1.2 "three steps"): parse the query, approximate it
// into XPath^ℓ (xpath/approximate.h), run projector inference (Fig. 2),
// union the extra root-level paths promoted from absolute predicates, and
// close the result to a valid projector. XQuery workloads go through
// xquery/path_extraction.h instead, which ends in the same inference.

#ifndef XMLPROJ_PROJECTION_PROJECTION_H_
#define XMLPROJ_PROJECTION_PROJECTION_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "xpath/ast.h"
#include "xpath/xpathl.h"

namespace xmlproj {

struct ProjectionAnalysis {
  NameSet projector;
  // The XPath^ℓ approximation of the query (diagnostics / tests).
  LPath approximated;
};

// Infers the projector for one XPath query. `materialize_result` keeps
// the subtrees of result nodes (needed when answers are serialized; see
// the remark under Theorem 4.5).
Result<ProjectionAnalysis> AnalyzeXPathQuery(const Dtd& dtd,
                                             std::string_view query_text,
                                             bool materialize_result = true);

Result<ProjectionAnalysis> AnalyzeXPath(const Dtd& dtd,
                                        const LocationPath& query,
                                        bool materialize_result = true);

// Workload projector: union over all queries (projectors are closed under
// union, so one pruned document serves the whole bunch, §1.2).
Result<NameSet> AnalyzeXPathQueries(const Dtd& dtd,
                                    std::span<const std::string> queries,
                                    bool materialize_result = true);

// Percentage [0,100] of DTD names retained by the projector (a static
// selectivity indicator used by the benchmarks).
double ProjectorSelectivity(const Dtd& dtd, const NameSet& projector);

}  // namespace xmlproj

#endif  // XMLPROJ_PROJECTION_PROJECTION_H_
