// Lightweight top-level boundary scanner for intra-document chunking.
//
// Chunked pruning splits one document at the boundaries of the root's
// children (e.g. the regions under XMark's <site>) and prunes the chunks
// concurrently. Finding those boundaries must cost far less than a full
// parse or it eats the speedup (Amdahl: the scan is the serial fraction),
// so this is a raw byte scan — quote-aware tag skipping and depth
// counting, no name interning, no attribute decoding, no handler
// callbacks.
//
// The scanner is deliberately conservative: it never reports an error.
// Any construct it cannot prove safe to split (malformed markup,
// non-whitespace text or CDATA directly under the root, a self-closing
// root, trailing garbage) yields splittable == false, and the pipeline
// falls back to the sequential pass — which then reproduces the exact
// sequential diagnostics for genuinely malformed input.

#ifndef XMLPROJ_XML_BOUNDARY_H_
#define XMLPROJ_XML_BOUNDARY_H_

#include <cstddef>
#include <string_view>
#include <vector>

namespace xmlproj {

// One complete top-level child element: input[begin, end) spans its start
// tag through its matching end tag (or the self-closing tag). `tag` views
// into the scanned buffer.
struct TopLevelChild {
  size_t begin = 0;
  size_t end = 0;
  std::string_view tag;
};

struct TopLevelBoundaries {
  // True when the document decomposes as
  //   prolog? root-start-tag (misc | child)* root-end-tag misc*
  // with only whitespace, comments, and PIs between children. When false
  // every other field is unspecified.
  bool splittable = false;
  std::string_view root_tag;
  // Span of the root's start tag, '<' through one past '>'.
  size_t root_start_begin = 0;
  size_t root_start_end = 0;
  // Offset of the '<' of the root's end tag.
  size_t root_end_begin = 0;
  std::vector<TopLevelChild> children;
};

// Scans `input` for the root element's child boundaries. Never fails; see
// TopLevelBoundaries::splittable.
TopLevelBoundaries ScanTopLevelBoundaries(std::string_view input);

}  // namespace xmlproj

#endif  // XMLPROJ_XML_BOUNDARY_H_
