// From-scratch non-validating XML parser with a streaming (SAX) interface.
//
// Supported: elements, attributes, character data, CDATA sections,
// comments, processing instructions, XML declaration, DOCTYPE with internal
// subset capture, predefined entities (&lt; &gt; &amp; &apos; &quot;) and
// numeric character references. Out of scope (as in the paper's setting):
// namespaces, external entities, custom entity declarations.

#ifndef XMLPROJ_XML_PARSER_H_
#define XMLPROJ_XML_PARSER_H_

#include <string_view>

#include "common/fault.h"
#include "common/status.h"
#include "xml/document.h"
#include "xml/sax.h"

namespace xmlproj {

struct XmlParseOptions {
  // When false (default), text nodes consisting solely of whitespace are
  // dropped. Pretty-printing whitespace would otherwise pollute element
  // content and break DTD validation of non-mixed content models.
  bool keep_whitespace_text = false;
  // Optional fault injector; arms the "xml.parse" failpoint, checked once
  // per element start tag (common/fault.h). Null — the default — costs
  // one pointer compare per element.
  FaultInjector* fault = nullptr;
  // Added to every byte offset the parser reports through the SaxLocator
  // (xml/sax.h). Set it to the slice's position when parsing [begin,end)
  // of a larger buffer so locator offsets line up with that buffer.
  size_t base_offset = 0;
};

// Streams SAX events for `input` into `handler`. Stops at the first error.
Status ParseXmlStream(std::string_view input, SaxHandler* handler,
                      const XmlParseOptions& options = {});

// Parses `input` — a forest of zero or more complete elements separated
// only by whitespace, comments, and processing instructions — as a
// standalone SAX event stream: no StartDocument/EndDocument bracketing,
// no prolog or DOCTYPE handling, and no single-root requirement. This is
// the chunked pruning pipeline's entry point for parsing a [begin,end)
// slice of a document as if the enclosing pass had just reached it (set
// options.base_offset = begin so reported offsets stay document-relative).
Status ParseXmlFragment(std::string_view input, SaxHandler* handler,
                        const XmlParseOptions& options = {});

// Parses `input` into a Document.
Result<Document> ParseXml(std::string_view input,
                          const XmlParseOptions& options = {});

// Decodes entity and character references in attribute values / text.
// Exposed for tests.
Result<std::string> DecodeXmlReferences(std::string_view text);

}  // namespace xmlproj

#endif  // XMLPROJ_XML_PARSER_H_
