#include "xml/boundary.h"

namespace xmlproj {
namespace {

// Name/space predicates mirror parser.cc so the scanner accepts exactly
// the tags the parser would.
bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Raw cursor over the buffer. Every Scan*/Skip* helper returns false for
// malformed or truncated markup; the caller translates that into
// "not splittable" rather than an error.
struct Scanner {
  std::string_view in;
  size_t pos = 0;

  bool AtEnd() const { return pos >= in.size(); }
  char Peek() const { return in[pos]; }
  bool LookingAt(std::string_view token) const {
    return in.substr(pos, token.size()) == token;
  }
  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) ++pos;
  }

  bool ScanName(std::string_view* name) {
    size_t start = pos;
    if (AtEnd() || !IsNameStartChar(Peek())) return false;
    ++pos;
    while (!AtEnd() && IsNameChar(Peek())) ++pos;
    *name = in.substr(start, pos - start);
    return true;
  }

  // pos is at "<!--".
  bool SkipComment() {
    size_t end = in.find("-->", pos + 4);
    if (end == std::string_view::npos) return false;
    pos = end + 3;
    return true;
  }

  // pos is at "<?".
  bool SkipProcessingInstruction() {
    size_t end = in.find("?>", pos + 2);
    if (end == std::string_view::npos) return false;
    pos = end + 2;
    return true;
  }

  // pos is at "<!DOCTYPE". Same bracket handling as the parser.
  bool SkipDoctype() {
    pos += 9;
    while (!AtEnd() && Peek() != '>' && Peek() != '[') ++pos;
    if (!AtEnd() && Peek() == '[') {
      size_t end = in.find(']', pos + 1);
      if (end == std::string_view::npos) return false;
      pos = end + 1;
      while (!AtEnd() && Peek() != '>') ++pos;
    }
    if (AtEnd()) return false;
    ++pos;  // '>'
    return true;
  }

  // pos is at the '<' of a start tag. Skips quoted attribute values so a
  // '>' inside a value cannot end the tag early.
  bool ScanStartTag(std::string_view* tag, bool* self_closing) {
    ++pos;  // '<'
    if (!ScanName(tag)) return false;
    while (true) {
      if (AtEnd()) return false;
      char c = Peek();
      if (c == '"' || c == '\'') {
        size_t end = in.find(c, pos + 1);
        if (end == std::string_view::npos) return false;
        pos = end + 1;
      } else if (c == '/') {
        if (pos + 1 >= in.size() || in[pos + 1] != '>') return false;
        *self_closing = true;
        pos += 2;
        return true;
      } else if (c == '>') {
        *self_closing = false;
        ++pos;
        return true;
      } else if (c == '<') {
        return false;
      } else {
        ++pos;
      }
    }
  }

  // pos is at "</".
  bool ScanEndTag(std::string_view* tag) {
    pos += 2;
    if (!ScanName(tag)) return false;
    SkipSpace();
    if (AtEnd() || Peek() != '>') return false;
    ++pos;
    return true;
  }
};

}  // namespace

TopLevelBoundaries ScanTopLevelBoundaries(std::string_view input) {
  TopLevelBoundaries out;
  Scanner s{input};

  // Prolog: XML declaration / PIs, comments, DOCTYPE.
  while (true) {
    s.SkipSpace();
    if (s.AtEnd()) return out;
    if (s.LookingAt("<!--")) {
      if (!s.SkipComment()) return out;
    } else if (s.LookingAt("<!DOCTYPE")) {
      if (!s.SkipDoctype()) return out;
    } else if (s.LookingAt("<?")) {
      if (!s.SkipProcessingInstruction()) return out;
    } else {
      break;
    }
  }

  // Root start tag.
  if (s.Peek() != '<' || s.pos + 1 >= input.size() ||
      !IsNameStartChar(input[s.pos + 1])) {
    return out;
  }
  out.root_start_begin = s.pos;
  bool self_closing = false;
  if (!s.ScanStartTag(&out.root_tag, &self_closing)) return out;
  out.root_start_end = s.pos;
  if (self_closing) return out;  // no child region to shard

  // Content scan. depth 1 == directly under the root; each 1 -> 2
  // transition opens a top-level child and 2 -> 1 closes it.
  size_t depth = 1;
  while (depth > 0) {
    if (s.AtEnd()) return out;
    char c = s.Peek();
    if (c != '<') {
      if (depth == 1) {
        // Non-whitespace text (or an entity reference) directly under the
        // root belongs to no child chunk: refuse to split. Whitespace is
        // fine — both passes drop it.
        if (!IsSpace(c)) return out;
        s.SkipSpace();
      } else {
        while (!s.AtEnd() && s.Peek() != '<') ++s.pos;
      }
      continue;
    }
    if (s.LookingAt("<!--")) {
      if (!s.SkipComment()) return out;
    } else if (s.LookingAt("<![CDATA[")) {
      if (depth == 1) return out;  // CDATA is text
      size_t end = input.find("]]>", s.pos + 9);
      if (end == std::string_view::npos) return out;
      s.pos = end + 3;
    } else if (s.LookingAt("<?")) {
      if (!s.SkipProcessingInstruction()) return out;
    } else if (s.LookingAt("</")) {
      size_t tag_begin = s.pos;
      std::string_view name;
      if (!s.ScanEndTag(&name)) return out;
      --depth;
      if (depth == 1) {
        if (out.children.empty()) return out;
        out.children.back().end = s.pos;
      } else if (depth == 0) {
        // Only the root's name is verified here; mismatches nested inside
        // a child surface as parse errors when the chunk runs.
        if (name != out.root_tag) return out;
        out.root_end_begin = tag_begin;
      }
    } else {
      if (s.pos + 1 >= input.size() || !IsNameStartChar(input[s.pos + 1])) {
        return out;
      }
      size_t tag_begin = s.pos;
      std::string_view tag;
      bool sc = false;
      if (!s.ScanStartTag(&tag, &sc)) return out;
      if (depth == 1) {
        TopLevelChild child;
        child.begin = tag_begin;
        child.tag = tag;
        if (sc) child.end = s.pos;
        out.children.push_back(child);
      }
      if (!sc) ++depth;
    }
  }

  // Trailing misc only.
  while (true) {
    s.SkipSpace();
    if (s.AtEnd()) break;
    if (s.LookingAt("<!--")) {
      if (!s.SkipComment()) return out;
    } else if (s.LookingAt("<?")) {
      if (!s.SkipProcessingInstruction()) return out;
    } else {
      return out;
    }
  }

  out.splittable = true;
  return out;
}

}  // namespace xmlproj
