#include "xml/splice.h"

#include <cstring>

#include "xml/serializer.h"

namespace xmlproj {

void SplicingSerializingHandler::Flush() {
  if (!HasPending()) return;
  size_t len = pending_end_ - pending_begin_;
  out_->append(input_.data() + pending_begin_, len);
  spliced_bytes_ += len;
  pending_begin_ = 0;
  pending_end_ = 0;
}

void SplicingSerializingHandler::AppendSpan(size_t begin, size_t end) {
  if (HasPending() && begin == pending_end_) {
    pending_end_ = end;
    return;
  }
  Flush();
  pending_begin_ = begin;
  pending_end_ = end;
}

void SplicingSerializingHandler::CloseStartTagIfOpen() {
  if (!start_tag_open_) return;
  start_tag_open_ = false;
  // A canonically spliced start tag leaves its span parked right before
  // the '>' in the input, so closing it is a one-byte span extension.
  if (HasPending() && pending_end_ < input_.size() &&
      input_[pending_end_] == '>') {
    ++pending_end_;
  } else {
    Flush();
    out_->push_back('>');
  }
}

bool SplicingSerializingHandler::CanonicalStartTag(
    std::string_view tag, const std::vector<SaxAttribute>& attributes,
    size_t* content_end) const {
  if (locator_ == nullptr) return false;
  size_t begin = locator_->event_begin();
  size_t end = locator_->event_end();
  if (end > input_.size() || end <= begin) return false;
  const char* raw = input_.data();
  // The parser's tag/attribute views alias the input buffer, so "does the
  // raw byte at this offset equal the token" collapses to pointer
  // identity — one compare instead of a memcmp, and it simultaneously
  // rejects producers without buffer-backed views (DOM replay) and
  // values the parser had to decode (entity references, which XmlWriter
  // would re-escape differently than the raw bytes).
  if (tag.data() != raw + begin + 1) return false;
  size_t pos = begin + 1 + tag.size();
  for (const SaxAttribute& a : attributes) {
    // XmlWriter emits exactly: ' ' name '="' value '"'.
    if (pos >= end || raw[pos] != ' ') return false;
    ++pos;
    if (a.name.data() != raw + pos) return false;
    pos += a.name.size();
    if (pos + 1 >= end || raw[pos] != '=' || raw[pos + 1] != '"') return false;
    pos += 2;
    if (a.value.data() != raw + pos) return false;
    // A raw '>' in a value parses fine but XmlWriter escapes it.
    if (memchr(a.value.data(), '>', a.value.size()) != nullptr) return false;
    pos += a.value.size();
    if (pos >= end || raw[pos] != '"') return false;
    ++pos;
  }
  if (pos + 1 == end && raw[pos] == '>') {
    *content_end = pos;
    return true;
  }
  if (pos + 2 == end && raw[pos] == '/' && raw[pos + 1] == '>') {
    *content_end = pos;
    return true;
  }
  return false;
}

Status SplicingSerializingHandler::StartElement(
    std::string_view tag, const std::vector<SaxAttribute>& attributes) {
  CloseStartTagIfOpen();
  size_t content_end = 0;
  if (CanonicalStartTag(tag, attributes, &content_end)) {
    AppendSpan(locator_->event_begin(), content_end);
  } else {
    ++fallback_events_;
    Flush();
    out_->push_back('<');
    out_->append(tag);
    for (const SaxAttribute& a : attributes) {
      out_->push_back(' ');
      out_->append(a.name);
      out_->append("=\"");
      AppendEscaped(a.value, /*for_attribute=*/true, out_);
      out_->push_back('"');
    }
  }
  start_tag_open_ = true;
  return Status::Ok();
}

Status SplicingSerializingHandler::EndElement(std::string_view tag) {
  if (start_tag_open_) {
    start_tag_open_ = false;
    // Self-closing input parked its span at the '/' of "/>"; anything
    // else (childless `<a></a>`, fallback start) gets the writer's "/>".
    if (HasPending() && pending_end_ + 2 <= input_.size() &&
        input_[pending_end_] == '/' && input_[pending_end_ + 1] == '>') {
      pending_end_ += 2;
    } else {
      Flush();
      out_->append("/>");
    }
    return Status::Ok();
  }
  size_t begin = locator_ != nullptr ? locator_->event_begin() : 0;
  size_t end = locator_ != nullptr ? locator_->event_end() : 0;
  // Canonical iff exactly "</tag>" — the length check rejects end-tag
  // whitespace ("</a >"), which the parser accepts but XmlWriter never
  // emits.
  if (locator_ != nullptr && end <= input_.size() &&
      end - begin == tag.size() + 3 && input_[begin] == '<' &&
      input_[begin + 1] == '/') {
    AppendSpan(begin, end);
  } else {
    ++fallback_events_;
    Flush();
    out_->append("</");
    out_->append(tag);
    out_->push_back('>');
  }
  return Status::Ok();
}

Status SplicingSerializingHandler::Characters(std::string_view text) {
  CloseStartTagIfOpen();
  size_t begin = locator_ != nullptr ? locator_->event_begin() : 0;
  size_t end = locator_ != nullptr ? locator_->event_end() : 0;
  // A single undecoded text run aliases the input exactly; it can hold
  // no '<' or '&' (runs end there), so only a raw '>' — which XmlWriter
  // escapes — forces fallback. Multi-piece or decoded text (references,
  // CDATA) fails the pointer check and is re-escaped by the writer path.
  if (locator_ != nullptr && end <= input_.size() &&
      text.data() == input_.data() + begin && text.size() == end - begin &&
      memchr(text.data(), '>', text.size()) == nullptr) {
    AppendSpan(begin, end);
  } else {
    ++fallback_events_;
    Flush();
    AppendEscaped(text, /*for_attribute=*/false, out_);
  }
  return Status::Ok();
}

}  // namespace xmlproj
