// XML output: Document -> text, and a streaming writer used by the XMark
// generator and the streaming pruner to produce documents without
// materializing a DOM.

#ifndef XMLPROJ_XML_SERIALIZER_H_
#define XMLPROJ_XML_SERIALIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "xml/document.h"
#include "xml/sax.h"

namespace xmlproj {

// Escapes '<', '>', '&' (and quotes when `for_attribute`) for XML output.
void AppendEscaped(std::string_view text, bool for_attribute,
                   std::string* out);

// Streaming XML writer. Produces compact (no indentation) well-formed XML.
class XmlWriter {
 public:
  // Output is appended to *out, which must outlive the writer.
  explicit XmlWriter(std::string* out) : out_(out) {}

  void StartElement(std::string_view tag);
  void Attribute(std::string_view name, std::string_view value);
  void Text(std::string_view text);
  void EndElement();
  // Appends pre-serialized markup verbatim, closing a pending start tag
  // first so `<a` + Raw("<b/>") yields `<a><b/>` and not `<a<b/>`. Used by
  // the chunked pipeline to stitch per-chunk buffers without re-escaping.
  void Raw(std::string_view markup);

  size_t open_depth() const { return open_tags_.size(); }

 private:
  void CloseStartTagIfOpen();

  std::string* out_;
  std::vector<std::string> open_tags_;
  bool start_tag_open_ = false;
};

// Serializes the document (without XML declaration or DOCTYPE).
std::string SerializeDocument(const Document& doc);

// Serializes the subtree rooted at `id`.
std::string SerializeSubtree(const Document& doc, NodeId id);

// A SaxHandler that writes the event stream as XML text.
class SerializingHandler : public SaxHandler {
 public:
  explicit SerializingHandler(std::string* out) : writer_(out) {}

  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    writer_.StartElement(tag);
    for (const SaxAttribute& a : attributes) {
      writer_.Attribute(a.name, a.value);
    }
    return Status::Ok();
  }
  Status EndElement(std::string_view) override {
    writer_.EndElement();
    return Status::Ok();
  }
  Status Characters(std::string_view text) override {
    writer_.Text(text);
    return Status::Ok();
  }

 private:
  XmlWriter writer_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_XML_SERIALIZER_H_
