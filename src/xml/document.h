// In-memory XML data model (paper §2.1).
//
// A Document is an arena of nodes stored in *pre-order*: node ids are
// indices into the arena and therefore (a) stable identifiers in the sense
// of Def. 2.2 ("good formation": each id occurs once), and (b) ordered by
// document order, which makes document-order sorting and the
// following/preceding axes integer-range operations.
//
// Node 0 is a synthetic document node that owns the root element, matching
// the XPath data model (absolute paths start there). Element and text nodes
// below it are exactly the paper's trees: l_i[f] and s_i.
//
// Attributes are stored inline on their element. The paper treats the
// attribute extension as straightforward; keeping attributes with their
// element is the sound variant we implement (a kept element keeps its
// attributes, a pruned element loses them with the subtree).

#ifndef XMLPROJ_XML_DOCUMENT_H_
#define XMLPROJ_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace xmlproj {

using NodeId = uint32_t;
inline constexpr NodeId kNullNode = 0xffffffffu;

// Interned element/attribute name. -1 means "no tag" (text/document nodes).
using TagId = int32_t;
inline constexpr TagId kNoTag = -1;

enum class NodeKind : uint8_t {
  kDocument,  // synthetic root owning the document element
  kElement,
  kText,
};

struct Attribute {
  TagId name = kNoTag;
  std::string value;
};

struct Node {
  NodeKind kind = NodeKind::kElement;
  TagId tag = kNoTag;       // element tag (kElement only)
  NodeId parent = kNullNode;
  NodeId first_child = kNullNode;
  NodeId last_child = kNullNode;
  NodeId next_sibling = kNullNode;
  NodeId prev_sibling = kNullNode;
  // One past the last node of this subtree in pre-order. Descendants of
  // node i are exactly the ids in (i, subtree_end).
  NodeId subtree_end = kNullNode;
  // Index into Document texts (kText only).
  uint32_t text_index = 0;
  // [attr_begin, attr_end) into Document attributes (kElement only).
  uint32_t attr_begin = 0;
  uint32_t attr_end = 0;
};

// Interns tag/attribute names to dense integer ids.
class SymbolTable {
 public:
  TagId Intern(std::string_view name);
  // Returns kNoTag when the name was never interned.
  TagId Lookup(std::string_view name) const;
  const std::string& NameOf(TagId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> index_;
};

class Document {
 public:
  Document();

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  // --- Structure access -----------------------------------------------
  size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  NodeId document_node() const { return 0; }
  // Root element (first element child of the document node), or kNullNode
  // for an empty document.
  NodeId root() const;

  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  TagId tag(NodeId id) const { return nodes_[id].tag; }
  const std::string& tag_name(NodeId id) const {
    return symbols_.NameOf(nodes_[id].tag);
  }
  const std::string& text(NodeId id) const {
    return texts_[nodes_[id].text_index];
  }

  // Attributes of an element, in document order.
  uint32_t attr_count(NodeId id) const {
    return nodes_[id].attr_end - nodes_[id].attr_begin;
  }
  const Attribute& attr(NodeId id, uint32_t k) const {
    return attributes_[nodes_[id].attr_begin + k];
  }
  // Value of the named attribute, or nullptr if absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  const SymbolTable& symbols() const { return symbols_; }
  SymbolTable& symbols() { return symbols_; }

  // Number of element + text nodes (excludes the document node).
  size_t content_node_count() const { return nodes_.size() - 1; }

  // Total bytes held by the arena: node records, text payloads, attribute
  // payloads, symbol table. This is the document-side "memory usage"
  // metric reported by the benchmarks (Fig. 5 proxy).
  size_t MemoryBytes() const;

  // String value of a node per XPath: concatenation of all descendant
  // text nodes (identity for text nodes).
  std::string StringValue(NodeId id) const;

  // DOCTYPE information captured by the parser, if any.
  const std::string& doctype_name() const { return doctype_name_; }
  const std::string& doctype_internal_subset() const {
    return doctype_internal_subset_;
  }
  void set_doctype(std::string name, std::string internal_subset) {
    doctype_name_ = std::move(name);
    doctype_internal_subset_ = std::move(internal_subset);
  }

 private:
  friend class DocumentBuilder;

  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  std::vector<Attribute> attributes_;
  SymbolTable symbols_;
  std::string doctype_name_;
  std::string doctype_internal_subset_;
};

// Incremental pre-order construction of a Document. Used by the XML parser,
// the XMark generator, and the pruner.
class DocumentBuilder {
 public:
  DocumentBuilder();

  // Starts an element as the next child of the current open node.
  NodeId StartElement(std::string_view tag);
  // Adds an attribute to the most recently started element. Must be called
  // before any child content is added.
  void AddAttribute(std::string_view name, std::string_view value);
  // Adds a text node as the next child of the current open node.
  NodeId AddText(std::string_view text);
  void EndElement();

  void SetDoctype(std::string name, std::string internal_subset);

  // Finishes construction. All elements must be closed. The builder must
  // not be reused afterwards.
  Result<Document> Finish();

  // Depth of currently open elements (document node excluded).
  size_t open_depth() const { return stack_.size() - 1; }

 private:
  NodeId Append(NodeKind kind);

  Document doc_;
  std::vector<NodeId> stack_;  // open nodes; stack_[0] is the document node
};

}  // namespace xmlproj

#endif  // XMLPROJ_XML_DOCUMENT_H_
