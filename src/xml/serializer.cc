#include "xml/serializer.h"

#include <cassert>

namespace xmlproj {

void AppendEscaped(std::string_view text, bool for_attribute,
                   std::string* out) {
  for (char c : text) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        if (for_attribute) {
          out->append("&quot;");
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void XmlWriter::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    out_->push_back('>');
    start_tag_open_ = false;
  }
}

void XmlWriter::StartElement(std::string_view tag) {
  CloseStartTagIfOpen();
  out_->push_back('<');
  out_->append(tag);
  open_tags_.emplace_back(tag);
  start_tag_open_ = true;
}

void XmlWriter::Attribute(std::string_view name, std::string_view value) {
  assert(start_tag_open_);
  out_->push_back(' ');
  out_->append(name);
  out_->append("=\"");
  AppendEscaped(value, /*for_attribute=*/true, out_);
  out_->push_back('"');
}

void XmlWriter::Text(std::string_view text) {
  CloseStartTagIfOpen();
  AppendEscaped(text, /*for_attribute=*/false, out_);
}

void XmlWriter::Raw(std::string_view markup) {
  if (markup.empty()) return;
  CloseStartTagIfOpen();
  out_->append(markup);
}

void XmlWriter::EndElement() {
  assert(!open_tags_.empty());
  if (start_tag_open_) {
    out_->append("/>");
    start_tag_open_ = false;
  } else {
    out_->append("</");
    out_->append(open_tags_.back());
    out_->push_back('>');
  }
  open_tags_.pop_back();
}

namespace {

void SerializeNode(const Document& doc, NodeId id, XmlWriter* writer) {
  const Node& n = doc.node(id);
  switch (n.kind) {
    case NodeKind::kDocument:
      for (NodeId c = n.first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        SerializeNode(doc, c, writer);
      }
      break;
    case NodeKind::kText:
      writer->Text(doc.text(id));
      break;
    case NodeKind::kElement: {
      writer->StartElement(doc.tag_name(id));
      for (uint32_t k = 0; k < doc.attr_count(id); ++k) {
        const Attribute& a = doc.attr(id, k);
        writer->Attribute(doc.symbols().NameOf(a.name), a.value);
      }
      for (NodeId c = n.first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        SerializeNode(doc, c, writer);
      }
      writer->EndElement();
      break;
    }
  }
}

}  // namespace

std::string SerializeDocument(const Document& doc) {
  std::string out;
  XmlWriter writer(&out);
  SerializeNode(doc, doc.document_node(), &writer);
  return out;
}

std::string SerializeSubtree(const Document& doc, NodeId id) {
  std::string out;
  XmlWriter writer(&out);
  SerializeNode(doc, id, &writer);
  return out;
}

Status ReplayAsSax(const Document& doc, SaxHandler* handler) {
  XMLPROJ_RETURN_IF_ERROR(handler->StartDocument());
  if (!doc.doctype_name().empty()) {
    XMLPROJ_RETURN_IF_ERROR(handler->Doctype(
        doc.doctype_name(), doc.doctype_internal_subset()));
  }
  // Iterative pre-order traversal emitting start/end events; recursion
  // would overflow the stack on deep documents.
  std::vector<NodeId> end_stack;
  std::vector<std::string_view> tag_stack;
  NodeId total = static_cast<NodeId>(doc.size());
  std::vector<SaxAttribute> attributes;
  for (NodeId id = 1; id < total; ++id) {
    while (!end_stack.empty() && id >= end_stack.back()) {
      XMLPROJ_RETURN_IF_ERROR(handler->EndElement(tag_stack.back()));
      end_stack.pop_back();
      tag_stack.pop_back();
    }
    const Node& n = doc.node(id);
    if (n.kind == NodeKind::kText) {
      XMLPROJ_RETURN_IF_ERROR(handler->Characters(doc.text(id)));
    } else {
      attributes.clear();
      for (uint32_t k = 0; k < doc.attr_count(id); ++k) {
        const Attribute& a = doc.attr(id, k);
        attributes.push_back(
            SaxAttribute{doc.symbols().NameOf(a.name), a.value});
      }
      XMLPROJ_RETURN_IF_ERROR(handler->StartElement(doc.tag_name(id),
                                                    attributes));
      end_stack.push_back(n.subtree_end);
      tag_stack.push_back(doc.tag_name(id));
    }
  }
  while (!end_stack.empty()) {
    XMLPROJ_RETURN_IF_ERROR(handler->EndElement(tag_stack.back()));
    end_stack.pop_back();
    tag_stack.pop_back();
  }
  return handler->EndDocument();
}

}  // namespace xmlproj
