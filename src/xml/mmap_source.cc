#include "xml/mmap_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xmlproj {

namespace {

Status Errno(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

// Reads fd to EOF into *out. Used for pipes, ttys, devices, and any
// descriptor mmap refuses.
Status ReadAll(int fd, std::string* out) {
  char buf[1 << 16];
  while (true) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) return Status::Ok();
    out->append(buf, static_cast<size_t>(n));
  }
}

}  // namespace

MmapSource& MmapSource::operator=(MmapSource&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  owned_ = std::move(other.owned_);
  map_len_ = other.map_len_;
  size_ = other.size_;
  // The moved-from string's buffer may differ from other.data_ after the
  // move (SSO), so re-derive the pointer for the fallback case.
  data_ = map_len_ != 0 ? other.data_ : owned_.data();
  other.data_ = "";
  other.size_ = 0;
  other.map_len_ = 0;
  return *this;
}

void MmapSource::Reset() {
  if (map_len_ != 0) {
    munmap(const_cast<char*>(data_), map_len_);
  }
  data_ = "";
  size_ = 0;
  map_len_ = 0;
  owned_.clear();
}

Result<MmapSource> MmapSource::OpenFile(const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open " + path);
  Result<MmapSource> source = FromFd(fd);
  close(fd);
  return source;
}

Result<MmapSource> MmapSource::FromFd(int fd) {
  struct stat st;
  if (fstat(fd, &st) != 0) return Errno("fstat");
  MmapSource source;
  if (!S_ISREG(st.st_mode)) {
    // Pipes, ttys, sockets, devices: not mappable, size meaningless.
    XMLPROJ_RETURN_IF_ERROR(ReadAll(fd, &source.owned_));
    source.data_ = source.owned_.data();
    source.size_ = source.owned_.size();
    return source;
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) return source;  // mmap(len=0) is EINVAL; empty view
  void* map = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    // Regular file on a filesystem without mmap support: fall back.
    XMLPROJ_RETURN_IF_ERROR(ReadAll(fd, &source.owned_));
    source.data_ = source.owned_.data();
    source.size_ = source.owned_.size();
    return source;
  }
  // One sequential pass is the expected access pattern; the tail bytes
  // past the last page boundary are zero-filled by the kernel and never
  // exposed (view() is exactly [0, size)).
  madvise(map, size, MADV_SEQUENTIAL);
  source.data_ = static_cast<const char*>(map);
  source.size_ = size;
  source.map_len_ = size;
  return source;
}

Result<MmapSource> MmapSource::FromStdin() {
  MmapSource source;
  XMLPROJ_RETURN_IF_ERROR(ReadAll(STDIN_FILENO, &source.owned_));
  source.data_ = source.owned_.data();
  source.size_ = source.owned_.size();
  return source;
}

}  // namespace xmlproj
