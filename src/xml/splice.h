// Span-splicing serializer: the zero-copy output half of the pruning hot
// path.
//
// Type projection only ever *drops whole subtrees*; every event that
// survives is forwarded verbatim. So instead of re-emitting each event
// through XmlWriter (per-tag appends, per-byte escaping), the sink can
// copy the kept byte ranges of the *input* — the SaxLocator span of every
// kept event — straight into the output, one memcpy per contiguous kept
// region. This is what distinguishes type projectors from path
// projectors: a path projector may keep an element but drop some of its
// attributes or rewrite its context, so its output is not a subsequence
// of input spans; a chain-closed NameSet projector's output is.
//
// The sink stays byte-identical to SerializingHandler by checking, per
// event, that the raw span is exactly what XmlWriter would emit
// (canonical form: double-quoted attributes, no entity references, no
// CDATA, no end-tag whitespace) and falling back to writer-style
// emission for the rare non-canonical event. XmlWriter's lazy start-tag
// close (`<a></a>` serializes as `<a/>`) is mirrored by deferring the
// start tag's '>' and absorbing it from the input when the next kept
// event is contiguous.

#ifndef XMLPROJ_XML_SPLICE_H_
#define XMLPROJ_XML_SPLICE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/sax.h"

namespace xmlproj {

class SplicingSerializingHandler : public SaxHandler {
 public:
  // `input` is the buffer the SAX events were parsed from; locator spans
  // index into it (for chunked parses, pass the *whole* document and
  // parse fragments with base_offset so spans are document-relative).
  // Output is appended to *out. Both must outlive the handler.
  SplicingSerializingHandler(std::string_view input, std::string* out)
      : input_(input), out_(out) {}

  void SetLocator(const SaxLocator* locator) override { locator_ = locator; }

  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override;
  Status EndElement(std::string_view tag) override;
  Status Characters(std::string_view text) override;
  Status EndDocument() override {
    Finish();
    return Status::Ok();
  }

  // Flushes the deferred span into the output. Idempotent; EndDocument
  // calls it, but fragment parses (no EndDocument) must call it
  // explicitly after the parse returns.
  void Finish() { Flush(); }

  // Bytes this sink has committed to producing: flushed output plus the
  // deferred span. Budget guards meter this instead of out->size() so
  // splice deferral cannot hide output growth from the byte cap; it is
  // invariant under Flush().
  size_t produced_bytes() const {
    return out_->size() + (pending_end_ - pending_begin_);
  }

  // Diagnostics: bytes copied via span splices vs. events that needed
  // writer-style fallback emission.
  size_t spliced_bytes() const {
    return spliced_bytes_ + (pending_end_ - pending_begin_);
  }
  size_t fallback_events() const { return fallback_events_; }

 private:
  bool HasPending() const { return pending_end_ > pending_begin_; }
  void Flush();
  // Extends the deferred span when [begin,end) is contiguous with it;
  // otherwise flushes and starts a new one.
  void AppendSpan(size_t begin, size_t end);
  // Mirrors XmlWriter: emit (or absorb from the input) the '>' of a
  // still-open start tag.
  void CloseStartTagIfOpen();
  // True when the raw bytes behind the current StartElement are exactly
  // XmlWriter's emission; *content_end gets the offset of the closing
  // '>' or "/>", which stays deferred.
  bool CanonicalStartTag(std::string_view tag,
                         const std::vector<SaxAttribute>& attributes,
                         size_t* content_end) const;

  std::string_view input_;
  std::string* out_;
  const SaxLocator* locator_ = nullptr;
  size_t pending_begin_ = 0;
  size_t pending_end_ = 0;
  bool start_tag_open_ = false;
  size_t spliced_bytes_ = 0;
  size_t fallback_events_ = 0;
};

}  // namespace xmlproj

#endif  // XMLPROJ_XML_SPLICE_H_
