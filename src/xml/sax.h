// Streaming (SAX-style) event interface.
//
// The paper's pruner is "a single bufferless one-pass traversal of the
// parsed document": it is implemented as a SaxHandler that forwards or
// drops events (projection/pruner.h). Both the XML parser and a DOM
// replayer produce these events, so pruning can run during parsing (no
// overhead, §1.2) or over an already-loaded document.

#ifndef XMLPROJ_XML_SAX_H_
#define XMLPROJ_XML_SAX_H_

#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/document.h"

namespace xmlproj {

struct SaxAttribute {
  std::string_view name;
  std::string_view value;
};

// Byte-offset locator. An event producer that knows where its events come
// from (the XML parser) hands one of these to the handler via
// SaxHandler::SetLocator before the first event; during each event
// callback the locator reports the byte span of the markup that produced
// the event. Handlers that never call it pay nothing; producers without
// positions (ReplayAsSax) simply never install one.
class SaxLocator {
 public:
  virtual ~SaxLocator() = default;

  // Offset of the first byte of the markup behind the current event: the
  // '<' of a start/end tag, the first byte of a text run. Offsets are
  // relative to the buffer the caller handed in, rebased by
  // XmlParseOptions::base_offset when parsing a slice of a larger buffer.
  virtual size_t event_begin() const = 0;
  // One past the last byte of that markup.
  virtual size_t event_end() const = 0;
};

class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  // Called (at most once, before StartDocument / the first event) by
  // producers that can report byte offsets. `locator` stays valid for the
  // duration of the event stream. Default: ignore it.
  virtual void SetLocator(const SaxLocator* locator) { (void)locator; }

  virtual Status StartDocument() { return Status::Ok(); }
  virtual Status EndDocument() { return Status::Ok(); }
  virtual Status StartElement(std::string_view tag,
                              const std::vector<SaxAttribute>& attributes) = 0;
  virtual Status EndElement(std::string_view tag) = 0;
  virtual Status Characters(std::string_view text) = 0;
  // DOCTYPE declaration, if present. `internal_subset` is the raw text
  // between '[' and ']' (empty if none).
  virtual Status Doctype(std::string_view name,
                         std::string_view internal_subset) {
    (void)name;
    (void)internal_subset;
    return Status::Ok();
  }
};

// A SaxHandler that materializes the event stream into a Document.
class DomBuilderHandler : public SaxHandler {
 public:
  Status StartElement(std::string_view tag,
                      const std::vector<SaxAttribute>& attributes) override {
    builder_.StartElement(tag);
    for (const SaxAttribute& a : attributes) {
      builder_.AddAttribute(a.name, a.value);
    }
    return Status::Ok();
  }
  Status EndElement(std::string_view) override {
    builder_.EndElement();
    return Status::Ok();
  }
  Status Characters(std::string_view text) override {
    builder_.AddText(text);
    return Status::Ok();
  }
  Status Doctype(std::string_view name,
                 std::string_view internal_subset) override {
    builder_.SetDoctype(std::string(name), std::string(internal_subset));
    return Status::Ok();
  }

  Result<Document> TakeDocument() { return builder_.Finish(); }

 private:
  DocumentBuilder builder_;
};

// Replays a Document subtree as SAX events (document node excluded).
Status ReplayAsSax(const Document& doc, SaxHandler* handler);

}  // namespace xmlproj

#endif  // XMLPROJ_XML_SAX_H_
