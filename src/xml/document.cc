#include "xml/document.h"

#include <cassert>

namespace xmlproj {

TagId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

TagId SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNoTag : it->second;
}

size_t SymbolTable::MemoryBytes() const {
  size_t bytes = names_.capacity() * sizeof(std::string);
  for (const std::string& s : names_) bytes += s.capacity();
  // Rough per-entry hash map cost.
  bytes += index_.size() * (sizeof(std::string) + sizeof(TagId) + 16);
  return bytes;
}

Document::Document() {
  Node doc_node;
  doc_node.kind = NodeKind::kDocument;
  nodes_.push_back(doc_node);
}

NodeId Document::root() const {
  for (NodeId child = nodes_[0].first_child; child != kNullNode;
       child = nodes_[child].next_sibling) {
    if (nodes_[child].kind == NodeKind::kElement) return child;
  }
  return kNullNode;
}

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view name) const {
  TagId sym = symbols_.Lookup(name);
  if (sym == kNoTag) return nullptr;
  const Node& n = nodes_[id];
  for (uint32_t k = n.attr_begin; k < n.attr_end; ++k) {
    if (attributes_[k].name == sym) return &attributes_[k].value;
  }
  return nullptr;
}

size_t Document::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  bytes += texts_.capacity() * sizeof(std::string);
  for (const std::string& s : texts_) bytes += s.capacity();
  bytes += attributes_.capacity() * sizeof(Attribute);
  for (const Attribute& a : attributes_) bytes += a.value.capacity();
  bytes += symbols_.MemoryBytes();
  return bytes;
}

std::string Document::StringValue(NodeId id) const {
  if (nodes_[id].kind == NodeKind::kText) return text(id);
  std::string out;
  NodeId end = nodes_[id].subtree_end;
  for (NodeId i = id + 1; i < end; ++i) {
    if (nodes_[i].kind == NodeKind::kText) out += text(i);
  }
  return out;
}

DocumentBuilder::DocumentBuilder() { stack_.push_back(0); }

NodeId DocumentBuilder::Append(NodeKind kind) {
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  Node n;
  n.kind = kind;
  n.parent = stack_.back();
  Node& parent = doc_.nodes_[stack_.back()];
  if (parent.last_child == kNullNode) {
    parent.first_child = id;
  } else {
    doc_.nodes_[parent.last_child].next_sibling = id;
    n.prev_sibling = parent.last_child;
  }
  parent.last_child = id;
  doc_.nodes_.push_back(n);
  return id;
}

NodeId DocumentBuilder::StartElement(std::string_view tag) {
  NodeId id = Append(NodeKind::kElement);
  Node& n = doc_.nodes_[id];
  n.tag = doc_.symbols_.Intern(tag);
  n.attr_begin = n.attr_end = static_cast<uint32_t>(doc_.attributes_.size());
  stack_.push_back(id);
  return id;
}

void DocumentBuilder::AddAttribute(std::string_view name,
                                   std::string_view value) {
  assert(stack_.size() > 1);
  Node& n = doc_.nodes_[stack_.back()];
  // Attributes are contiguous per element; they must be added before any
  // child content so the [attr_begin, attr_end) range stays valid.
  assert(n.attr_end == doc_.attributes_.size());
  Attribute attr;
  attr.name = doc_.symbols_.Intern(name);
  attr.value = std::string(value);
  doc_.attributes_.push_back(std::move(attr));
  n.attr_end = static_cast<uint32_t>(doc_.attributes_.size());
}

NodeId DocumentBuilder::AddText(std::string_view text) {
  NodeId id = Append(NodeKind::kText);
  doc_.nodes_[id].text_index = static_cast<uint32_t>(doc_.texts_.size());
  doc_.nodes_[id].subtree_end = id + 1;
  doc_.texts_.emplace_back(text);
  return id;
}

void DocumentBuilder::EndElement() {
  assert(stack_.size() > 1);
  NodeId id = stack_.back();
  stack_.pop_back();
  doc_.nodes_[id].subtree_end = static_cast<NodeId>(doc_.nodes_.size());
}

void DocumentBuilder::SetDoctype(std::string name,
                                 std::string internal_subset) {
  doc_.set_doctype(std::move(name), std::move(internal_subset));
}

Result<Document> DocumentBuilder::Finish() {
  if (stack_.size() != 1) {
    return InvalidError("DocumentBuilder::Finish with unclosed elements");
  }
  doc_.nodes_[0].subtree_end = static_cast<NodeId>(doc_.nodes_.size());
  return std::move(doc_);
}

}  // namespace xmlproj
