// Zero-copy input source. Maps a regular file into memory so the
// parser's string_view tokens — and the pruner's spliced output spans —
// point straight at the page cache, with no intermediate copy of the
// document. Inputs that cannot be mapped (pipes, stdin, character
// devices) fall back to a read loop into an owned buffer behind the
// same view() interface, so callers never branch on the source kind.

#ifndef XMLPROJ_XML_MMAP_SOURCE_H_
#define XMLPROJ_XML_MMAP_SOURCE_H_

#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace xmlproj {

class MmapSource {
 public:
  MmapSource() = default;
  ~MmapSource() { Reset(); }

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;
  MmapSource(MmapSource&& other) noexcept { *this = std::move(other); }
  MmapSource& operator=(MmapSource&& other) noexcept;

  // Maps `path` read-only. Empty files yield an empty view (mmap of
  // length 0 is an error, so no mapping is created). Non-regular files
  // (FIFOs, devices) are read into an owned buffer instead.
  static Result<MmapSource> OpenFile(const std::string& path);

  // Same, over an already-open descriptor. Takes ownership of nothing:
  // the fd may be closed by the caller once this returns (a mapping
  // outlives its descriptor). Non-seekable descriptors (pipes, stdin)
  // use the read-loop fallback.
  static Result<MmapSource> FromFd(int fd);

  // Reads standard input to EOF (never mapped: stdin is usually a pipe
  // or tty, and even when redirected from a file the fallback is cheap
  // and always correct).
  static Result<MmapSource> FromStdin();

  // The document bytes: exactly [0, file size), regardless of page
  // alignment of the tail. Valid until destruction or reassignment.
  std::string_view view() const { return {data_, size_}; }

  // True when view() points at a mapping rather than an owned copy.
  bool mapped() const { return map_len_ != 0; }

 private:
  void Reset();

  const char* data_ = "";
  size_t size_ = 0;
  size_t map_len_ = 0;  // bytes passed to munmap; 0 when not mapped
  std::string owned_;   // fallback storage
};

}  // namespace xmlproj

#endif  // XMLPROJ_XML_MMAP_SOURCE_H_
