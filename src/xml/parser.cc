#include "xml/parser.h"

#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"

namespace xmlproj {
namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

class Parser {
 public:
  Parser(std::string_view input, SaxHandler* handler,
         const XmlParseOptions& options, bool fragment = false)
      : input_(input),
        handler_(handler),
        options_(options),
        fragment_(fragment) {}

  Status Run();

 private:
  // Byte spans handed to the handler through SaxHandler::SetLocator.
  struct Locator : SaxLocator {
    size_t begin = 0;
    size_t end = 0;
    size_t event_begin() const override { return begin; }
    size_t event_end() const override { return end; }
  };

  // Publishes the current event's [begin,end) span (input_-relative;
  // rebased onto the caller's buffer by base_offset).
  void SetSpan(size_t begin, size_t end) {
    locator_.begin = options_.base_offset + begin;
    locator_.end = options_.base_offset + end;
  }
  Status Error(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') ++line;
    }
    return ParseError(StringPrintf("line %zu: %s", line, message.c_str()));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }
  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) ++pos_;
  }

  Status ParseProlog();
  Status RunFragment();
  Status ParseDoctype();
  // Parses the element starting at pos_ and all of its content,
  // iteratively (no recursion: document depth must not bound the stack).
  Status ParseTree();
  // Parses one start tag, emitting StartElement. Sets *closed when the
  // element was self-closing (EndElement already emitted).
  Status ParseStartTag(bool* closed);
  Status ParseName(std::string_view* name);
  Status ParseAttributes();
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status AppendReference(std::string* out);
  // Adds one piece of character data. A piece that arrives while nothing
  // is pending stays a zero-copy view into input_; a second piece (or a
  // reference) forces materialization into pending_text_.
  void AddTextPiece(std::string_view piece, size_t begin_offset);
  // Materializes pending_view_ into pending_text_ (before appending a
  // decoded reference, which must write into an owned buffer).
  void MaterializePendingText() {
    if (!pending_view_.empty()) {
      pending_text_.assign(pending_view_);
      pending_view_ = {};
    }
  }
  Status FlushText();

  std::string_view input_;
  SaxHandler* handler_;
  XmlParseOptions options_;
  const bool fragment_;
  Locator locator_;
  size_t pos_ = 0;
  // Pending character data: at most one of these is non-empty. The common
  // case (one uninterrupted run, no references, no CDATA) never copies.
  std::string_view pending_view_;
  std::string pending_text_;
  bool pending_text_nonempty_ = false;
  size_t pending_text_begin_ = 0;  // offset of the first pending byte
  std::vector<std::string_view> open_tags_;
  // Per-start-tag scratch, reused across elements so the hot loop does
  // not allocate. Attribute values are views into input_ unless they
  // contained references; decoded values live in attr_storage_ and are
  // re-pointed after the tag is fully parsed (the vector may grow).
  std::vector<SaxAttribute> attributes_;
  std::vector<std::string> attr_storage_;
  size_t attr_storage_used_ = 0;
  struct DecodedValue {
    uint32_t attr_index;
    uint32_t storage_index;
  };
  std::vector<DecodedValue> decoded_values_;
};

Status Parser::ParseName(std::string_view* name) {
  size_t start = pos_;
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Error("expected a name");
  }
  ++pos_;
  while (!AtEnd() && IsNameChar(Peek())) ++pos_;
  *name = input_.substr(start, pos_ - start);
  return Status::Ok();
}

Status Parser::AppendReference(std::string* out) {
  // pos_ is at '&'.
  size_t end = input_.find(';', pos_);
  if (end == std::string_view::npos || end - pos_ > 12) {
    return Error("unterminated entity reference");
  }
  std::string_view body = input_.substr(pos_ + 1, end - pos_ - 1);
  pos_ = end + 1;
  if (body == "lt") {
    out->push_back('<');
  } else if (body == "gt") {
    out->push_back('>');
  } else if (body == "amp") {
    out->push_back('&');
  } else if (body == "apos") {
    out->push_back('\'');
  } else if (body == "quot") {
    out->push_back('"');
  } else if (!body.empty() && body[0] == '#') {
    uint32_t cp = 0;
    bool ok = body.size() > 1;
    if (body.size() > 2 && (body[1] == 'x' || body[1] == 'X')) {
      for (size_t i = 2; i < body.size() && ok; ++i) {
        char c = body[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          ok = false;
          break;
        }
        cp = cp * 16 + digit;
      }
    } else {
      for (size_t i = 1; i < body.size() && ok; ++i) {
        if (body[i] < '0' || body[i] > '9') {
          ok = false;
          break;
        }
        cp = cp * 10 + static_cast<uint32_t>(body[i] - '0');
      }
    }
    if (!ok || cp == 0 || cp > 0x10ffff) {
      return Error("malformed character reference");
    }
    AppendUtf8(cp, out);
  } else {
    return Error("unknown entity '&" + std::string(body) + ";'");
  }
  return Status::Ok();
}

void Parser::AddTextPiece(std::string_view piece, size_t begin_offset) {
  if (piece.empty()) return;
  if (pending_view_.empty() && pending_text_.empty()) {
    pending_text_begin_ = begin_offset;
    pending_view_ = piece;
  } else {
    MaterializePendingText();
    pending_text_.append(piece);
  }
  if (!IsAllXmlWhitespace(piece)) pending_text_nonempty_ = true;
}

Status Parser::FlushText() {
  if (!pending_view_.empty()) {
    // The zero-copy fast path: one uninterrupted run, handed to the
    // handler as a view into input_ (splicing sinks detect this by
    // pointer identity and copy the raw span instead of re-escaping).
    std::string_view text = pending_view_;
    pending_view_ = {};
    bool emit = pending_text_nonempty_ || options_.keep_whitespace_text;
    pending_text_nonempty_ = false;
    if (emit) {
      SetSpan(pending_text_begin_, pos_);
      return handler_->Characters(text);
    }
    return Status::Ok();
  }
  if (pending_text_.empty()) return Status::Ok();
  bool emit = pending_text_nonempty_ || options_.keep_whitespace_text;
  std::string text = std::move(pending_text_);
  pending_text_.clear();
  pending_text_nonempty_ = false;
  if (emit) {
    // pos_ is at the markup that terminated the run, so the span covers
    // every text/CDATA/reference piece accumulated since it began.
    SetSpan(pending_text_begin_, pos_);
    return handler_->Characters(text);
  }
  return Status::Ok();
}

Status Parser::SkipComment() {
  // pos_ is at "<!--".
  size_t end = input_.find("-->", pos_ + 4);
  if (end == std::string_view::npos) return Error("unterminated comment");
  pos_ = end + 3;
  return Status::Ok();
}

Status Parser::SkipProcessingInstruction() {
  // pos_ is at "<?".
  size_t end = input_.find("?>", pos_ + 2);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  pos_ = end + 2;
  return Status::Ok();
}

Status Parser::ParseDoctype() {
  // pos_ is at "<!DOCTYPE".
  size_t doctype_begin = pos_;
  pos_ += 9;
  SkipSpace();
  std::string_view name;
  XMLPROJ_RETURN_IF_ERROR(ParseName(&name));
  std::string_view internal_subset;
  // Scan to the closing '>', capturing an internal subset if present.
  while (!AtEnd() && Peek() != '>' && Peek() != '[') ++pos_;
  if (!AtEnd() && Peek() == '[') {
    size_t subset_start = pos_ + 1;
    size_t end = input_.find(']', subset_start);
    if (end == std::string_view::npos) {
      return Error("unterminated DOCTYPE internal subset");
    }
    internal_subset = input_.substr(subset_start, end - subset_start);
    pos_ = end + 1;
    while (!AtEnd() && Peek() != '>') ++pos_;
  }
  if (AtEnd()) return Error("unterminated DOCTYPE");
  ++pos_;  // '>'
  SetSpan(doctype_begin, pos_);
  return handler_->Doctype(name, internal_subset);
}

Status Parser::ParseAttributes() {
  while (true) {
    SkipSpace();
    if (AtEnd()) return Error("unterminated start tag");
    if (Peek() == '>' || Peek() == '/') return Status::Ok();
    std::string_view name;
    XMLPROJ_RETURN_IF_ERROR(ParseName(&name));
    SkipSpace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
    ++pos_;
    SkipSpace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    ++pos_;
    size_t value_begin = pos_;
    size_t quote_end = input_.find(quote, pos_);
    if (quote_end == std::string_view::npos) {
      return Error("unterminated attribute value");
    }
    const char* value_data = input_.data() + value_begin;
    size_t value_len = quote_end - value_begin;
    if (memchr(value_data, '<', value_len) != nullptr) {
      pos_ = value_begin +
             static_cast<size_t>(
                 static_cast<const char*>(memchr(value_data, '<', value_len)) -
                 value_data);
      return Error("'<' in attribute value");
    }
    if (memchr(value_data, '&', value_len) == nullptr) {
      // Zero-copy value: a view straight into the buffer.
      pos_ = quote_end + 1;
      attributes_.push_back(
          SaxAttribute{name, std::string_view(value_data, value_len)});
      continue;
    }
    // Slow path: references force decoding into owned storage. The view
    // is re-pointed by ParseStartTag once all attributes are parsed
    // (attr_storage_ may reallocate while growing).
    if (attr_storage_used_ == attr_storage_.size()) {
      attr_storage_.emplace_back();
    }
    std::string* value = &attr_storage_[attr_storage_used_];
    value->clear();
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        XMLPROJ_RETURN_IF_ERROR(AppendReference(value));
      } else {
        value->push_back(Peek());
        ++pos_;
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    ++pos_;  // closing quote
    decoded_values_.push_back(
        DecodedValue{static_cast<uint32_t>(attributes_.size()),
                     static_cast<uint32_t>(attr_storage_used_)});
    ++attr_storage_used_;
    attributes_.push_back(SaxAttribute{name, std::string_view()});
  }
}

Status Parser::ParseStartTag(bool* closed) {
  XMLPROJ_RETURN_IF_ERROR(XMLPROJ_FAULT_HIT(options_.fault, "xml.parse"));
  // pos_ is at '<' of a start tag.
  size_t tag_begin = pos_;
  ++pos_;
  std::string_view tag;
  XMLPROJ_RETURN_IF_ERROR(ParseName(&tag));
  attributes_.clear();
  attr_storage_used_ = 0;
  decoded_values_.clear();
  XMLPROJ_RETURN_IF_ERROR(ParseAttributes());
  // Re-point decoded views: attr_storage_ may have reallocated while
  // growing (zero-copy values already point into input_ and stay put).
  for (const DecodedValue& d : decoded_values_) {
    attributes_[d.attr_index].value = attr_storage_[d.storage_index];
  }
  bool self_closing = false;
  if (Peek() == '/') {
    self_closing = true;
    ++pos_;
    if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
  }
  ++pos_;  // '>'
  // A self-closing tag is one markup span producing two events; both
  // report it.
  SetSpan(tag_begin, pos_);
  XMLPROJ_RETURN_IF_ERROR(handler_->StartElement(tag, attributes_));
  if (self_closing) {
    *closed = true;
    return handler_->EndElement(tag);
  }
  *closed = false;
  open_tags_.emplace_back(tag);
  return Status::Ok();
}

Status Parser::ParseTree() {
  bool closed = false;
  XMLPROJ_RETURN_IF_ERROR(ParseStartTag(&closed));
  const char* base = input_.data();
  const size_t limit = input_.size();
  while (!open_tags_.empty()) {
    if (AtEnd()) return Error("unexpected end of input inside element");
    char c = Peek();
    if (c == '<') {
      // Dispatch on the byte after '<': start and end tags are the hot
      // cases, comments/CDATA/PIs the cold ones.
      char next = pos_ + 1 < limit ? base[pos_ + 1] : '\0';
      if (next == '/') {
        XMLPROJ_RETURN_IF_ERROR(FlushText());
        size_t end_tag_begin = pos_;
        pos_ += 2;
        std::string_view name;
        XMLPROJ_RETURN_IF_ERROR(ParseName(&name));
        if (open_tags_.empty() || name != open_tags_.back()) {
          return Error("mismatched end tag </" + std::string(name) + ">");
        }
        SkipSpace();
        if (AtEnd() || Peek() != '>') return Error("malformed end tag");
        ++pos_;
        SetSpan(end_tag_begin, pos_);
        std::string_view closed_tag = open_tags_.back();
        open_tags_.pop_back();
        XMLPROJ_RETURN_IF_ERROR(handler_->EndElement(closed_tag));
      } else if (next == '!') {
        if (LookingAt("<!--")) {
          XMLPROJ_RETURN_IF_ERROR(SkipComment());
        } else if (LookingAt("<![CDATA[")) {
          size_t end = input_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          AddTextPiece(input_.substr(pos_ + 9, end - pos_ - 9), pos_);
          pos_ = end + 3;
        } else {
          XMLPROJ_RETURN_IF_ERROR(FlushText());
          XMLPROJ_RETURN_IF_ERROR(ParseStartTag(&closed));
        }
      } else if (next == '?') {
        XMLPROJ_RETURN_IF_ERROR(SkipProcessingInstruction());
      } else {
        XMLPROJ_RETURN_IF_ERROR(FlushText());
        XMLPROJ_RETURN_IF_ERROR(ParseStartTag(&closed));
      }
    } else if (c == '&') {
      MaterializePendingText();
      if (pending_text_.empty()) pending_text_begin_ = pos_;
      size_t before = pending_text_.size();
      XMLPROJ_RETURN_IF_ERROR(AppendReference(&pending_text_));
      if (!IsAllXmlWhitespace(
              std::string_view(pending_text_).substr(before))) {
        pending_text_nonempty_ = true;
      }
    } else {
      // memchr-based run scan: find the next '<', then any '&' before it.
      size_t run_start = pos_;
      const void* lt = memchr(base + pos_, '<', limit - pos_);
      size_t lt_pos =
          lt != nullptr
              ? static_cast<size_t>(static_cast<const char*>(lt) - base)
              : limit;
      const void* amp = memchr(base + pos_, '&', lt_pos - pos_);
      pos_ = amp != nullptr
                 ? static_cast<size_t>(static_cast<const char*>(amp) - base)
                 : lt_pos;
      AddTextPiece(input_.substr(run_start, pos_ - run_start), run_start);
    }
  }
  return Status::Ok();
}

Status Parser::ParseProlog() {
  while (true) {
    SkipSpace();
    if (AtEnd()) return Error("no root element");
    if (LookingAt("<?")) {
      XMLPROJ_RETURN_IF_ERROR(SkipProcessingInstruction());
    } else if (LookingAt("<!--")) {
      XMLPROJ_RETURN_IF_ERROR(SkipComment());
    } else if (LookingAt("<!DOCTYPE")) {
      XMLPROJ_RETURN_IF_ERROR(ParseDoctype());
    } else if (Peek() == '<') {
      return Status::Ok();
    } else {
      return Error("text before root element");
    }
  }
}

Status Parser::Run() {
  handler_->SetLocator(&locator_);
  if (fragment_) return RunFragment();
  SetSpan(0, 0);
  XMLPROJ_RETURN_IF_ERROR(handler_->StartDocument());
  XMLPROJ_RETURN_IF_ERROR(ParseProlog());
  XMLPROJ_RETURN_IF_ERROR(ParseTree());
  // Trailing misc: comments, PIs, whitespace only.
  while (true) {
    SkipSpace();
    if (AtEnd()) break;
    if (LookingAt("<!--")) {
      XMLPROJ_RETURN_IF_ERROR(SkipComment());
    } else if (LookingAt("<?")) {
      XMLPROJ_RETURN_IF_ERROR(SkipProcessingInstruction());
    } else {
      return Error("content after root element");
    }
  }
  SetSpan(input_.size(), input_.size());
  return handler_->EndDocument();
}

Status Parser::RunFragment() {
  // A forest of complete elements with misc (whitespace, comments, PIs)
  // between them. No StartDocument/EndDocument, no prolog: the fragment is
  // parsed as if an enclosing pass had already consumed everything before
  // it.
  while (true) {
    SkipSpace();
    if (AtEnd()) return Status::Ok();
    if (LookingAt("<!--")) {
      XMLPROJ_RETURN_IF_ERROR(SkipComment());
    } else if (LookingAt("<?")) {
      XMLPROJ_RETURN_IF_ERROR(SkipProcessingInstruction());
    } else if (LookingAt("</")) {
      return Error("unmatched end tag in fragment");
    } else if (Peek() == '<') {
      XMLPROJ_RETURN_IF_ERROR(ParseTree());
    } else {
      return Error("text outside any element in fragment");
    }
  }
}

}  // namespace

Status ParseXmlStream(std::string_view input, SaxHandler* handler,
                      const XmlParseOptions& options) {
  Parser parser(input, handler, options);
  return parser.Run();
}

Status ParseXmlFragment(std::string_view input, SaxHandler* handler,
                        const XmlParseOptions& options) {
  Parser parser(input, handler, options, /*fragment=*/true);
  return parser.Run();
}

Result<Document> ParseXml(std::string_view input,
                          const XmlParseOptions& options) {
  DomBuilderHandler handler;
  XMLPROJ_RETURN_IF_ERROR(ParseXmlStream(input, &handler, options));
  return handler.TakeDocument();
}

Result<std::string> DecodeXmlReferences(std::string_view text) {
  // Reuse the content scanner by wrapping the text in a root element would
  // be heavyweight; decode directly instead.
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    size_t end = text.find(';', i);
    if (end == std::string_view::npos) {
      return ParseError("unterminated entity reference");
    }
    std::string_view body = text.substr(i + 1, end - i - 1);
    if (body == "lt") {
      out.push_back('<');
    } else if (body == "gt") {
      out.push_back('>');
    } else if (body == "amp") {
      out.push_back('&');
    } else if (body == "apos") {
      out.push_back('\'');
    } else if (body == "quot") {
      out.push_back('"');
    } else {
      return ParseError("unknown entity '&" + std::string(body) + ";'");
    }
    i = end + 1;
  }
  return out;
}

}  // namespace xmlproj
