// DTD-free projection via inferred dataguides.
//
// The paper's conclusion (§7) notes the approach "should be easy to adapt
// to work in the absence of DTDs, by using dataguides/path-summaries
// instead". This module implements that extension: it infers a local tree
// grammar from one or more sample documents — each element tag becomes a
// name whose content model is (c1 | ... | ck | #PCDATA?)*, the union of
// the child names (and text) actually observed under that tag — and the
// regular pipeline (type inference, projector inference, pruning) runs
// unchanged on the result.
//
// Soundness caveat, inherited from dataguides in general: the inferred
// grammar describes the *sample*. Any document whose parent->child tag
// pairs are covered by the sample (in particular, the sample itself and
// any document validating against it) is projected soundly; a document
// with unseen tag nestings must be re-summarized first (StreamingPruner
// rejects unknown tags rather than mis-pruning them).

#ifndef XMLPROJ_DTD_DATAGUIDE_H_
#define XMLPROJ_DTD_DATAGUIDE_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "dtd/dtd.h"
#include "xml/document.h"

namespace xmlproj {

// Builds dataguide grammars incrementally from sample documents.
class DataGuideBuilder {
 public:
  // Folds a document's parent/child tag pairs into the summary. Documents
  // must share the same root tag.
  Status AddDocument(const Document& doc);

  // Finishes: produces the grammar. At least one document must have been
  // added.
  Result<Dtd> Build() const;

 private:
  struct TagSummary {
    std::set<std::string> child_tags;
    bool has_text = false;
  };

  std::string root_tag_;
  std::map<std::string, TagSummary> tags_;
};

// One-shot convenience.
Result<Dtd> InferDataGuide(const Document& doc);

}  // namespace xmlproj

#endif  // XMLPROJ_DTD_DATAGUIDE_H_
