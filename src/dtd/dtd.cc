#include "dtd/dtd.h"

#include <cassert>

#include "common/strings.h"

namespace xmlproj {

namespace {

// FNV-1a. The table is tiny (DTD name sets are static and small), so a
// simple byte-at-a-time hash beats anything fancier once inlined.
uint32_t HashTag(std::string_view tag) {
  uint32_t h = 2166136261u;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

NameId Dtd::NameOfTag(std::string_view tag) const {
  if (tag_table_.empty()) {
    // Pre-Finalize (builder internals) or default-constructed Dtd.
    auto it = name_of_tag_.find(std::string(tag));
    return it == name_of_tag_.end() ? kNoName : it->second;
  }
  uint32_t h = HashTag(tag);
  for (size_t i = h & tag_table_mask_;; i = (i + 1) & tag_table_mask_) {
    const TagSlot& slot = tag_table_[i];
    if (slot.id == kNoName) return kNoName;
    if (slot.hash == h && slot.tag == tag) return slot.id;
  }
}

NameSet Dtd::AllNames() const {
  NameSet all(name_count());
  for (NameId i = 0; i < static_cast<NameId>(name_count()); ++i) all.Add(i);
  return all;
}

NameSet Dtd::Children(const NameSet& set) const {
  NameSet out(name_count());
  set.ForEach([this, &out](NameId n) { out |= ChildrenOf(n); });
  return out;
}

NameSet Dtd::Parents(const NameSet& set) const {
  NameSet out(name_count());
  set.ForEach([this, &out](NameId n) { out |= ParentsOf(n); });
  return out;
}

NameSet Dtd::Descendants(const NameSet& set) const {
  NameSet out(name_count());
  set.ForEach([this, &out](NameId n) { out |= DescendantsOf(n); });
  return out;
}

NameSet Dtd::Ancestors(const NameSet& set) const {
  NameSet out(name_count());
  set.ForEach([this, &out](NameId n) { out |= AncestorsOf(n); });
  return out;
}

NameSet Dtd::NamesWithTag(std::string_view tag) const {
  NameSet out(name_count());
  NameId id = NameOfTag(tag);
  if (id != kNoName) out.Add(id);
  return out;
}

bool Dtd::IsStarGuarded() const {
  for (const Production& p : productions_) {
    if (!p.is_string && !p.content.IsStarGuarded()) return false;
  }
  return true;
}

bool Dtd::IsRecursive() const {
  for (NameId i = 0; i < static_cast<NameId>(name_count()); ++i) {
    if (descendant_[static_cast<size_t>(i)].Contains(i)) return true;
  }
  return false;
}

bool Dtd::IsParentUnambiguous() const {
  // Def 4.3(3) asks that no chain cYZ coexists with cYc'Z for c' != ε.
  // For any reachable Y this reduces to: Y must not have a name Z both as a
  // direct child and as a strict descendant of one of its children.
  for (NameId y = 0; y < static_cast<NameId>(name_count()); ++y) {
    if (!reachable_.Contains(y)) continue;
    if (productions_[static_cast<size_t>(y)].is_document) continue;
    const NameSet& direct = child_[static_cast<size_t>(y)];
    NameSet deeper(name_count());
    direct.ForEach([this, &deeper](NameId w) {
      deeper |= descendant_[static_cast<size_t>(w)];
    });
    if (direct.Intersects(deeper)) return false;
  }
  return true;
}

std::string Dtd::ToString() const {
  std::vector<std::string> names = NameStrings();
  std::string out;
  for (NameId i = 0; i < static_cast<NameId>(name_count()); ++i) {
    const Production& p = productions_[static_cast<size_t>(i)];
    out += p.name;
    if (i == root_) out += " (root)";
    out += " -> ";
    if (p.is_string) {
      out += "String";
    } else {
      out += p.tag;
      out += "[";
      out += p.content.ToString(names);
      out += "]";
    }
    out += "\n";
  }
  return out;
}

std::vector<std::string> Dtd::NameStrings() const {
  std::vector<std::string> out;
  out.reserve(productions_.size());
  for (const Production& p : productions_) out.push_back(p.name);
  return out;
}

Status Dtd::Finalize() {
  const size_t n = productions_.size();
  string_names_ = NameSet(n);
  child_.assign(n, NameSet(n));
  parent_.assign(n, NameSet(n));
  descendant_.assign(n, NameSet(n));
  ancestor_.assign(n, NameSet(n));
  matchers_.clear();
  matchers_.resize(n);

  NameSet element_names(n);
  for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
    const Production& p = productions_[static_cast<size_t>(i)];
    if (p.is_string) {
      string_names_.Add(i);
    } else if (!p.is_document) {
      element_names.Add(i);
    }
  }

  for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
    Production& p = productions_[static_cast<size_t>(i)];
    if (p.is_string) continue;
    // ANY content ranges over all element names plus this element's own
    // String name (text is allowed anywhere under ANY).
    NameSet any_names = element_names;
    if (string_name_of_[static_cast<size_t>(i)] != kNoName) {
      any_names.Add(string_name_of_[static_cast<size_t>(i)]);
    }
    child_[static_cast<size_t>(i)] =
        p.content.CollectNames(n, &any_names);
    matchers_[static_cast<size_t>(i)] =
        std::make_unique<ContentMatcher>(p.content, n);
  }

  for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
    child_[static_cast<size_t>(i)].ForEach([this, i](NameId c) {
      parent_[static_cast<size_t>(c)].Add(i);
    });
  }

  // descendant_ = transitive closure of child_, computed by iterating to a
  // fixpoint (name counts are small; this is at worst O(n^2) set unions).
  for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
    descendant_[static_cast<size_t>(i)] = child_[static_cast<size_t>(i)];
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
      NameSet next = descendant_[static_cast<size_t>(i)];
      descendant_[static_cast<size_t>(i)].ForEach([this, &next](NameId d) {
        next |= descendant_[static_cast<size_t>(d)];
      });
      if (!(next == descendant_[static_cast<size_t>(i)])) {
        descendant_[static_cast<size_t>(i)] = std::move(next);
        changed = true;
      }
    }
  }
  for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
    descendant_[static_cast<size_t>(i)].ForEach([this, i](NameId d) {
      ancestor_[static_cast<size_t>(d)].Add(i);
    });
  }

  reachable_ = NameSet(n);
  if (root_ != kNoName) {
    reachable_.Add(root_);
    reachable_ |= descendant_[static_cast<size_t>(root_)];
  }

  // Intern the (now-frozen) tag set into the open-addressed lookup table
  // at <= 50% load, linear probing.
  size_t tagged = 0;
  for (const Production& p : productions_) {
    if (!p.tag.empty()) ++tagged;
  }
  size_t table_size = 4;
  while (table_size < tagged * 2) table_size *= 2;
  tag_table_.assign(table_size, TagSlot{});
  tag_table_mask_ = static_cast<uint32_t>(table_size - 1);
  for (NameId i = 0; i < static_cast<NameId>(n); ++i) {
    const Production& p = productions_[static_cast<size_t>(i)];
    if (p.tag.empty() || p.is_string) continue;
    uint32_t h = HashTag(p.tag);
    size_t slot = h & tag_table_mask_;
    while (tag_table_[slot].id != kNoName) {
      slot = (slot + 1) & tag_table_mask_;
    }
    tag_table_[slot] = TagSlot{h, i, p.tag};
  }
  return Status::Ok();
}

Result<NameId> DtdBuilder::DeclareElement(std::string_view tag) {
  NameId existing = FindElement(tag);
  if (existing != kNoName) {
    if (declared_[static_cast<size_t>(existing)]) {
      return InvalidError("duplicate declaration of element '" +
                          std::string(tag) + "'");
    }
    declared_[static_cast<size_t>(existing)] = true;
    return existing;
  }
  NameId id = static_cast<NameId>(dtd_.productions_.size());
  Production p;
  p.name = std::string(tag);
  p.tag = std::string(tag);
  dtd_.productions_.push_back(std::move(p));
  dtd_.string_name_of_.push_back(kNoName);
  dtd_.name_of_tag_.emplace(std::string(tag), id);
  declared_.push_back(true);
  return id;
}

NameId DtdBuilder::StringNameFor(NameId owner) {
  NameId existing = dtd_.string_name_of_[static_cast<size_t>(owner)];
  if (existing != kNoName) return existing;
  NameId id = static_cast<NameId>(dtd_.productions_.size());
  Production p;
  p.name = dtd_.productions_[static_cast<size_t>(owner)].tag + "#text";
  p.is_string = true;
  dtd_.productions_.push_back(std::move(p));
  dtd_.string_name_of_.push_back(kNoName);
  dtd_.string_name_of_[static_cast<size_t>(owner)] = id;
  declared_.push_back(true);
  return id;
}

ContentModel* DtdBuilder::MutableContent(NameId id) {
  return &dtd_.productions_[static_cast<size_t>(id)].content;
}

void DtdBuilder::AddAttribute(NameId id, AttributeDecl attribute) {
  dtd_.productions_[static_cast<size_t>(id)].attributes.push_back(
      std::move(attribute));
}

NameId DtdBuilder::FindElement(std::string_view tag) const {
  auto it = dtd_.name_of_tag_.find(std::string(tag));
  return it == dtd_.name_of_tag_.end() ? kNoName : it->second;
}

Result<NameId> DtdBuilder::DeclareOrFindElement(std::string_view tag) {
  NameId existing = FindElement(tag);
  if (existing != kNoName) return existing;
  NameId id = static_cast<NameId>(dtd_.productions_.size());
  Production p;
  p.name = std::string(tag);
  p.tag = std::string(tag);
  dtd_.productions_.push_back(std::move(p));
  dtd_.string_name_of_.push_back(kNoName);
  dtd_.name_of_tag_.emplace(std::string(tag), id);
  declared_.push_back(false);
  return id;
}

std::vector<std::string> DtdBuilder::UndeclaredTags() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < declared_.size(); ++i) {
    if (!declared_[i] && !dtd_.productions_[i].is_string) {
      out.push_back(dtd_.productions_[i].tag);
    }
  }
  return out;
}

Result<Dtd> DtdBuilder::Build(std::string_view root_tag) {
  std::vector<std::string> undeclared = UndeclaredTags();
  if (!undeclared.empty()) {
    return InvalidError("content models reference undeclared elements: " +
                        Join(undeclared, ", "));
  }
  NameId root = FindElement(root_tag);
  if (root == kNoName) {
    return InvalidError("root element '" + std::string(root_tag) +
                        "' is not declared");
  }
  dtd_.root_ = root;
  // Synthetic document name: #document -> [X].
  {
    NameId doc_id = static_cast<NameId>(dtd_.productions_.size());
    Production p;
    p.name = "#document";
    p.is_document = true;
    p.content.set_root(p.content.Name(root));
    dtd_.productions_.push_back(std::move(p));
    dtd_.string_name_of_.push_back(kNoName);
    dtd_.document_name_ = doc_id;
  }
  XMLPROJ_RETURN_IF_ERROR(dtd_.Finalize());
  return std::move(dtd_);
}

}  // namespace xmlproj
