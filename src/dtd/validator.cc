#include "dtd/validator.h"

#include <string>

#include "common/strings.h"

namespace xmlproj {
namespace {

Result<Interpretation> ValidateImpl(const Document& doc, const Dtd& dtd,
                                    const ValidationOptions& options) {
  Interpretation interp;
  interp.name_of_node.assign(doc.size(), kNoName);
  interp.name_of_node[doc.document_node()] = dtd.document_name();

  // Tag symbol -> name id, resolved once per distinct tag.
  std::vector<NameId> name_of_tag(doc.symbols().size(), kNoName);
  std::vector<bool> tag_resolved(doc.symbols().size(), false);

  NodeId root = doc.root();
  if (root == kNullNode) return InvalidError("document has no root element");

  std::vector<NameId> child_names;  // reused per element
  const NodeId total = static_cast<NodeId>(doc.size());
  for (NodeId id = 1; id < total; ++id) {
    const Node& n = doc.node(id);
    if (n.kind == NodeKind::kText) {
      NameId parent_name = interp.name_of_node[n.parent];
      if (parent_name == kNoName) {
        return InvalidError("text node at top level");
      }
      NameId string_name = dtd.StringNameOf(parent_name);
      if (string_name == kNoName) {
        return InvalidError(
            "text content not allowed inside element '" +
            dtd.production(parent_name).tag + "'");
      }
      interp.name_of_node[id] = string_name;
      continue;
    }
    if (n.kind != NodeKind::kElement) continue;
    TagId tag = n.tag;
    if (!tag_resolved[static_cast<size_t>(tag)]) {
      name_of_tag[static_cast<size_t>(tag)] =
          dtd.NameOfTag(doc.symbols().NameOf(tag));
      tag_resolved[static_cast<size_t>(tag)] = true;
    }
    NameId name = name_of_tag[static_cast<size_t>(tag)];
    if (name == kNoName) {
      return InvalidError("undeclared element '" + doc.tag_name(id) + "'");
    }
    interp.name_of_node[id] = name;
  }

  if (interp.name_of_node[root] != dtd.root()) {
    return InvalidError("root element '" + doc.tag_name(root) +
                        "' does not match DTD root '" +
                        dtd.production(dtd.root()).tag + "'");
  }

  if (!options.check_content && !options.check_attributes) return interp;

  for (NodeId id = 1; id < total; ++id) {
    const Node& n = doc.node(id);
    if (n.kind != NodeKind::kElement) continue;
    NameId name = interp.name_of_node[id];
    if (options.check_attributes) {
      for (const AttributeDecl& decl : dtd.production(name).attributes) {
        if (decl.required && doc.FindAttribute(id, decl.name) == nullptr) {
          return InvalidError("element '" + doc.tag_name(id) +
                              "' is missing required attribute '" +
                              decl.name + "'");
        }
      }
    }
    if (options.check_content) {
      child_names.clear();
      for (NodeId c = n.first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        child_names.push_back(interp.name_of_node[c]);
      }
      if (!dtd.MatcherOf(name).Matches(child_names)) {
        return InvalidError(StringPrintf(
            "children of element '%s' (node %u) do not match its content "
            "model %s",
            doc.tag_name(id).c_str(), id,
            dtd.production(name).content.ToString(dtd.NameStrings())
                .c_str()));
      }
    }
  }
  return interp;
}

}  // namespace

Result<Interpretation> Validate(const Document& doc, const Dtd& dtd,
                                const ValidationOptions& options) {
  return ValidateImpl(doc, dtd, options);
}

Result<Interpretation> Interpret(const Document& doc, const Dtd& dtd) {
  ValidationOptions options;
  options.check_content = false;
  options.check_attributes = false;
  return ValidateImpl(doc, dtd, options);
}

}  // namespace xmlproj
