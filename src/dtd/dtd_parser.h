// Parser for DTD text (the ELEMENT/ATTLIST declaration language) into a
// local tree grammar (dtd.h).
//
// Accepts standalone DTD files and DOCTYPE internal subsets. ENTITY and
// NOTATION declarations, comments, and processing instructions are
// skipped; parameter entities are not supported (none of the benchmark
// DTDs use them).

#ifndef XMLPROJ_DTD_DTD_PARSER_H_
#define XMLPROJ_DTD_DTD_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "dtd/dtd.h"

namespace xmlproj {

// Parses the declarations in `dtd_text` and fixes `root_tag` as the
// distinguished root name X of the grammar (DTD syntax itself does not name
// the root; it comes from the DOCTYPE declaration or from the caller).
Result<Dtd> ParseDtd(std::string_view dtd_text, std::string_view root_tag);

}  // namespace xmlproj

#endif  // XMLPROJ_DTD_DTD_PARSER_H_
