// Dense bitset over the names of one DTD.
//
// The static analysis (paper §4) manipulates types τ, contexts κ and
// projectors π, all of which are subsets of DN(E). A DTD has at most a few
// hundred names, so a flat bitset makes every A_E / T_E operation a handful
// of word operations.

#ifndef XMLPROJ_DTD_NAME_SET_H_
#define XMLPROJ_DTD_NAME_SET_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace xmlproj {

// Index of a name in a Dtd. Dense, starting at 0.
using NameId = int32_t;
inline constexpr NameId kNoName = -1;

class NameSet {
 public:
  NameSet() = default;
  explicit NameSet(size_t universe_size)
      : size_(universe_size), words_((universe_size + 63) / 64, 0) {}

  static NameSet Of(size_t universe_size,
                    std::initializer_list<NameId> names) {
    NameSet s(universe_size);
    for (NameId n : names) s.Add(n);
    return s;
  }

  size_t universe_size() const { return size_; }

  void Add(NameId n) {
    assert(n >= 0 && static_cast<size_t>(n) < size_);
    words_[static_cast<size_t>(n) >> 6] |= 1ull << (n & 63);
  }
  void Remove(NameId n) {
    assert(n >= 0 && static_cast<size_t>(n) < size_);
    words_[static_cast<size_t>(n) >> 6] &= ~(1ull << (n & 63));
  }
  bool Contains(NameId n) const {
    if (n < 0 || static_cast<size_t>(n) >= size_) return false;
    return (words_[static_cast<size_t>(n) >> 6] >> (n & 63)) & 1;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  bool Any() const { return !Empty(); }

  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  NameSet& operator|=(const NameSet& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  NameSet& operator&=(const NameSet& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  // Set difference.
  NameSet& operator-=(const NameSet& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  friend NameSet operator|(NameSet a, const NameSet& b) { return a |= b; }
  friend NameSet operator&(NameSet a, const NameSet& b) { return a &= b; }
  friend NameSet operator-(NameSet a, const NameSet& b) { return a -= b; }

  bool operator==(const NameSet& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  bool Intersects(const NameSet& other) const {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  bool IsSubsetOf(const NameSet& other) const {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  // Calls fn(NameId) for each member, in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        fn(static_cast<NameId>(wi * 64 + static_cast<size_t>(bit)));
        w &= w - 1;
      }
    }
  }

  // FNV-style hash over the words (used by the projector-inference memo).
  size_t Hash() const {
    size_t h = 1469598103934665603ull;
    for (uint64_t w : words_) {
      h ^= static_cast<size_t>(w);
      h *= 1099511628211ull;
    }
    return h;
  }

  std::vector<NameId> ToVector() const {
    std::vector<NameId> out;
    out.reserve(Count());
    ForEach([&out](NameId n) { out.push_back(n); });
    return out;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace xmlproj

#endif  // XMLPROJ_DTD_NAME_SET_H_
