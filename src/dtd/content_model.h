// Content models: regular expressions over DTD names (paper §2.2).
//
// Each production X -> a[r] carries one ContentModel describing r. The
// model is an arena of RegexNode records; matching of a child-name sequence
// uses a Glushkov (position) automaton compiled once per production, which
// is the standard construction for DTD content models.

#ifndef XMLPROJ_DTD_CONTENT_MODEL_H_
#define XMLPROJ_DTD_CONTENT_MODEL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dtd/name_set.h"

namespace xmlproj {

enum class RegexKind : uint8_t {
  kEpsilon,  // empty sequence (EMPTY content)
  kName,     // one name occurrence
  kSeq,      // r1, r2, ..., rn
  kChoice,   // r1 | r2 | ... | rn
  kStar,     // r*
  kPlus,     // r+
  kOpt,      // r?
  kAny,      // ANY content: any sequence over the whole DTD
};

struct RegexNode {
  RegexKind kind = RegexKind::kEpsilon;
  NameId name = kNoName;           // kName only
  std::vector<int32_t> children;   // node indices within the ContentModel
};

class ContentModel {
 public:
  ContentModel() = default;

  // --- Construction (returns node index) -------------------------------
  int32_t Epsilon();
  int32_t Name(NameId name);
  int32_t Seq(std::vector<int32_t> children);
  int32_t Choice(std::vector<int32_t> children);
  int32_t Star(int32_t child);
  int32_t Plus(int32_t child);
  int32_t Opt(int32_t child);
  int32_t Any();

  void set_root(int32_t root) { root_ = root; }
  int32_t root() const { return root_; }
  bool empty_model() const { return root_ < 0; }

  const RegexNode& node(int32_t index) const {
    return nodes_[static_cast<size_t>(index)];
  }
  size_t node_count() const { return nodes_.size(); }

  // All names occurring in the model — Names(r) in the paper. For kAny this
  // must be supplied by the caller (the whole DTD); pass universe_size and
  // the full set via `any_names`.
  NameSet CollectNames(size_t universe_size, const NameSet* any_names) const;

  // True if r contains a kAny node.
  bool ContainsAny() const;

  // *-guardedness of this model (Def 4.3(1)): the model is a product of
  // factors, and every factor containing a union is starred (* or +).
  bool IsStarGuarded() const;

  // Human-readable form, e.g. "(a, (b | c)*, d?)". For diagnostics.
  std::string ToString(
      const std::vector<std::string>& name_strings) const;

 private:
  int32_t Add(RegexNode node);

  std::vector<RegexNode> nodes_;
  int32_t root_ = -1;
};

// Glushkov automaton for one content model; answers "does this sequence of
// child names match r?".
class ContentMatcher {
 public:
  // `universe_size` is the number of names in the DTD; kAny nodes accept
  // any name.
  ContentMatcher(const ContentModel& model, size_t universe_size);

  bool Matches(std::span<const NameId> children) const;

  // True if the empty sequence matches.
  bool AcceptsEmpty() const { return nullable_; }

  // --- Incremental matching (streaming validation) ----------------------
  // State after consuming a (possibly empty) prefix of a child sequence.
  // Memory is O(positions), independent of how many children were fed:
  // this is what lets validation run in one bufferless pass alongside
  // pruning (§6).
  struct MatchState {
    std::vector<bool> positions;
    bool at_start = true;
    bool dead = false;  // no continuation can ever match
  };

  MatchState StartState() const;
  // Consumes one child name.
  void Advance(MatchState* state, NameId child) const;
  // True if the sequence consumed so far is a complete match.
  bool Accepts(const MatchState& state) const;

 private:
  struct Position {
    NameId name;   // kNoName means "any name" (from kAny)
  };
  struct BuildResult {
    bool nullable;
    std::vector<int32_t> first;
    std::vector<int32_t> last;
  };

  BuildResult Build(const ContentModel& model, int32_t index);

  std::vector<Position> positions_;
  std::vector<std::vector<int32_t>> follow_;
  std::vector<int32_t> first_;
  bool nullable_ = true;
  std::vector<int32_t> accepting_;  // positions that can end a match
  size_t universe_size_ = 0;
};

}  // namespace xmlproj

#endif  // XMLPROJ_DTD_CONTENT_MODEL_H_
