#include "dtd/dataguide.h"

#include <vector>

namespace xmlproj {

Status DataGuideBuilder::AddDocument(const Document& doc) {
  NodeId root = doc.root();
  if (root == kNullNode) {
    return InvalidError("cannot summarize a document with no root element");
  }
  const std::string& root_tag = doc.tag_name(root);
  if (root_tag_.empty()) {
    root_tag_ = root_tag;
  } else if (root_tag_ != root_tag) {
    return InvalidError("documents disagree on the root tag: '" +
                        root_tag_ + "' vs '" + root_tag + "'");
  }
  const NodeId total = static_cast<NodeId>(doc.size());
  for (NodeId id = 1; id < total; ++id) {
    if (doc.kind(id) != NodeKind::kElement) continue;
    TagSummary& summary = tags_[doc.tag_name(id)];
    for (NodeId c = doc.node(id).first_child; c != kNullNode;
         c = doc.node(c).next_sibling) {
      if (doc.kind(c) == NodeKind::kText) {
        summary.has_text = true;
      } else {
        summary.child_tags.insert(doc.tag_name(c));
      }
    }
  }
  return Status::Ok();
}

Result<Dtd> DataGuideBuilder::Build() const {
  if (root_tag_.empty()) {
    return InvalidError("no documents were added to the dataguide");
  }
  DtdBuilder builder;
  // Declare all tags first so content models can reference them freely.
  for (const auto& [tag, summary] : tags_) {
    (void)summary;
    XMLPROJ_RETURN_IF_ERROR(builder.DeclareElement(tag).status());
  }
  for (const auto& [tag, summary] : tags_) {
    NameId id = builder.FindElement(tag);
    std::vector<int32_t> alternatives;
    ContentModel model;
    if (summary.has_text) {
      alternatives.push_back(model.Name(builder.StringNameFor(id)));
    }
    for (const std::string& child : summary.child_tags) {
      alternatives.push_back(model.Name(builder.FindElement(child)));
    }
    if (!alternatives.empty()) {
      int32_t body = alternatives.size() == 1
                         ? alternatives[0]
                         : model.Choice(std::move(alternatives));
      model.set_root(model.Star(body));
    }
    // No children ever observed: EMPTY content (default model).
    *builder.MutableContent(id) = std::move(model);
  }
  return builder.Build(root_tag_);
}

Result<Dtd> InferDataGuide(const Document& doc) {
  DataGuideBuilder builder;
  XMLPROJ_RETURN_IF_ERROR(builder.AddDocument(doc));
  return builder.Build();
}

}  // namespace xmlproj
