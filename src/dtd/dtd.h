// Local tree grammars — the paper's DTDs (§2.2).
//
// A Dtd is a pair (X, E): a distinguished root name X and a set of edges
// X_i -> a_i[r_i] or X_i -> String. Because DTDs are *local* tree grammars,
// element tags determine names 1:1; additionally, following the §6
// implementation heuristic, every PCDATA occurrence gets its own String
// name unique to the enclosing element ("tag#text"), which sharpens text
// pruning (no cross-element conflicts on leaves).
//
// The class precomputes the axis relations used by the static analysis:
// child, parent, descendant (⇒E transitive closure, Def 2.5) and ancestor,
// all as per-name NameSets, plus the Def 4.3 structural properties
// (*-guarded / non-recursive / parent-unambiguous) that gate completeness.

#ifndef XMLPROJ_DTD_DTD_H_
#define XMLPROJ_DTD_DTD_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dtd/content_model.h"
#include "dtd/name_set.h"

namespace xmlproj {

// Declared attribute (from ATTLIST). Only the pieces relevant to
// validation are kept.
struct AttributeDecl {
  std::string name;
  bool required = false;  // #REQUIRED
};

struct Production {
  // Display name of this grammar name: the element tag for element names,
  // "tag#text" for String names, "#document" for the document name.
  std::string name;
  // Element tag (a_i); empty for String and document names.
  std::string tag;
  bool is_string = false;
  // The synthetic document name (see Dtd::document_name()).
  bool is_document = false;
  ContentModel content;               // element and document names
  std::vector<AttributeDecl> attributes;  // element names only
};

class Dtd {
 public:
  // Use DtdBuilder or ParseDtd (dtd_parser.h) to construct instances.
  Dtd() = default;
  Dtd(const Dtd&) = delete;
  Dtd& operator=(const Dtd&) = delete;
  Dtd(Dtd&&) = default;
  Dtd& operator=(Dtd&&) = default;

  // --- Names ------------------------------------------------------------
  size_t name_count() const { return productions_.size(); }
  const Production& production(NameId id) const {
    return productions_[static_cast<size_t>(id)];
  }
  NameId root() const { return root_; }

  // Synthetic name generating the XPath document node, with content (X).
  // It lets the static analysis treat upward steps that climb above the
  // root element (and absolute paths, which start at the document node)
  // with the same rules as everything else. It is not part of DN(E)
  // proper: structural properties ignore it and inferred projectors never
  // report it (the document node is unconditionally kept by pruning).
  NameId document_name() const { return document_name_; }

  // Element name for a tag; kNoName if the tag is not declared.
  NameId NameOfTag(std::string_view tag) const;
  // String (text) child name of element `id`; kNoName if the element's
  // content has no PCDATA.
  NameId StringNameOf(NameId id) const {
    return string_name_of_[static_cast<size_t>(id)];
  }
  bool IsStringName(NameId id) const {
    return productions_[static_cast<size_t>(id)].is_string;
  }

  // Set of all names (DN(E)).
  NameSet AllNames() const;
  // Set of all String names.
  const NameSet& StringNames() const { return string_names_; }

  // --- Axis relations on names (A_E of Def 4.1) --------------------------
  const NameSet& ChildrenOf(NameId id) const {
    return child_[static_cast<size_t>(id)];
  }
  const NameSet& ParentsOf(NameId id) const {
    return parent_[static_cast<size_t>(id)];
  }
  const NameSet& DescendantsOf(NameId id) const {
    return descendant_[static_cast<size_t>(id)];
  }
  const NameSet& AncestorsOf(NameId id) const {
    return ancestor_[static_cast<size_t>(id)];
  }

  NameSet Children(const NameSet& set) const;
  NameSet Parents(const NameSet& set) const;
  NameSet Descendants(const NameSet& set) const;
  NameSet Ancestors(const NameSet& set) const;

  // T_E(τ, Test) building blocks: names carrying a given tag / text names.
  // Names(tag l) is a singleton or empty because the grammar is local.
  NameSet NamesWithTag(std::string_view tag) const;

  // --- Content matching ---------------------------------------------------
  const ContentMatcher& MatcherOf(NameId id) const {
    return *matchers_[static_cast<size_t>(id)];
  }

  // --- Structural properties (Def 4.3) -----------------------------------
  bool IsStarGuarded() const;
  bool IsRecursive() const;
  bool IsParentUnambiguous() const;

  // Names reachable from the root (names outside this set are dead).
  const NameSet& ReachableFromRoot() const { return reachable_; }

  // Diagnostic dump of all productions.
  std::string ToString() const;

  // Display names of all productions (aligned with NameIds); useful for
  // printing NameSets.
  std::vector<std::string> NameStrings() const;

 private:
  friend class DtdBuilder;

  // Called by DtdBuilder once all productions exist.
  Status Finalize();

  // Open-addressed tag -> NameId table built by Finalize over the static
  // name set, so the per-element lookup on the pruning hot path is one
  // hash plus (usually) one probe, with no allocation — unlike the
  // std::string-keyed map, which costs a temporary string per lookup.
  // Slot tags are views into productions_[*].tag; they stay valid when a
  // Dtd is moved because vector moves steal the buffer without moving
  // elements.
  struct TagSlot {
    uint32_t hash = 0;
    NameId id = kNoName;  // kNoName marks an empty slot
    std::string_view tag;
  };

  std::vector<Production> productions_;
  std::unordered_map<std::string, NameId> name_of_tag_;
  std::vector<TagSlot> tag_table_;
  uint32_t tag_table_mask_ = 0;
  std::vector<NameId> string_name_of_;
  NameId root_ = kNoName;
  NameId document_name_ = kNoName;

  NameSet string_names_;
  std::vector<NameSet> child_;
  std::vector<NameSet> parent_;
  std::vector<NameSet> descendant_;
  std::vector<NameSet> ancestor_;
  NameSet reachable_;
  std::vector<std::unique_ptr<ContentMatcher>> matchers_;
};

// Programmatic construction of a Dtd (used by the DTD parser and by tests
// that build grammars directly).
class DtdBuilder {
 public:
  DtdBuilder() = default;

  // Declares an element name; content is configured afterwards. Returns an
  // error on duplicate tags (condition 3 of the local-grammar definition).
  Result<NameId> DeclareElement(std::string_view tag);

  // Returns (declaring if needed) the String name for PCDATA inside `owner`.
  NameId StringNameFor(NameId owner);

  // Access to the element's content model for construction.
  ContentModel* MutableContent(NameId id);

  void AddAttribute(NameId id, AttributeDecl attribute);

  // Looks up an already-declared element by tag, kNoName if absent.
  NameId FindElement(std::string_view tag) const;

  // Declares-or-finds: used when a content model references a tag that is
  // declared later in the DTD text.
  Result<NameId> DeclareOrFindElement(std::string_view tag);

  // Tags referenced but never declared via DeclareElement.
  std::vector<std::string> UndeclaredTags() const;

  // Fixes the root and finishes: computes relations, compiles matchers.
  Result<Dtd> Build(std::string_view root_tag);

 private:
  Dtd dtd_;
  std::vector<bool> declared_;  // per element name: explicitly declared?
};

}  // namespace xmlproj

#endif  // XMLPROJ_DTD_DTD_H_
