// Validation (paper Def 2.4): checks that a Document conforms to a Dtd and
// produces the interpretation ℑ mapping every node id to the grammar name
// generating it. Because DTDs are local tree grammars the interpretation is
// unique: an element's name is determined by its tag, and a text node's
// name is the String name attached to its parent element.

#ifndef XMLPROJ_DTD_VALIDATOR_H_
#define XMLPROJ_DTD_VALIDATOR_H_

#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "xml/document.h"

namespace xmlproj {

// ℑ: node id -> name id. kNoName for the document node.
struct Interpretation {
  std::vector<NameId> name_of_node;

  NameId operator[](NodeId id) const {
    return name_of_node[static_cast<size_t>(id)];
  }
};

struct ValidationOptions {
  // Check content models (child sequences). When false only the
  // tag->name mapping is computed — used when a document is known valid
  // and only ℑ is needed (e.g. generated XMark documents).
  bool check_content = true;
  // Check #REQUIRED attributes are present.
  bool check_attributes = true;
};

// Validates `doc` against `dtd`; on success returns the interpretation.
Result<Interpretation> Validate(const Document& doc, const Dtd& dtd,
                                const ValidationOptions& options = {});

// Computes ℑ without validating (fails only if a tag is undeclared or a
// text node occurs under an element with no PCDATA in its content model).
Result<Interpretation> Interpret(const Document& doc, const Dtd& dtd);

}  // namespace xmlproj

#endif  // XMLPROJ_DTD_VALIDATOR_H_
