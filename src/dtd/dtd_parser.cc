#include "dtd/dtd_parser.h"

#include <string>
#include <vector>

#include "common/strings.h"

namespace xmlproj {
namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

class DtdParser {
 public:
  explicit DtdParser(std::string_view input) : input_(input) {}

  Status Run(DtdBuilder* builder);

 private:
  Status Error(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') ++line;
    }
    return ParseError(StringPrintf("DTD line %zu: %s", line,
                                   message.c_str()));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }
  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) ++pos_;
  }
  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  Status ParseName(std::string_view* name) {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    *name = input_.substr(start, pos_ - start);
    return Status::Ok();
  }

  Status ParseElementDecl(DtdBuilder* builder);
  Status ParseAttlistDecl(DtdBuilder* builder);
  Status SkipDecl();  // balanced skip of <!ENTITY ...> / <!NOTATION ...>

  // children content: cp ::= (name | choice | seq) ('?'|'*'|'+')?
  Status ParseCp(DtdBuilder* builder, NameId owner, ContentModel* model,
                 int32_t* out);
  Status ParseGroup(DtdBuilder* builder, NameId owner, ContentModel* model,
                    int32_t* out);
  int32_t ApplyOccurrence(ContentModel* model, int32_t node);

  std::string_view input_;
  size_t pos_ = 0;
};

int32_t DtdParser::ApplyOccurrence(ContentModel* model, int32_t node) {
  if (AtEnd()) return node;
  char c = Peek();
  if (c == '*') {
    ++pos_;
    return model->Star(node);
  }
  if (c == '+') {
    ++pos_;
    return model->Plus(node);
  }
  if (c == '?') {
    ++pos_;
    return model->Opt(node);
  }
  return node;
}

Status DtdParser::ParseCp(DtdBuilder* builder, NameId owner,
                          ContentModel* model, int32_t* out) {
  SkipSpace();
  if (AtEnd()) return Error("unexpected end of content model");
  if (Peek() == '(') {
    return ParseGroup(builder, owner, model, out);
  }
  std::string_view name;
  XMLPROJ_RETURN_IF_ERROR(ParseName(&name));
  XMLPROJ_ASSIGN_OR_RETURN(NameId id, builder->DeclareOrFindElement(name));
  *out = ApplyOccurrence(model, model->Name(id));
  return Status::Ok();
}

Status DtdParser::ParseGroup(DtdBuilder* builder, NameId owner,
                             ContentModel* model, int32_t* out) {
  XMLPROJ_RETURN_IF_ERROR(Expect('('));
  SkipSpace();
  // Mixed content starts with #PCDATA.
  if (LookingAt("#PCDATA")) {
    pos_ += 7;
    std::vector<int32_t> alternatives;
    alternatives.push_back(model->Name(builder->StringNameFor(owner)));
    SkipSpace();
    bool has_names = false;
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      SkipSpace();
      std::string_view name;
      XMLPROJ_RETURN_IF_ERROR(ParseName(&name));
      XMLPROJ_ASSIGN_OR_RETURN(NameId id,
                               builder->DeclareOrFindElement(name));
      alternatives.push_back(model->Name(id));
      has_names = true;
      SkipSpace();
    }
    XMLPROJ_RETURN_IF_ERROR(Expect(')'));
    int32_t choice = alternatives.size() == 1
                         ? alternatives[0]
                         : model->Choice(std::move(alternatives));
    // "(#PCDATA)" may omit the star; "(#PCDATA | a)*" requires it.
    if (!AtEnd() && Peek() == '*') {
      ++pos_;
      *out = model->Star(choice);
    } else if (has_names) {
      return Error("mixed content with element names requires a trailing *");
    } else {
      *out = model->Star(choice);
    }
    return Status::Ok();
  }

  std::vector<int32_t> items;
  int32_t first;
  XMLPROJ_RETURN_IF_ERROR(ParseCp(builder, owner, model, &first));
  items.push_back(first);
  SkipSpace();
  char sep = 0;
  while (!AtEnd() && (Peek() == ',' || Peek() == '|')) {
    if (sep == 0) {
      sep = Peek();
    } else if (Peek() != sep) {
      return Error("cannot mix ',' and '|' at the same level");
    }
    ++pos_;
    int32_t item;
    XMLPROJ_RETURN_IF_ERROR(ParseCp(builder, owner, model, &item));
    items.push_back(item);
    SkipSpace();
  }
  XMLPROJ_RETURN_IF_ERROR(Expect(')'));
  int32_t group;
  if (items.size() == 1) {
    group = items[0];
  } else if (sep == '|') {
    group = model->Choice(std::move(items));
  } else {
    group = model->Seq(std::move(items));
  }
  *out = ApplyOccurrence(model, group);
  return Status::Ok();
}

Status DtdParser::ParseElementDecl(DtdBuilder* builder) {
  // pos_ is just past "<!ELEMENT".
  SkipSpace();
  std::string_view tag;
  XMLPROJ_RETURN_IF_ERROR(ParseName(&tag));
  XMLPROJ_ASSIGN_OR_RETURN(NameId id, builder->DeclareElement(tag));
  // Parse into a local model: declaring forward-referenced elements while
  // parsing may reallocate the production table, so a pointer obtained via
  // MutableContent up-front would dangle.
  ContentModel model;
  SkipSpace();
  if (LookingAt("EMPTY")) {
    pos_ += 5;
    // Empty model: root stays -1, matcher accepts only the empty sequence.
  } else if (LookingAt("ANY")) {
    pos_ += 3;
    model.set_root(model.Any());
  } else if (!AtEnd() && Peek() == '(') {
    int32_t root;
    XMLPROJ_RETURN_IF_ERROR(ParseGroup(builder, id, &model, &root));
    model.set_root(root);
  } else {
    return Error("expected EMPTY, ANY or a content model for element '" +
                 std::string(tag) + "'");
  }
  *builder->MutableContent(id) = std::move(model);
  SkipSpace();
  return Expect('>');
}

Status DtdParser::ParseAttlistDecl(DtdBuilder* builder) {
  // pos_ is just past "<!ATTLIST".
  SkipSpace();
  std::string_view tag;
  XMLPROJ_RETURN_IF_ERROR(ParseName(&tag));
  XMLPROJ_ASSIGN_OR_RETURN(NameId id, builder->DeclareOrFindElement(tag));
  while (true) {
    SkipSpace();
    if (AtEnd()) return Error("unterminated ATTLIST");
    if (Peek() == '>') {
      ++pos_;
      return Status::Ok();
    }
    AttributeDecl decl;
    std::string_view name;
    XMLPROJ_RETURN_IF_ERROR(ParseName(&name));
    decl.name = std::string(name);
    SkipSpace();
    // Type: a name (CDATA, ID, IDREF, ...) or an enumeration.
    if (!AtEnd() && Peek() == '(') {
      int depth = 0;
      while (!AtEnd()) {
        if (Peek() == '(') ++depth;
        if (Peek() == ')' && --depth == 0) {
          ++pos_;
          break;
        }
        ++pos_;
      }
    } else {
      std::string_view type;
      XMLPROJ_RETURN_IF_ERROR(ParseName(&type));
      if (type == "NOTATION") {
        SkipSpace();
        if (!AtEnd() && Peek() == '(') {
          while (!AtEnd() && Peek() != ')') ++pos_;
          if (!AtEnd()) ++pos_;
        }
      }
    }
    SkipSpace();
    // Default declaration.
    if (LookingAt("#REQUIRED")) {
      pos_ += 9;
      decl.required = true;
    } else if (LookingAt("#IMPLIED")) {
      pos_ += 8;
    } else {
      if (LookingAt("#FIXED")) {
        pos_ += 6;
        SkipSpace();
      }
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected default value in ATTLIST");
      }
      char quote = Peek();
      ++pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated default value");
      ++pos_;
    }
    builder->AddAttribute(id, std::move(decl));
  }
}

Status DtdParser::SkipDecl() {
  // pos_ is at "<!"; skip to the matching '>' respecting quotes.
  while (!AtEnd()) {
    char c = Peek();
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated literal in declaration");
      ++pos_;
    } else if (c == '>') {
      ++pos_;
      return Status::Ok();
    } else {
      ++pos_;
    }
  }
  return Error("unterminated declaration");
}

Status DtdParser::Run(DtdBuilder* builder) {
  while (true) {
    SkipSpace();
    if (AtEnd()) return Status::Ok();
    if (LookingAt("<!--")) {
      size_t end = input_.find("-->", pos_ + 4);
      if (end == std::string_view::npos) return Error("unterminated comment");
      pos_ = end + 3;
    } else if (LookingAt("<!ELEMENT")) {
      pos_ += 9;
      XMLPROJ_RETURN_IF_ERROR(ParseElementDecl(builder));
    } else if (LookingAt("<!ATTLIST")) {
      pos_ += 9;
      XMLPROJ_RETURN_IF_ERROR(ParseAttlistDecl(builder));
    } else if (LookingAt("<!ENTITY") || LookingAt("<!NOTATION")) {
      XMLPROJ_RETURN_IF_ERROR(SkipDecl());
    } else if (LookingAt("<?")) {
      size_t end = input_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) {
        return Error("unterminated processing instruction");
      }
      pos_ = end + 2;
    } else if (Peek() == '%') {
      return Error("parameter entities are not supported");
    } else {
      return Error("unexpected content in DTD");
    }
  }
}

}  // namespace

Result<Dtd> ParseDtd(std::string_view dtd_text, std::string_view root_tag) {
  DtdBuilder builder;
  DtdParser parser(dtd_text);
  XMLPROJ_RETURN_IF_ERROR(parser.Run(&builder));
  return builder.Build(root_tag);
}

}  // namespace xmlproj
