#include "dtd/content_model.h"

#include <algorithm>
#include <cassert>

namespace xmlproj {

int32_t ContentModel::Add(RegexNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t ContentModel::Epsilon() {
  RegexNode n;
  n.kind = RegexKind::kEpsilon;
  return Add(std::move(n));
}

int32_t ContentModel::Name(NameId name) {
  RegexNode n;
  n.kind = RegexKind::kName;
  n.name = name;
  return Add(std::move(n));
}

int32_t ContentModel::Seq(std::vector<int32_t> children) {
  RegexNode n;
  n.kind = RegexKind::kSeq;
  n.children = std::move(children);
  return Add(std::move(n));
}

int32_t ContentModel::Choice(std::vector<int32_t> children) {
  RegexNode n;
  n.kind = RegexKind::kChoice;
  n.children = std::move(children);
  return Add(std::move(n));
}

int32_t ContentModel::Star(int32_t child) {
  RegexNode n;
  n.kind = RegexKind::kStar;
  n.children = {child};
  return Add(std::move(n));
}

int32_t ContentModel::Plus(int32_t child) {
  RegexNode n;
  n.kind = RegexKind::kPlus;
  n.children = {child};
  return Add(std::move(n));
}

int32_t ContentModel::Opt(int32_t child) {
  RegexNode n;
  n.kind = RegexKind::kOpt;
  n.children = {child};
  return Add(std::move(n));
}

int32_t ContentModel::Any() {
  RegexNode n;
  n.kind = RegexKind::kAny;
  return Add(std::move(n));
}

NameSet ContentModel::CollectNames(size_t universe_size,
                                   const NameSet* any_names) const {
  NameSet out(universe_size);
  for (const RegexNode& n : nodes_) {
    if (n.kind == RegexKind::kName) {
      out.Add(n.name);
    } else if (n.kind == RegexKind::kAny && any_names != nullptr) {
      out |= *any_names;
    }
  }
  return out;
}

bool ContentModel::ContainsAny() const {
  for (const RegexNode& n : nodes_) {
    if (n.kind == RegexKind::kAny) return true;
  }
  return false;
}

namespace {

bool ContainsChoice(const ContentModel& model, int32_t index) {
  const RegexNode& n = model.node(index);
  if (n.kind == RegexKind::kChoice) return true;
  for (int32_t c : n.children) {
    if (ContainsChoice(model, c)) return true;
  }
  return false;
}

// A factor is *-guarded if it is starred (the union, if any, is under the
// star) or contains no union at all.
bool FactorIsStarGuarded(const ContentModel& model, int32_t index) {
  const RegexNode& n = model.node(index);
  if (n.kind == RegexKind::kStar || n.kind == RegexKind::kPlus) return true;
  return !ContainsChoice(model, index);
}

}  // namespace

bool ContentModel::IsStarGuarded() const {
  if (root_ < 0) return true;
  const RegexNode& top = node(root_);
  if (top.kind == RegexKind::kSeq) {
    return std::all_of(top.children.begin(), top.children.end(),
                       [this](int32_t c) {
                         return FactorIsStarGuarded(*this, c);
                       });
  }
  return FactorIsStarGuarded(*this, root_);
}

std::string ContentModel::ToString(
    const std::vector<std::string>& name_strings) const {
  if (root_ < 0) return "EMPTY";
  std::string out;
  // Local recursive lambda via explicit stack-free recursion helper.
  struct Printer {
    const ContentModel& model;
    const std::vector<std::string>& names;
    std::string* out;
    void Print(int32_t index) {
      const RegexNode& n = model.node(index);
      switch (n.kind) {
        case RegexKind::kEpsilon:
          out->append("()");
          break;
        case RegexKind::kAny:
          out->append("ANY");
          break;
        case RegexKind::kName:
          out->append(names[static_cast<size_t>(n.name)]);
          break;
        case RegexKind::kSeq:
        case RegexKind::kChoice: {
          const char* sep = n.kind == RegexKind::kSeq ? ", " : " | ";
          out->push_back('(');
          for (size_t i = 0; i < n.children.size(); ++i) {
            if (i > 0) out->append(sep);
            Print(n.children[i]);
          }
          out->push_back(')');
          break;
        }
        case RegexKind::kStar:
          Print(n.children[0]);
          out->push_back('*');
          break;
        case RegexKind::kPlus:
          Print(n.children[0]);
          out->push_back('+');
          break;
        case RegexKind::kOpt:
          Print(n.children[0]);
          out->push_back('?');
          break;
      }
    }
  };
  Printer{*this, name_strings, &out}.Print(root_);
  return out;
}

ContentMatcher::BuildResult ContentMatcher::Build(const ContentModel& model,
                                                  int32_t index) {
  const RegexNode& n = model.node(index);
  BuildResult r;
  switch (n.kind) {
    case RegexKind::kEpsilon:
      r.nullable = true;
      break;
    case RegexKind::kName:
    case RegexKind::kAny: {
      int32_t pos = static_cast<int32_t>(positions_.size());
      positions_.push_back(
          Position{n.kind == RegexKind::kAny ? kNoName : n.name});
      follow_.emplace_back();
      r.nullable = false;
      r.first = {pos};
      r.last = {pos};
      if (n.kind == RegexKind::kAny) {
        // ANY repeats: position follows itself.
        follow_[static_cast<size_t>(pos)].push_back(pos);
        r.nullable = true;
      }
      break;
    }
    case RegexKind::kSeq: {
      r.nullable = true;
      for (int32_t c : n.children) {
        BuildResult cr = Build(model, c);
        // follow(last of prefix) += first(cr)
        for (int32_t l : r.last) {
          auto& f = follow_[static_cast<size_t>(l)];
          f.insert(f.end(), cr.first.begin(), cr.first.end());
        }
        if (r.nullable) {
          r.first.insert(r.first.end(), cr.first.begin(), cr.first.end());
        }
        if (cr.nullable) {
          r.last.insert(r.last.end(), cr.last.begin(), cr.last.end());
        } else {
          r.last = std::move(cr.last);
        }
        r.nullable = r.nullable && cr.nullable;
      }
      break;
    }
    case RegexKind::kChoice: {
      r.nullable = false;
      for (int32_t c : n.children) {
        BuildResult cr = Build(model, c);
        r.nullable = r.nullable || cr.nullable;
        r.first.insert(r.first.end(), cr.first.begin(), cr.first.end());
        r.last.insert(r.last.end(), cr.last.begin(), cr.last.end());
      }
      break;
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOpt: {
      BuildResult cr = Build(model, n.children[0]);
      if (n.kind != RegexKind::kOpt) {
        for (int32_t l : cr.last) {
          auto& f = follow_[static_cast<size_t>(l)];
          f.insert(f.end(), cr.first.begin(), cr.first.end());
        }
      }
      r.nullable = cr.nullable || n.kind != RegexKind::kPlus;
      r.first = std::move(cr.first);
      r.last = std::move(cr.last);
      break;
    }
  }
  return r;
}

ContentMatcher::ContentMatcher(const ContentModel& model,
                               size_t universe_size)
    : universe_size_(universe_size) {
  if (model.empty_model()) {
    nullable_ = true;
    return;
  }
  BuildResult r = Build(model, model.root());
  nullable_ = r.nullable;
  first_ = std::move(r.first);
  accepting_ = std::move(r.last);
  // Deduplicate follow sets (insertions may repeat positions).
  for (auto& f : follow_) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  std::sort(first_.begin(), first_.end());
  first_.erase(std::unique(first_.begin(), first_.end()), first_.end());
  std::sort(accepting_.begin(), accepting_.end());
  accepting_.erase(std::unique(accepting_.begin(), accepting_.end()),
                   accepting_.end());
}

ContentMatcher::MatchState ContentMatcher::StartState() const {
  MatchState state;
  state.positions.assign(positions_.size(), false);
  return state;
}

void ContentMatcher::Advance(MatchState* state, NameId child) const {
  if (state->dead) return;
  std::vector<bool> next(positions_.size(), false);
  bool any = false;
  auto try_enter = [this, child, &next, &any](int32_t p) {
    const Position& pos = positions_[static_cast<size_t>(p)];
    if (pos.name == kNoName || pos.name == child) {
      next[static_cast<size_t>(p)] = true;
      any = true;
    }
  };
  if (state->at_start) {
    for (int32_t p : first_) try_enter(p);
    state->at_start = false;
  } else {
    for (size_t p = 0; p < state->positions.size(); ++p) {
      if (!state->positions[p]) continue;
      for (int32_t q : follow_[p]) try_enter(q);
    }
  }
  state->positions = std::move(next);
  if (!any) state->dead = true;
}

bool ContentMatcher::Accepts(const MatchState& state) const {
  if (state.dead) return false;
  if (state.at_start) return nullable_;
  for (int32_t p : accepting_) {
    if (state.positions[static_cast<size_t>(p)]) return true;
  }
  return false;
}

bool ContentMatcher::Matches(std::span<const NameId> children) const {
  if (children.empty()) return nullable_;
  // Subset simulation over positions.
  std::vector<bool> current(positions_.size(), false);
  bool any_current = false;
  for (int32_t p : first_) {
    const Position& pos = positions_[static_cast<size_t>(p)];
    if (pos.name == kNoName || pos.name == children[0]) {
      current[static_cast<size_t>(p)] = true;
      any_current = true;
    }
  }
  for (size_t i = 1; i < children.size(); ++i) {
    if (!any_current) return false;
    std::vector<bool> next(positions_.size(), false);
    any_current = false;
    for (size_t p = 0; p < current.size(); ++p) {
      if (!current[p]) continue;
      for (int32_t q : follow_[p]) {
        const Position& pos = positions_[static_cast<size_t>(q)];
        if (pos.name == kNoName || pos.name == children[i]) {
          next[static_cast<size_t>(q)] = true;
          any_current = true;
        }
      }
    }
    current = std::move(next);
  }
  for (int32_t p : accepting_) {
    if (current[static_cast<size_t>(p)]) return true;
  }
  return false;
}

}  // namespace xmlproj
