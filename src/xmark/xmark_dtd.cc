#include "xmark/xmark_dtd.h"

#include "dtd/dtd_parser.h"

namespace xmlproj {

std::string_view XMarkDtdText() {
  static constexpr char kDtd[] = R"DTD(
<!-- XMark auction DTD (Schmidt et al., VLDB 2002). -->
<!ELEMENT site (regions, categories, catgraph, people, open_auctions,
                closed_auctions)>

<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>

<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist (listitem)*>
<!ELEMENT listitem (text | parlist)*>

<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED to IDREF #REQUIRED>

<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>

<!ELEMENT item (location, quantity, name, payment, description, shipping,
                incategory+, mailbox)>
<!ATTLIST item id ID #REQUIRED
               featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>

<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>

<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?,
                  creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>

<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?,
                        itemref, seller, annotation, quantity, type,
                        interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT annotation (author, description?, happiness)>
<!ELEMENT author EMPTY>
<!ATTLIST author person IDREF #REQUIRED>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>

<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity,
                          type, annotation?)>
<!ELEMENT price (#PCDATA)>
)DTD";
  return kDtd;
}

Result<Dtd> LoadXMarkDtd() { return ParseDtd(XMarkDtdText(), "site"); }

}  // namespace xmlproj
