// The DTD corpus of the W3C "XML Query Use Cases" [3], which §4.1 uses to
// argue that the Def 4.3 properties are common in practice ("among the ten
// DTDs defined in the Use Cases, seven are both non-recursive and
// *-guarded, one is only *-guarded, one is only non-recursive, and just
// one does not satisfy either property"; five of ten parent-unambiguous).
//
// The DTDs below are good-faith reconstructions from the use-case
// documents (the originals shipped as prose + schemas); each entry records
// the use-case name and root. usecases_test.cc classifies the corpus with
// the library's property detectors and EXPERIMENTS.md compares the tallies
// with the paper's.

#ifndef XMLPROJ_XMARK_USECASES_H_
#define XMLPROJ_XMARK_USECASES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"

namespace xmlproj {

struct UseCaseDtd {
  std::string name;  // the use case's name in [3], e.g. "XMP"
  std::string root;
  std::string dtd_text;
};

// The ten reconstructed use-case DTDs.
const std::vector<UseCaseDtd>& UseCaseDtds();

// Parses one entry.
Result<Dtd> LoadUseCaseDtd(const UseCaseDtd& entry);

}  // namespace xmlproj

#endif  // XMLPROJ_XMARK_USECASES_H_
