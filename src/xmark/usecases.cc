#include "xmark/usecases.h"

#include "dtd/dtd_parser.h"

namespace xmlproj {

const std::vector<UseCaseDtd>& UseCaseDtds() {
  static const std::vector<UseCaseDtd>* kDtds = new std::vector<UseCaseDtd>{
      // XMP: the bibliography running example.
      {"XMP", "bib", R"(
        <!ELEMENT bib (book*)>
        <!ELEMENT book (title, (author+ | editor+), publisher, price)>
        <!ATTLIST book year CDATA #REQUIRED>
        <!ELEMENT author (last, first)>
        <!ELEMENT editor (last, first, affiliation)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT last (#PCDATA)>
        <!ELEMENT first (#PCDATA)>
        <!ELEMENT affiliation (#PCDATA)>
        <!ELEMENT publisher (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
      )"},
      // TREE: a book whose sections nest recursively.
      {"TREE", "book", R"(
        <!ELEMENT book (title, author+, section*)>
        <!ELEMENT section (title, (p | figure | section)*)>
        <!ELEMENT figure (title, image)>
        <!ATTLIST figure width CDATA #IMPLIED height CDATA #IMPLIED>
        <!ELEMENT image EMPTY>
        <!ATTLIST image source CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT p (#PCDATA)>
      )"},
      // SEQ: a surgical report whose section order matters.
      {"SEQ", "report", R"(
        <!ELEMENT report (section*)>
        <!ELEMENT report.title (#PCDATA)>
        <!ELEMENT section (section.title, section.content)>
        <!ELEMENT section.title (#PCDATA)>
        <!ELEMENT section.content (#PCDATA | anesthesia | prep
                                    | incision | action | observation)*>
        <!ELEMENT anesthesia (#PCDATA)>
        <!ELEMENT prep (#PCDATA | action)*>
        <!ELEMENT incision (#PCDATA | geography | instrument)*>
        <!ELEMENT action (#PCDATA | instrument)*>
        <!ELEMENT observation (#PCDATA)>
        <!ELEMENT geography (#PCDATA)>
        <!ELEMENT instrument (#PCDATA)>
      )"},
      // R: relational auction data (users / items / bids).
      {"R", "auction-db", R"(
        <!ELEMENT auction-db (users, items, bids)>
        <!ELEMENT users (user_tuple*)>
        <!ELEMENT user_tuple (userid, name, rating?)>
        <!ELEMENT items (item_tuple*)>
        <!ELEMENT item_tuple (itemno, description, offered_by,
                              start_date?, end_date?, reserve_price?)>
        <!ELEMENT bids (bid_tuple*)>
        <!ELEMENT bid_tuple (userid, itemno, bid, bid_date)>
        <!ELEMENT userid (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT rating (#PCDATA)>
        <!ELEMENT itemno (#PCDATA)>
        <!ELEMENT description (#PCDATA)>
        <!ELEMENT offered_by (#PCDATA)>
        <!ELEMENT start_date (#PCDATA)>
        <!ELEMENT end_date (#PCDATA)>
        <!ELEMENT reserve_price (#PCDATA)>
        <!ELEMENT bid (#PCDATA)>
        <!ELEMENT bid_date (#PCDATA)>
      )"},
      // SGML: the classic recursive report markup.
      {"SGML", "report", R"(
        <!ELEMENT report (title, chapter+)>
        <!ELEMENT chapter (title, intro?, section*)>
        <!ELEMENT section (title, intro?, (section | topic)*)>
        <!ELEMENT topic (title, intro?)>
        <!ELEMENT intro (para+)>
        <!ELEMENT para (#PCDATA | graphic)*>
        <!ELEMENT graphic EMPTY>
        <!ATTLIST graphic graphname CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
      )"},
      // STRING: news items searched by string content.
      {"STRING", "news", R"(
        <!ELEMENT news (news_item*)>
        <!ELEMENT news_item (title, content, date, author?, news_agent)>
        <!ELEMENT content (par | figure)*>
        <!ELEMENT par (#PCDATA | quote | footnote)*>
        <!ELEMENT quote (#PCDATA)>
        <!ELEMENT footnote (#PCDATA)>
        <!ELEMENT figure (title, image)>
        <!ELEMENT image EMPTY>
        <!ATTLIST image source CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT date (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT news_agent (#PCDATA)>
      )"},
      // NS: heterogeneous records gathered from several vocabularies.
      {"NS", "records", R"(
        <!ELEMENT records (record*)>
        <!ELEMENT record (customer, bib_entry?, music_entry?)>
        <!ELEMENT customer (name, address)>
        <!ELEMENT bib_entry (title, authors)>
        <!ELEMENT authors (author+)>
        <!ELEMENT music_entry (title, artist, duration)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT address (#PCDATA)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT artist (#PCDATA)>
        <!ELEMENT duration (#PCDATA)>
      )"},
      // PARTS: the recursive part-explosion hierarchy.
      {"PARTS", "partlist", R"(
        <!ELEMENT partlist (part*)>
        <!ELEMENT part (part*)>
        <!ATTLIST part partid CDATA #REQUIRED name CDATA #REQUIRED>
      )"},
      // STRONG: strongly-typed order data.
      {"STRONG", "orders", R"(
        <!ELEMENT orders (order*)>
        <!ELEMENT order (date, shipaddress, billaddress?, lineitem+)>
        <!ATTLIST order orderid CDATA #REQUIRED>
        <!ELEMENT lineitem (product, quantity, price)>
        <!ELEMENT shipaddress (name, street, city, country)>
        <!ELEMENT billaddress (name, street, city, country)>
        <!ELEMENT date (#PCDATA)>
        <!ELEMENT product (#PCDATA)>
        <!ELEMENT quantity (#PCDATA)>
        <!ELEMENT price (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT street (#PCDATA)>
        <!ELEMENT city (#PCDATA)>
        <!ELEMENT country (#PCDATA)>
      )"},
      // TEXT: company profiles and press mixed-markup articles.
      {"TEXT", "company-db", R"(
        <!ELEMENT company-db (company*, article*)>
        <!ELEMENT company (name, ticker_symbol, description)>
        <!ELEMENT article (headline, dateline?, body)>
        <!ELEMENT body (par+)>
        <!ELEMENT par (#PCDATA | emph | cite)*>
        <!ELEMENT emph (#PCDATA)>
        <!ELEMENT cite (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT ticker_symbol (#PCDATA)>
        <!ELEMENT description (#PCDATA)>
        <!ELEMENT headline (#PCDATA)>
        <!ELEMENT dateline (#PCDATA)>
      )"},
  };
  return *kDtds;
}

Result<Dtd> LoadUseCaseDtd(const UseCaseDtd& entry) {
  return ParseDtd(entry.dtd_text, entry.root);
}

}  // namespace xmlproj
