// The XMark auction DTD (Schmidt et al., VLDB'02), embedded so benchmarks
// and examples need no external files, plus a helper to parse it into the
// local tree grammar.

#ifndef XMLPROJ_XMARK_XMARK_DTD_H_
#define XMLPROJ_XMARK_XMARK_DTD_H_

#include <string_view>

#include "common/status.h"
#include "dtd/dtd.h"

namespace xmlproj {

// The DTD text (root element: site).
std::string_view XMarkDtdText();

// Parses the embedded DTD.
Result<Dtd> LoadXMarkDtd();

}  // namespace xmlproj

#endif  // XMLPROJ_XMARK_XMARK_DTD_H_
