#include "xmark/queries.h"

namespace xmlproj {

const std::vector<BenchmarkQuery>& XMarkQueries() {
  static const std::vector<BenchmarkQuery>* kQueries =
      new std::vector<BenchmarkQuery>{
          {"QM01", QueryLanguage::kXQuery,
           "for $b in /site/people/person[@id = 'person0'] "
           "return $b/name/text()",
           "highly selective: one person's name"},
          {"QM02", QueryLanguage::kXQuery,
           "for $b in /site/open_auctions/open_auction "
           "return <increase>{$b/bidder[1]/increase/text()}</increase>",
           "open auctions only; first bidder increase"},
          {"QM03", QueryLanguage::kXQuery,
           "for $b in /site/open_auctions/open_auction "
           "where $b/bidder[1]/increase/text() * 2 "
           "      <= $b/bidder[last()]/increase/text() "
           "return <increase first=\"{$b/bidder[1]/increase/text()}\" "
           "last=\"{$b/bidder[last()]/increase/text()}\"/>",
           "open auctions; position predicates"},
          {"QM04", QueryLanguage::kXQuery,
           "for $b in /site/open_auctions/open_auction "
           "where some $pr in $b/bidder/personref "
           "      satisfies $pr/@person = 'person3' "
           "return <history>{$b/reserve/text()}</history>",
           "open auctions; existential quantifier over bidders"},
          {"QM05", QueryLanguage::kXQuery,
           "let $list := for $i in /site/closed_auctions/closed_auction "
           "             where $i/price/text() >= 40 return $i/price "
           "return count($list)",
           "closed auction prices only"},
          {"QM06", QueryLanguage::kXQuery,
           "for $b in /site/regions return count($b//item)",
           "very selective: item structure only (99.7% pruned in the "
           "paper)"},
          {"QM07", QueryLanguage::kXQuery,
           "for $p in /site "
           "return count($p//description) + count($p//annotation) + "
           "count($p//emailaddress)",
           "three // counts; node structure only"},
          {"QM08", QueryLanguage::kXQuery,
           "for $p in /site/people/person "
           "let $a := for $t in /site/closed_auctions/closed_auction "
           "          where $t/buyer/@person = $p/@id return $t "
           "return <item person=\"{$p/name/text()}\">{count($a)}</item>",
           "person/closed-auction join"},
          {"QM09", QueryLanguage::kXQuery,
           "for $p in /site/people/person "
           "let $a := for $t in /site/closed_auctions/closed_auction "
           "          let $n := for $t2 in /site/regions/europe/item "
           "                    where $t/itemref/@item = $t2/@id "
           "                    return $t2 "
           "          where $p/@id = $t/buyer/@person "
           "          return <item>{$n/name/text()}</item> "
           "return <person name=\"{$p/name/text()}\">{$a}</person>",
           "three-way join (persons, closed auctions, europe items)"},
          {"QM10", QueryLanguage::kXQuery,
           "for $i in /site/categories/category "
           "let $p := for $t in /site/people/person "
           "          where $t/profile/interest/@category = $i/@id "
           "          return <personne>"
           "<statistiques><sexe>{$t/profile/gender/text()}</sexe>"
           "<age>{$t/profile/age/text()}</age>"
           "<education>{$t/profile/education/text()}</education>"
           "<revenu>{$t/profile/@income}</revenu></statistiques>"
           "<coordonnees><nom>{$t/name/text()}</nom>"
           "<rue>{$t/address/street/text()}</rue>"
           "<ville>{$t/address/city/text()}</ville>"
           "<pays>{$t/address/country/text()}</pays>"
           "<courrier>{$t/emailaddress/text()}</courrier>"
           "</coordonnees></personne> "
           "return <categorie>{<id>{$i/name/text()}</id>}{$p}</categorie>",
           "grouping query touching most of the person structure"},
          {"QM11", QueryLanguage::kXQuery,
           "for $p in /site/people/person "
           "let $l := for $i in /site/open_auctions/open_auction/initial "
           "          where $p/profile/@income > 5000 * $i/text() "
           "          return $i "
           "return <items name=\"{$p/name/text()}\">{count($l)}</items>",
           "value join on income vs initial"},
          {"QM12", QueryLanguage::kXQuery,
           "for $p in /site/people/person "
           "let $l := for $i in /site/open_auctions/open_auction/initial "
           "          where $p/profile/@income > 5000 * $i/text() "
           "          return $i "
           "where $p/profile/@income > 50000 "
           "return <items person=\"{$p/name/text()}\">{count($l)}</items>",
           "QM11 with an income filter"},
          {"QM13", QueryLanguage::kXQuery,
           "for $i in /site/regions/australia/item "
           "return <item name=\"{$i/name/text()}\">{$i/description}</item>",
           "australia items with whole descriptions materialized"},
          {"QM14", QueryLanguage::kXQuery,
           "for $i in /site//item "
           "where contains(string($i/description), 'gold') "
           "return $i/name/text()",
           "the paper's weak-pruning outlier: whole descriptions needed"},
          {"QM15", QueryLanguage::kXQuery,
           "for $a in /site/closed_auctions/closed_auction/annotation/"
           "description/parlist/listitem/parlist/listitem/text/emph/"
           "keyword/text() "
           "return <text>{$a}</text>",
           "long child path deep into annotations"},
          {"QM16", QueryLanguage::kXQuery,
           "for $a in /site/closed_auctions/closed_auction "
           "where $a/annotation/description/parlist/listitem/parlist/"
           "listitem/text/emph/keyword/text() "
           "return <person id=\"{$a/seller/@person}\"/>",
           "QM15's path as a predicate (rephrased from not(empty(..)))"},
          {"QM17", QueryLanguage::kXQuery,
           "for $p in /site/people/person "
           "where empty($p/homepage/text()) "
           "return <person name=\"{$p/name/text()}\"/>",
           "negative structural condition (empty)"},
          {"QM18", QueryLanguage::kXQuery,
           "for $i in /site/open_auctions/open_auction "
           "return $i/reserve/text() * 2.20371",
           "arithmetic over reserves (rephrased from a user function)"},
          {"QM19", QueryLanguage::kXQuery,
           "for $b in /site/regions//item "
           "let $k := $b/name/text() "
           "order by $b/location/text() "
           "return <item name=\"{$k}\">{$b/location/text()}</item>",
           "order by over all items"},
          {"QM20", QueryLanguage::kXQuery,
           "<result>"
           "<preferred>{count(/site/people/person/profile["
           "@income >= 100000])}</preferred>"
           "<standard>{count(/site/people/person/profile["
           "@income < 100000 and @income >= 30000])}</standard>"
           "<challenge>{count(/site/people/person/profile["
           "@income < 30000])}</challenge>"
           "<na>{count(/site/people/person[not(profile/@income)])}</na>"
           "</result>",
           "income histogram over profiles"},
      };
  return *kQueries;
}

const std::vector<BenchmarkQuery>& XPathMarkQueries() {
  static const std::vector<BenchmarkQuery>* kQueries =
      new std::vector<BenchmarkQuery>{
          // --- Child/descendant paths (XPathMark A group) ----------------
          {"QP01", QueryLanguage::kXPath,
           "/site/closed_auctions/closed_auction/annotation/description/"
           "text/keyword",
           "long child path"},
          {"QP02", QueryLanguage::kXPath, "//closed_auction//keyword",
           "double descendant"},
          {"QP03", QueryLanguage::kXPath,
           "/site/closed_auctions/closed_auction//keyword",
           "child prefix + descendant"},
          {"QP04", QueryLanguage::kXPath,
           "/site/closed_auctions/closed_auction[annotation/description/"
           "text/keyword]/date",
           "structural predicate, precise"},
          {"QP05", QueryLanguage::kXPath,
           "/site/closed_auctions/closed_auction[descendant::keyword]/"
           "date",
           "descendant predicate"},
          {"QP06", QueryLanguage::kXPath,
           "/site/people/person[profile/gender and profile/age]/name",
           "conjunctive predicate (kept as disjunction by the "
           "approximation)"},
          {"QP07", QueryLanguage::kXPath,
           "/site/people/person[phone or homepage]/name",
           "disjunctive predicate"},
          {"QP08", QueryLanguage::kXPath,
           "/site/people/person[address and (phone or homepage) and "
           "(creditcard or profile)]/name",
           "nested boolean predicate"},
          // --- Backward and horizontal axes (B group) --------------------
          {"QP09", QueryLanguage::kXPath,
           "/site/regions/*/item[parent::namerica or parent::samerica]/"
           "name",
           "parent axis in predicates (§4.3: prunes to ~7.5%)"},
          {"QP10", QueryLanguage::kXPath,
           "//keyword/ancestor::listitem/text/keyword",
           "ancestor axis mid-path"},
          {"QP11", QueryLanguage::kXPath,
           "/site/open_auctions/open_auction/bidder[following-sibling::"
           "bidder]/increase",
           "following-sibling predicate (§4.3: prunes to ~7.5%)"},
          {"QP12", QueryLanguage::kXPath,
           "/site/open_auctions/open_auction/bidder[preceding-sibling::"
           "bidder]/increase",
           "preceding-sibling predicate"},
          {"QP13", QueryLanguage::kXPath, "//*",
           "the paper's unselective query: the whole document is kept"},
          {"QP14", QueryLanguage::kXPath,
           "/site/regions/*/item[following::item][preceding::item]/name",
           "following and preceding axes in predicates"},
          {"QP15", QueryLanguage::kXPath,
           "//person[profile/@income]/name", "attribute existence"},
          {"QP16", QueryLanguage::kXPath,
           "/site/open_auctions/open_auction[bidder and not(bidder/"
           "preceding-sibling::bidder)]/interval",
           "negation with horizontal axis"},
          // --- Functions, values, positions (C/D groups) -----------------
          {"QP17", QueryLanguage::kXPath,
           "/site/people/person[profile/@income = 99.96]/name",
           "value comparison on an attribute"},
          {"QP18", QueryLanguage::kXPath,
           "/site/open_auctions/open_auction[bidder[1]/increase = "
           "bidder[last()]/increase]/itemref",
           "position predicates"},
          {"QP19", QueryLanguage::kXPath,
           "//person[contains(emailaddress, 'example')]/name",
           "string function over values"},
          {"QP20", QueryLanguage::kXPath,
           "/site/open_auctions/open_auction[count(bidder) > 3]/reserve",
           "count in predicate"},
          {"QP21", QueryLanguage::kXPath,
           "//item[quantity > 1][contains(description, 'gold')]/name",
           "value + string predicates: whole descriptions needed"},
          {"QP22", QueryLanguage::kXPath,
           "/site/people/person[not(homepage)]/name",
           "negation of structure"},
          {"QP23", QueryLanguage::kXPath,
           "/site/regions/*/item[1]/name",
           "positional selection per region"},
      };
  return *kQueries;
}

std::vector<BenchmarkQuery> AllBenchmarkQueries() {
  std::vector<BenchmarkQuery> out = XMarkQueries();
  const std::vector<BenchmarkQuery>& qp = XPathMarkQueries();
  out.insert(out.end(), qp.begin(), qp.end());
  return out;
}

}  // namespace xmlproj
