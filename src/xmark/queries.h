// The benchmark query suites used in the paper's §6 evaluation:
//   - QM01..QM20: the twenty XMark queries [17] (XQuery), transcribed into
//     the FLWR-core dialect of this library (user-defined functions and
//     `some ... satisfies` are rephrased with equivalent FLWR shapes; the
//     navigational structure — what the projector sees — is preserved).
//   - QP01..QP23: an XPathMark-style suite [12] over the same data,
//     covering every XPath axis (including the backward and horizontal
//     ones), nested predicates, boolean connectives, functions and
//     position predicates. QP09/QP11 are the sibling-axis queries the
//     paper's §4.3 cites (pruned to 7.5%).

#ifndef XMLPROJ_XMARK_QUERIES_H_
#define XMLPROJ_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace xmlproj {

enum class QueryLanguage { kXPath, kXQuery };

struct BenchmarkQuery {
  std::string id;          // "QM01", "QP13", ...
  QueryLanguage language;
  std::string text;
  // What the paper's discussion predicts about this query's selectivity,
  // for EXPERIMENTS.md cross-referencing.
  std::string note;
};

// The XMark XQuery suite.
const std::vector<BenchmarkQuery>& XMarkQueries();

// The XPathMark-style XPath suite.
const std::vector<BenchmarkQuery>& XPathMarkQueries();

// Both suites, QM first.
std::vector<BenchmarkQuery> AllBenchmarkQueries();

}  // namespace xmlproj

#endif  // XMLPROJ_XMARK_QUERIES_H_
