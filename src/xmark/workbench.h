// Shared harness for running and analyzing benchmark queries (used by the
// bench/ binaries, the examples, and the integration tests).

#ifndef XMLPROJ_XMARK_WORKBENCH_H_
#define XMLPROJ_XMARK_WORKBENCH_H_

#include <string>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "xml/document.h"
#include "xmark/queries.h"

namespace xmlproj {

struct QueryRun {
  std::string serialized;  // serialized query result
  double seconds = 0;      // wall-clock evaluation time
  size_t result_items = 0;
  // Peak engine memory: document arena + evaluator materializations.
  size_t memory_bytes = 0;
};

// Evaluates the query (XPath or XQuery) on `doc` and measures it.
Result<QueryRun> RunBenchmarkQuery(const BenchmarkQuery& query,
                                   const Document& doc);

// Infers the type projector for the query against `dtd` (XPath queries are
// materialized — benchmark results are serialized).
Result<NameSet> AnalyzeBenchmarkQuery(const BenchmarkQuery& query,
                                      const Dtd& dtd);

// Monotonic wall clock in seconds.
double NowSeconds();

}  // namespace xmlproj

#endif  // XMLPROJ_XMARK_WORKBENCH_H_
