// Multi-document XMark corpora and workload projectors for the parallel
// pruning pipeline (projection/pipeline.h).
//
// The journal version's multi-query workloads prune one document for a
// *bunch* of queries; serving heavy traffic means doing that for many
// documents at once. These helpers generate a corpus of independent XMark
// documents (distinct seeds, same scale) and the projectors — per query
// and merged (projectors are closed under union, §1.2) — for a small
// dashboard-style workload, shared by the throughput bench, the
// parallel_prune_tool example, and the pipeline tests.

#ifndef XMLPROJ_XMARK_CORPUS_H_
#define XMLPROJ_XMARK_CORPUS_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "xmark/queries.h"

namespace xmlproj {

struct XMarkCorpusOptions {
  int documents = 8;
  double scale = 0.002;      // per-document xmlgen scale (~0.2MB each)
  uint64_t seed = 20060912;  // document i uses seed + i
};

// Serialized XMark documents, one per index.
std::vector<std::string> GenerateXMarkCorpus(const XMarkCorpusOptions& options);

size_t CorpusBytes(std::span<const std::string> corpus);

// The mixed XPath + XQuery workload used by examples/multi_query_workload
// (bids, sellers, cheap, gold).
const std::vector<BenchmarkQuery>& XMarkDashboardWorkload();

// Per-query projectors for `workload` against `dtd`, aligned by index.
Result<std::vector<NameSet>> WorkloadProjectors(
    const Dtd& dtd, std::span<const BenchmarkQuery> workload);

// Union of the per-query projectors (one pruned document serves the whole
// workload).
Result<NameSet> WorkloadProjector(const Dtd& dtd,
                                  std::span<const BenchmarkQuery> workload);

}  // namespace xmlproj

#endif  // XMLPROJ_XMARK_CORPUS_H_
