#include "xmark/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

constexpr const char* kWords[] = {
    "gold",      "silver",    "shakespeare", "honour",   "duteous",
    "amber",     "villainy",  "sovereign",   "embrace",  "reproof",
    "attire",    "glimmer",   "fortune",     "garment",  "penance",
    "merchant",  "bargain",   "vessel",      "harvest",  "lantern",
    "counsel",   "herald",    "quarrel",     "ransom",   "scepter",
    "tapestry",  "vintage",   "wager",       "zephyr",   "mirth",
    "labour",    "kindred",   "jewel",       "ivory",    "homage",
    "gallant",   "fathom",    "ember",       "dagger",   "chalice",
    "banquet",   "anvil",     "beacon",      "cipher",   "dominion",
    "effigy",    "falcon",    "grove",       "hamlet",   "incense",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kCities[] = {"Rome",  "Kyoto",  "Oslo",
                                   "Cairo", "Lima",   "Dakar",
                                   "Perth", "Quito",  "Minsk"};
constexpr const char* kCountries[] = {"Italy", "Japan", "Norway",
                                      "Egypt", "Peru",  "Senegal"};
constexpr const char* kEducation[] = {"High School", "College",
                                      "Graduate School", "Other"};
constexpr const char* kRegions[] = {"africa",   "asia",     "australia",
                                    "europe",   "namerica", "samerica"};

class Generator {
 public:
  explicit Generator(const XMarkOptions& options)
      : rng_(options.seed), counts_(CountsForScale(options.scale)) {}

  Result<Document> Run() {
    builder_.StartElement("site");
    GenerateRegions();
    GenerateCategories();
    GenerateCatgraph();
    GeneratePeople();
    GenerateOpenAuctions();
    GenerateClosedAuctions();
    builder_.EndElement();
    return builder_.Finish();
  }

 private:
  // --- Small helpers ------------------------------------------------------
  std::string Word() { return kWords[rng_.Below(kWordCount)]; }
  std::string Sentence(int min_words, int max_words) {
    int n = rng_.IntIn(min_words, max_words);
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += Word();
    }
    return out;
  }
  void Leaf(const char* tag, const std::string& content) {
    builder_.StartElement(tag);
    if (!content.empty()) builder_.AddText(content);
    builder_.EndElement();
  }
  std::string PersonId(int i) { return StringPrintf("person%d", i); }
  std::string ItemId(int i) { return StringPrintf("item%d", i); }
  std::string CategoryId(int i) { return StringPrintf("category%d", i); }
  std::string RandomPersonRef() {
    return PersonId(rng_.IntIn(0, counts_.persons - 1));
  }
  std::string RandomItemRef() {
    return ItemId(rng_.IntIn(0, counts_.items - 1));
  }
  std::string RandomCategoryRef() {
    return CategoryId(rng_.IntIn(0, counts_.categories - 1));
  }
  std::string Date() {
    return StringPrintf("%02d/%02d/%d", rng_.IntIn(1, 12),
                        rng_.IntIn(1, 28), rng_.IntIn(1998, 2001));
  }
  std::string Money() {
    return StringPrintf("%d.%02d", rng_.IntIn(1, 300),
                        static_cast<int>(rng_.Below(100)));
  }

  // --- Mixed content (the byte-dominant part) ----------------------------
  // text ::= (#PCDATA | bold | keyword | emph)*. `rich` text models the
  // long item descriptions that dominate real XMark files.
  void MixedText(int depth, bool rich) {
    builder_.StartElement("text");
    int pieces = rich ? rng_.IntIn(7, 12) : rng_.IntIn(1, 2);
    int min_words = rich ? 10 : 4;
    int max_words = rich ? 20 : 8;
    for (int i = 0; i < pieces; ++i) {
      builder_.AddText(Sentence(min_words, max_words) + " ");
      if (depth < 3 && rng_.Chance(2, 5)) {
        const char* tag = rng_.Chance(1, 3)   ? "keyword"
                          : rng_.Chance(1, 2) ? "bold"
                                              : "emph";
        builder_.StartElement(tag);
        builder_.AddText(Sentence(1, 3));
        // Markup nests (mixed content is recursive): emph/bold sometimes
        // hold a keyword, which queries like XMark Q15 navigate.
        if (depth < 3 && rng_.Chance(1, 2)) {
          builder_.StartElement("keyword");
          builder_.AddText(Sentence(1, 2));
          builder_.EndElement();
        }
        builder_.EndElement();
      }
    }
    builder_.AddText(Sentence(min_words / 2, max_words / 2));
    builder_.EndElement();
  }

  // description ::= (text | parlist). Item descriptions (`rich`) carry the
  // ~2/3 byte share the paper's §6 relies on.
  void Description(bool rich, int depth = 0) {
    builder_.StartElement("description");
    if (depth < 2 && rng_.Chance(1, 4)) {
      builder_.StartElement("parlist");
      int items = rich ? rng_.IntIn(2, 4) : rng_.IntIn(1, 2);
      for (int i = 0; i < items; ++i) {
        builder_.StartElement("listitem");
        if (depth < 1 && rng_.Chance(1, 4)) {
          builder_.StartElement("parlist");
          builder_.StartElement("listitem");
          MixedText(depth + 2, rich);
          builder_.EndElement();
          builder_.EndElement();
        } else {
          MixedText(depth + 1, rich);
        }
        builder_.EndElement();
      }
      builder_.EndElement();
    } else {
      MixedText(depth, rich);
    }
    builder_.EndElement();
  }

  // --- Sections -----------------------------------------------------------
  void GenerateRegions() {
    builder_.StartElement("regions");
    int next_item = 0;
    for (int r = 0; r < 6; ++r) {
      builder_.StartElement(kRegions[r]);
      // Europe and North America carry a double share, as in xmlgen.
      int share = counts_.items / 8;
      int count = (r == 3 || r == 4) ? 2 * share : share;
      if (r == 5) count = counts_.items - next_item;  // remainder
      count = std::min(count, counts_.items - next_item);
      for (int i = 0; i < count; ++i) {
        GenerateItem(next_item++);
      }
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void GenerateItem(int id) {
    builder_.StartElement("item");
    builder_.AddAttribute("id", ItemId(id));
    if (rng_.Chance(1, 10)) builder_.AddAttribute("featured", "yes");
    Leaf("location", kCountries[rng_.Below(6)]);
    Leaf("quantity", StringPrintf("%d", rng_.IntIn(1, 5)));
    Leaf("name", Sentence(1, 3));
    Leaf("payment", "Creditcard");
    Description(/*rich=*/true);
    Leaf("shipping", "Will ship internationally");
    int cats = rng_.IntIn(1, 3);
    for (int c = 0; c < cats; ++c) {
      builder_.StartElement("incategory");
      builder_.AddAttribute("category", RandomCategoryRef());
      builder_.EndElement();
    }
    builder_.StartElement("mailbox");
    int mails = rng_.IntIn(0, 1);
    for (int m = 0; m < mails; ++m) {
      builder_.StartElement("mail");
      Leaf("from", Sentence(1, 2));
      Leaf("to", Sentence(1, 2));
      Leaf("date", Date());
      MixedText(0, /*rich=*/false);
      builder_.EndElement();
    }
    builder_.EndElement();
    builder_.EndElement();
  }

  void GenerateCategories() {
    builder_.StartElement("categories");
    for (int i = 0; i < counts_.categories; ++i) {
      builder_.StartElement("category");
      builder_.AddAttribute("id", CategoryId(i));
      Leaf("name", Sentence(1, 2));
      Description(/*rich=*/false);
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void GenerateCatgraph() {
    builder_.StartElement("catgraph");
    int edges = counts_.categories;
    for (int i = 0; i < edges; ++i) {
      builder_.StartElement("edge");
      builder_.AddAttribute("from", RandomCategoryRef());
      builder_.AddAttribute("to", RandomCategoryRef());
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void GeneratePeople() {
    builder_.StartElement("people");
    for (int i = 0; i < counts_.persons; ++i) {
      builder_.StartElement("person");
      builder_.AddAttribute("id", PersonId(i));
      Leaf("name", Sentence(2, 2));
      Leaf("emailaddress",
           StringPrintf("mailto:%s@%s.example", Word().c_str(),
                        Word().c_str()));
      if (rng_.Chance(1, 2)) {
        Leaf("phone", StringPrintf("+%d (%d) %d", rng_.IntIn(1, 99),
                                   rng_.IntIn(100, 999),
                                   rng_.IntIn(1000000, 9999999)));
      }
      if (rng_.Chance(1, 2)) {
        builder_.StartElement("address");
        Leaf("street", StringPrintf("%d %s St", rng_.IntIn(1, 99),
                                    Word().c_str()));
        Leaf("city", kCities[rng_.Below(9)]);
        Leaf("country", kCountries[rng_.Below(6)]);
        if (rng_.Chance(1, 3)) Leaf("province", Word());
        Leaf("zipcode", StringPrintf("%d", rng_.IntIn(10000, 99999)));
        builder_.EndElement();
      }
      if (rng_.Chance(1, 2)) {
        Leaf("homepage",
             StringPrintf("http://www.%s.example/~%s", Word().c_str(),
                          Word().c_str()));
      }
      if (rng_.Chance(1, 4)) {
        Leaf("creditcard", StringPrintf("%04d %04d %04d %04d",
                                        rng_.IntIn(0, 9999),
                                        rng_.IntIn(0, 9999),
                                        rng_.IntIn(0, 9999),
                                        rng_.IntIn(0, 9999)));
      }
      if (rng_.Chance(3, 4)) {
        builder_.StartElement("profile");
        builder_.AddAttribute(
            "income", StringPrintf("%d.%02d", rng_.IntIn(9000, 200000),
                                   static_cast<int>(rng_.Below(100))));
        int interests = rng_.IntIn(0, 3);
        for (int k = 0; k < interests; ++k) {
          builder_.StartElement("interest");
          builder_.AddAttribute("category", RandomCategoryRef());
          builder_.EndElement();
        }
        if (rng_.Chance(1, 2)) Leaf("education", kEducation[rng_.Below(4)]);
        if (rng_.Chance(1, 2)) {
          Leaf("gender", rng_.Chance(1, 2) ? "male" : "female");
        }
        Leaf("business", rng_.Chance(1, 2) ? "Yes" : "No");
        if (rng_.Chance(1, 2)) {
          Leaf("age", StringPrintf("%d", rng_.IntIn(18, 90)));
        }
        builder_.EndElement();
      }
      if (rng_.Chance(1, 5) && counts_.open_auctions > 0) {
        builder_.StartElement("watches");
        int watches = rng_.IntIn(1, 3);
        for (int w = 0; w < watches; ++w) {
          builder_.StartElement("watch");
          builder_.AddAttribute(
              "open_auction",
              StringPrintf("open_auction%d",
                           rng_.IntIn(0, counts_.open_auctions - 1)));
          builder_.EndElement();
        }
        builder_.EndElement();
      }
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void GenerateOpenAuctions() {
    builder_.StartElement("open_auctions");
    for (int i = 0; i < counts_.open_auctions; ++i) {
      builder_.StartElement("open_auction");
      builder_.AddAttribute("id", StringPrintf("open_auction%d", i));
      Leaf("initial", Money());
      if (rng_.Chance(1, 2)) Leaf("reserve", Money());
      int bidders = rng_.IntIn(0, 5);
      double increase = 1.5;
      for (int b = 0; b < bidders; ++b) {
        builder_.StartElement("bidder");
        Leaf("date", Date());
        Leaf("time", StringPrintf("%02d:%02d:%02d", rng_.IntIn(0, 23),
                                  rng_.IntIn(0, 59), rng_.IntIn(0, 59)));
        builder_.StartElement("personref");
        builder_.AddAttribute("person", RandomPersonRef());
        builder_.EndElement();
        increase *= rng_.Chance(1, 2) ? 2.0 : 1.0;
        Leaf("increase", StringPrintf("%.2f", increase));
        builder_.EndElement();
      }
      Leaf("current", Money());
      if (rng_.Chance(1, 3)) Leaf("privacy", "Yes");
      builder_.StartElement("itemref");
      builder_.AddAttribute("item", RandomItemRef());
      builder_.EndElement();
      builder_.StartElement("seller");
      builder_.AddAttribute("person", RandomPersonRef());
      builder_.EndElement();
      Annotation();
      Leaf("quantity", StringPrintf("%d", rng_.IntIn(1, 5)));
      Leaf("type", rng_.Chance(1, 2) ? "Regular" : "Featured");
      builder_.StartElement("interval");
      Leaf("start", Date());
      Leaf("end", Date());
      builder_.EndElement();
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  void Annotation() {
    builder_.StartElement("annotation");
    builder_.StartElement("author");
    builder_.AddAttribute("person", RandomPersonRef());
    builder_.EndElement();
    if (rng_.Chance(4, 5)) Description(/*rich=*/false);
    Leaf("happiness", StringPrintf("%d", rng_.IntIn(1, 10)));
    builder_.EndElement();
  }

  void GenerateClosedAuctions() {
    builder_.StartElement("closed_auctions");
    for (int i = 0; i < counts_.closed_auctions; ++i) {
      builder_.StartElement("closed_auction");
      builder_.StartElement("seller");
      builder_.AddAttribute("person", RandomPersonRef());
      builder_.EndElement();
      builder_.StartElement("buyer");
      builder_.AddAttribute("person", RandomPersonRef());
      builder_.EndElement();
      builder_.StartElement("itemref");
      builder_.AddAttribute("item", RandomItemRef());
      builder_.EndElement();
      Leaf("price", Money());
      Leaf("date", Date());
      Leaf("quantity", StringPrintf("%d", rng_.IntIn(1, 5)));
      Leaf("type", rng_.Chance(1, 2) ? "Regular" : "Featured");
      if (rng_.Chance(4, 5)) Annotation();
      builder_.EndElement();
    }
    builder_.EndElement();
  }

  Rng rng_;
  XMarkCounts counts_;
  DocumentBuilder builder_;
};

}  // namespace

XMarkCounts CountsForScale(double scale) {
  auto scaled = [scale](int base) {
    return std::max(1, static_cast<int>(base * scale + 0.5));
  };
  XMarkCounts counts;
  counts.categories = scaled(1000);
  counts.items = scaled(21750);
  counts.persons = scaled(25500);
  counts.open_auctions = scaled(12000);
  counts.closed_auctions = scaled(9750);
  return counts;
}

Result<Document> GenerateXMark(const XMarkOptions& options) {
  Generator generator(options);
  return generator.Run();
}

std::string GenerateXMarkText(const XMarkOptions& options) {
  Generator generator(options);
  auto doc = generator.Run();
  if (!doc.ok()) return "";
  return SerializeDocument(*doc);
}

}  // namespace xmlproj
