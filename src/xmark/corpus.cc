#include "xmark/corpus.h"

#include "xmark/generator.h"
#include "xmark/workbench.h"

namespace xmlproj {

std::vector<std::string> GenerateXMarkCorpus(
    const XMarkCorpusOptions& options) {
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<size_t>(options.documents));
  for (int i = 0; i < options.documents; ++i) {
    XMarkOptions doc_options;
    doc_options.scale = options.scale;
    doc_options.seed = options.seed + static_cast<uint64_t>(i);
    corpus.push_back(GenerateXMarkText(doc_options));
  }
  return corpus;
}

size_t CorpusBytes(std::span<const std::string> corpus) {
  size_t total = 0;
  for (const std::string& doc : corpus) total += doc.size();
  return total;
}

const std::vector<BenchmarkQuery>& XMarkDashboardWorkload() {
  static const std::vector<BenchmarkQuery>* workload =
      new std::vector<BenchmarkQuery>{
          {"bids", QueryLanguage::kXQuery,
           "for $a in /site/open_auctions/open_auction "
           "return <bids>{count($a/bidder)}</bids>",
           ""},
          {"sellers", QueryLanguage::kXPath,
           "/site/open_auctions/open_auction/seller", ""},
          {"cheap", QueryLanguage::kXQuery,
           "for $a in /site/closed_auctions/closed_auction "
           "where $a/price < 40 return $a/price/text()",
           ""},
          {"gold", QueryLanguage::kXPath,
           "//item[contains(description, 'gold')]/name", ""},
      };
  return *workload;
}

Result<std::vector<NameSet>> WorkloadProjectors(
    const Dtd& dtd, std::span<const BenchmarkQuery> workload) {
  std::vector<NameSet> projectors;
  projectors.reserve(workload.size());
  for (const BenchmarkQuery& query : workload) {
    XMLPROJ_ASSIGN_OR_RETURN(NameSet one, AnalyzeBenchmarkQuery(query, dtd));
    one.Add(dtd.root());
    projectors.push_back(std::move(one));
  }
  return projectors;
}

Result<NameSet> WorkloadProjector(const Dtd& dtd,
                                  std::span<const BenchmarkQuery> workload) {
  XMLPROJ_ASSIGN_OR_RETURN(std::vector<NameSet> projectors,
                           WorkloadProjectors(dtd, workload));
  NameSet merged(dtd.name_count());
  merged.Add(dtd.root());
  for (const NameSet& one : projectors) merged |= one;
  return merged;
}

}  // namespace xmlproj
