#include "xmark/workbench.h"

#include <chrono>

#include "common/memory_meter.h"
#include "projection/projection.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

namespace xmlproj {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<QueryRun> RunBenchmarkQuery(const BenchmarkQuery& query,
                                   const Document& doc) {
  QueryRun run;
  MemoryMeter meter;
  meter.AddBaseline(doc.MemoryBytes());
  double start = NowSeconds();
  if (query.language == QueryLanguage::kXQuery) {
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr parsed, ParseXQuery(query.text));
    XQueryEvaluator eval(doc, &meter);
    XMLPROJ_ASSIGN_OR_RETURN(Sequence result, eval.Evaluate(*parsed));
    run.result_items = result.size();
    run.serialized = eval.Serialize(result);
  } else {
    XMLPROJ_ASSIGN_OR_RETURN(LocationPath path, ParseXPath(query.text));
    XPathEvaluator::Options options;
    options.meter = &meter;
    XPathEvaluator eval(doc, std::move(options));
    XMLPROJ_ASSIGN_OR_RETURN(NodeList result, eval.EvaluateFromRoot(path));
    run.result_items = result.size();
    std::string out;
    for (const XNode& n : result) {
      if (n.attr >= 0) {
        const Attribute& a = doc.attr(n.node, static_cast<uint32_t>(n.attr));
        out += doc.symbols().NameOf(a.name);
        out += "=\"";
        AppendEscaped(a.value, /*for_attribute=*/true, &out);
        out += "\"";
      } else {
        out += SerializeSubtree(doc, n.node);
      }
    }
    meter.Add(out.capacity());
    run.serialized = std::move(out);
  }
  run.seconds = NowSeconds() - start;
  run.memory_bytes = meter.peak();
  return run;
}

Result<NameSet> AnalyzeBenchmarkQuery(const BenchmarkQuery& query,
                                      const Dtd& dtd) {
  if (query.language == QueryLanguage::kXQuery) {
    XMLPROJ_ASSIGN_OR_RETURN(XQueryPtr parsed, ParseXQuery(query.text));
    return InferProjectorForQuery(dtd, *parsed);
  }
  XMLPROJ_ASSIGN_OR_RETURN(
      ProjectionAnalysis analysis,
      AnalyzeXPathQuery(dtd, query.text, /*materialize_result=*/true));
  return analysis.projector;
}

}  // namespace xmlproj
