// Deterministic XMark-style document generator (the reproduction's
// substitute for xmlgen; see DESIGN.md "Substitutions").
//
// Produces auction-site documents valid against the embedded XMark DTD.
// As with the original generator, mixed-content <description> elements
// account for the dominant share of the document bytes (the paper's §6
// explanation for why weakly selective queries keep ~70-80% of the file),
// and all id/idref joins (items, persons, categories, auctions) are
// populated so the XMark join queries return non-empty results.
//
// `scale` follows the xmlgen convention: scale 1.0 is roughly a 100MB
// document; the element counts scale linearly.

#ifndef XMLPROJ_XMARK_GENERATOR_H_
#define XMLPROJ_XMARK_GENERATOR_H_

#include <string>

#include "common/status.h"
#include "xml/document.h"

namespace xmlproj {

struct XMarkOptions {
  double scale = 0.001;  // ~0.1MB
  uint64_t seed = 20060912;  // VLDB'06 conference date
};

// Generates the document as a DOM.
Result<Document> GenerateXMark(const XMarkOptions& options);

// Generates directly to XML text (what a file on disk would contain).
std::string GenerateXMarkText(const XMarkOptions& options);

// Derived element counts for a given scale (exposed for tests/benches).
struct XMarkCounts {
  int categories = 0;
  int items = 0;    // total, split across the six regions
  int persons = 0;
  int open_auctions = 0;
  int closed_auctions = 0;
};
XMarkCounts CountsForScale(double scale);

}  // namespace xmlproj

#endif  // XMLPROJ_XMARK_GENERATOR_H_
