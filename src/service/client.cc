#include "service/client.h"

#include <cstdlib>

#include "common/http/http.h"

namespace xmlproj {
namespace {

// Status for a non-2xx service response: the inverse of the service's
// error mapping, with the body (the service's {"error": ...} JSON) as
// the message.
Status StatusFromHttp(int status, const std::string& body) {
  std::string message = "HTTP " + std::to_string(status);
  std::string detail;
  if (ExtractJsonStringField(body, "error", &detail)) {
    message += ": " + detail;
  } else if (!body.empty()) {
    message += ": " + body.substr(0, 200);
  }
  switch (status) {
    case 400:
    case 405:
      return InvalidError(std::move(message));
    case 404:
      return NotFoundError(std::move(message));
    case 408:
    case 504:
      return DeadlineExceededError(std::move(message));
    case 409:
    case 422:
      return InvalidError(std::move(message));
    case 413:
      return ResourceExhaustedError(std::move(message));
    case 503:
      return UnavailableError(std::move(message));
    default:
      return InternalError(std::move(message));
  }
}

}  // namespace

bool ExtractJsonStringField(std::string_view json, std::string_view key,
                            std::string* out) {
  std::string needle = "\"" + std::string(key) + "\":\"";
  size_t at = json.find(needle);
  if (at == std::string_view::npos) return false;
  size_t start = at + needle.size();
  std::string value;
  for (size_t i = start; i < json.size(); ++i) {
    char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      value.push_back(json[++i]);
      continue;
    }
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    value.push_back(c);
  }
  return false;
}

bool ExtractJsonU64Field(std::string_view json, std::string_view key,
                         uint64_t* out) {
  std::string needle = "\"" + std::string(key) + "\":";
  size_t at = json.find(needle);
  if (at == std::string_view::npos) return false;
  size_t start = at + needle.size();
  if (start >= json.size() || json[start] < '0' || json[start] > '9') {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = start; i < json.size() && json[i] >= '0' && json[i] <= '9';
       ++i) {
    value = value * 10 + static_cast<uint64_t>(json[i] - '0');
  }
  *out = value;
  return true;
}

namespace {

Result<HttpClientResult> Call(const ProjectionClientOptions& options,
                              const std::string& method,
                              const std::string& target,
                              std::string_view body,
                              const std::string& content_type,
                              const std::string& traceparent = {}) {
  HttpClientOptions client_options;
  client_options.timeout_ms = options.timeout_ms;
  client_options.max_response_bytes = options.max_response_bytes;
  client_options.traceparent = traceparent;
  HttpClientResult result;
  std::string error;
  if (!HttpCall(options.port, method, target, body, content_type, &result,
                client_options, &error)) {
    return UnavailableError("service call failed: " + error);
  }
  return result;
}

}  // namespace

Result<std::string> ProjectionClient::RegisterDtd(const std::string& name,
                                                  const std::string& root,
                                                  std::string_view dtd_text) {
  XMLPROJ_ASSIGN_OR_RETURN(
      HttpClientResult result,
      Call(options_, "POST", "/dtds?name=" + name + "&root=" + root, dtd_text,
           "text/plain"));
  if (result.status < 200 || result.status >= 300) {
    return StatusFromHttp(result.status, result.body);
  }
  return std::move(result.body);
}

Result<WorkloadRegistration> ProjectionClient::RegisterWorkload(
    std::string_view spec, const std::string& dtd_name) {
  std::string target = "/workloads";
  if (!dtd_name.empty()) target += "?dtd=" + dtd_name;
  XMLPROJ_ASSIGN_OR_RETURN(
      HttpClientResult result,
      Call(options_, "POST", target, spec, "text/plain"));
  if (result.status < 200 || result.status >= 300) {
    return StatusFromHttp(result.status, result.body);
  }
  WorkloadRegistration registration;
  registration.raw_json = result.body;
  if (!ExtractJsonStringField(result.body, "workload", &registration.id)) {
    return InternalError("malformed /workloads response: " + result.body);
  }
  std::string cache;
  ExtractJsonStringField(result.body, "cache", &cache);
  registration.cache_hit = cache == "hit";
  ExtractJsonU64Field(result.body, "queries", &registration.queries);
  ExtractJsonU64Field(result.body, "projector_names",
                      &registration.projector_names);
  return registration;
}

Result<PruneOutcome> ProjectionClient::Prune(
    const std::string& workload_id, std::string_view document,
    const PruneRequestOptions& options) {
  std::string target = "/prune?workload=" + workload_id;
  if (options.validate) target += "&validate=1";
  if (options.max_bytes != 0) {
    target += "&max_bytes=" + std::to_string(options.max_bytes);
  }
  if (options.deadline_ms != 0) {
    target += "&deadline_ms=" + std::to_string(options.deadline_ms);
  }
  XMLPROJ_ASSIGN_OR_RETURN(
      HttpClientResult result,
      Call(options_, "POST", target, document, "application/xml",
           options.traceparent));
  if (result.status < 200 || result.status >= 300) {
    return StatusFromHttp(result.status, result.body);
  }
  PruneOutcome outcome;
  outcome.cache_hit = result.Header("x-xmlproj-cache") == "hit";
  TraceContext trace;
  if (ParseTraceparent(result.Header("traceparent"), &trace)) {
    outcome.trace_id = trace.trace_id;
  }
  outcome.request_id = result.Header("x-request-id");
  outcome.output = std::move(result.body);
  return outcome;
}

Result<std::string> ProjectionClient::ListWorkloads() {
  return Get("/workloads");
}

Result<std::string> ProjectionClient::Healthz() {
  XMLPROJ_ASSIGN_OR_RETURN(HttpClientResult result,
                           Call(options_, "GET", "/healthz", {}, {}));
  // /healthz answers 503 while the breaker is open, but the body is the
  // health document the caller asked for.
  if (result.status != 200 && result.status != 503) {
    return StatusFromHttp(result.status, result.body);
  }
  return std::move(result.body);
}

Result<std::string> ProjectionClient::Get(const std::string& path) {
  XMLPROJ_ASSIGN_OR_RETURN(HttpClientResult result,
                           Call(options_, "GET", path, {}, {}));
  if (result.status < 200 || result.status >= 300) {
    return StatusFromHttp(result.status, result.body);
  }
  return std::move(result.body);
}

}  // namespace xmlproj
