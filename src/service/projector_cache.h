// LRU cache of compiled type projectors, keyed by (DTD hash, workload
// fingerprint).
//
// This cache is the economic argument for running projection as a
// service: the expensive step — parsing the query workload and running
// projector inference over the DTD (paper §1.2's static analysis) — is a
// pure function of the DTD text and the workload text, so its result can
// be keyed by two content hashes and reused across every document a
// client streams through POST /prune. The cached value is the *closed*
// NameSet projector: a few hundred bits for XMark, independent of
// document size. See DESIGN.md "Why the projector cache key is cheap".
//
// Values are shared_ptr<const NameSet> so an eviction never invalidates
// a projector an in-flight prune is still using — the request keeps its
// reference; the cache merely forgets it. Compilation on a miss runs
// *outside* the cache lock (two concurrent misses of the same key both
// compile and the second insert wins; inference is deterministic, so
// both produce the same projector and only the accounting differs).
//
// Metrics (when a registry is attached):
//   xmlproj_projector_cache_hits_total / _misses_total / _evictions_total
//   xmlproj_projector_cache_size (gauge, current entries)

#ifndef XMLPROJ_SERVICE_PROJECTOR_CACHE_H_
#define XMLPROJ_SERVICE_PROJECTOR_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "dtd/name_set.h"
#include "obs/metrics.h"

namespace xmlproj {

struct ProjectorCacheKey {
  uint64_t dtd_hash = 0;              // Fnv1a64 over the DTD text
  uint64_t workload_fingerprint = 0;  // Fnv1a64 chain over canonical queries

  bool operator==(const ProjectorCacheKey& o) const {
    return dtd_hash == o.dtd_hash &&
           workload_fingerprint == o.workload_fingerprint;
  }
};

class ProjectorCache {
 public:
  // `capacity` is clamped to >= 1; `metrics` (borrowed, nullable) must
  // outlive the cache.
  explicit ProjectorCache(size_t capacity, MetricsRegistry* metrics = nullptr);
  ProjectorCache(const ProjectorCache&) = delete;
  ProjectorCache& operator=(const ProjectorCache&) = delete;

  // Looks up `key`, promoting it to most-recently-used. Null on miss.
  // Counts one hit or one miss.
  std::shared_ptr<const NameSet> Get(const ProjectorCacheKey& key);

  // Inserts (or replaces) `key`, evicting the least-recently-used entry
  // beyond capacity. Does not count a hit or miss.
  void Put(const ProjectorCacheKey& key,
           std::shared_ptr<const NameSet> projector);

  // Get, compiling on a miss: `compile` runs outside the cache lock and
  // its result is inserted. On success sets *hit to whether the lookup
  // was served from cache (nullable). Propagates `compile`'s error
  // without inserting.
  Result<std::shared_ptr<const NameSet>> GetOrCompile(
      const ProjectorCacheKey& key,
      const std::function<Result<NameSet>()>& compile, bool* hit = nullptr);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct KeyHash {
    size_t operator()(const ProjectorCacheKey& k) const {
      // The fields are already FNV hashes; mixing them with a rotate is
      // enough for a table this small.
      return static_cast<size_t>(k.dtd_hash ^
                                 (k.workload_fingerprint << 1 |
                                  k.workload_fingerprint >> 63));
    }
  };
  using Entry = std::pair<ProjectorCacheKey, std::shared_ptr<const NameSet>>;

  // Assumes mu_ held.
  void PutLocked(const ProjectorCacheKey& key,
                 std::shared_ptr<const NameSet> projector);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<ProjectorCacheKey, std::list<Entry>::iterator, KeyHash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  // Resolved metric handles (null without a registry).
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
  Gauge* size_gauge_ = nullptr;
};

}  // namespace xmlproj

#endif  // XMLPROJ_SERVICE_PROJECTOR_CACHE_H_
