#include "service/service.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "dtd/dtd_parser.h"
#include "obs/server.h"
#include "projection/checkpoint.h"
#include "projection/pipeline.h"
#include "projection/projection.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

namespace xmlproj {
namespace {

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

std::string HexId(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "w-%016" PRIx64, v);
  return buf;
}

HttpResponse ErrorJson(int status, std::string_view message,
                       std::string_view code = {}) {
  std::string body = "{\"error\":";
  AppendJsonString(message, &body);
  if (!code.empty()) {
    body.append(",\"status\":");
    AppendJsonString(code, &body);
  }
  body.append("}\n");
  return JsonResponse(status, std::move(body));
}

// Parses a non-negative integer query param; false on garbage.
bool ParseU64Param(const HttpRequest& request, std::string_view key,
                   uint64_t* out) {
  std::string value = request.QueryParam(key);
  if (value.empty()) return true;  // absent = keep default
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

// HTTP status for a failed prune, and whether the failure is the
// *server's* fault (feeds the circuit breaker) or the client's (a
// malformed or oversized document must not open the breaker for
// everyone).
int PruneErrorHttpStatus(StatusCode code, bool* server_fault) {
  *server_fault = false;
  switch (code) {
    case StatusCode::kParseError:
    case StatusCode::kInvalid:
    case StatusCode::kUnsupported:
    case StatusCode::kNotFound:
      return 400;
    case StatusCode::kResourceExhausted:
      return 413;  // document blew its byte budget
    case StatusCode::kDeadlineExceeded:
      *server_fault = true;
      return 504;
    default:
      *server_fault = true;
      return 500;
  }
}

// Coarse stage attribution for the journal's quarantine digest,
// mirroring the pipeline's TaskFailure stages.
const char* PruneErrorStage(StatusCode code) {
  switch (code) {
    case StatusCode::kParseError:
      return "parse";
    case StatusCode::kInvalid:
    case StatusCode::kNotFound:
      return "validate";
    case StatusCode::kResourceExhausted:
      return "budget";
    case StatusCode::kDeadlineExceeded:
      return "deadline";
    default:
      return "task";
  }
}

std::string_view TrimAscii(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

// Route label for the RED series: the fixed route set keeps the label
// cardinality bounded no matter what paths clients probe.
const char* RouteLabel(const std::string& path) {
  static constexpr const char* kRoutes[] = {
      "/",       "/dtds",    "/healthz", "/metrics", "/metrics.json",
      "/prune",  "/statusz", "/tracez",  "/workloads"};
  for (const char* route : kRoutes) {
    if (path == route) return route;
  }
  return "other";
}

}  // namespace

// Mutable per-workload state. Identity fields are immutable after
// registration; stats are atomics so /prune handlers update them without
// the registry lock.
struct ProjectionService::WorkloadEntry {
  std::string id;
  std::shared_ptr<const DtdEntry> dtd;
  std::vector<WorkloadQuery> queries;
  uint64_t fingerprint = 0;
  size_t projector_names = 0;

  std::atomic<uint64_t> prunes{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> input_bytes{0};
  std::atomic<uint64_t> output_bytes{0};
};

Result<std::vector<WorkloadQuery>> ParseWorkloadSpec(std::string_view spec) {
  std::vector<WorkloadQuery> queries;
  size_t line_no = 0;
  while (!spec.empty()) {
    size_t eol = spec.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? spec : spec.substr(0, eol);
    spec.remove_prefix(eol == std::string_view::npos ? spec.size() : eol + 1);
    ++line_no;
    line = TrimAscii(line);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string_view> fields;
    while (true) {
      size_t tab = line.find('\t');
      if (tab == std::string_view::npos) {
        fields.push_back(line);
        break;
      }
      fields.push_back(line.substr(0, tab));
      line.remove_prefix(tab + 1);
    }
    WorkloadQuery query;
    if (fields.size() == 2) {
      query.lang = AsciiLower(TrimAscii(fields[0]));
      query.text = std::string(TrimAscii(fields[1]));
    } else if (fields.size() == 3) {
      query.id = std::string(TrimAscii(fields[0]));
      query.lang = AsciiLower(TrimAscii(fields[1]));
      query.text = std::string(TrimAscii(fields[2]));
    } else {
      return InvalidError("workload line " + std::to_string(line_no) +
                          ": expected lang<TAB>query or "
                          "id<TAB>lang<TAB>query");
    }
    if (query.lang != "xpath" && query.lang != "xquery") {
      return InvalidError("workload line " + std::to_string(line_no) +
                          ": unknown language '" + query.lang +
                          "' (want xpath or xquery)");
    }
    if (query.text.empty()) {
      return InvalidError("workload line " + std::to_string(line_no) +
                          ": empty query");
    }
    if (query.id.empty()) query.id = "q" + std::to_string(queries.size() + 1);
    queries.push_back(std::move(query));
  }
  if (queries.empty()) return InvalidError("workload spec has no queries");
  return queries;
}

uint64_t WorkloadFingerprint(const std::vector<WorkloadQuery>& queries) {
  // Canonical form: lang and text only (the optional client label is
  // reporting sugar, not identity), in registration order, separated by
  // bytes that cannot occur inside either field.
  uint64_t h = kFnv1aOffset;
  for (const WorkloadQuery& query : queries) {
    h = Fnv1a64(query.lang, h);
    h = Fnv1a64(std::string_view("\x1f", 1), h);
    h = Fnv1a64(query.text, h);
    h = Fnv1a64(std::string_view("\x1e", 1), h);
  }
  return h;
}

Result<NameSet> CompileWorkloadProjector(
    const Dtd& dtd, const std::vector<WorkloadQuery>& queries) {
  NameSet merged(dtd.name_count());
  merged.Add(dtd.root());
  for (const WorkloadQuery& query : queries) {
    if (query.lang == "xpath") {
      auto analysis =
          AnalyzeXPathQuery(dtd, query.text, /*materialize_result=*/true);
      if (!analysis.ok()) {
        return Status(analysis.status().code(),
                      "query '" + query.id +
                          "': " + analysis.status().message());
      }
      merged |= analysis->projector;
    } else {
      auto parsed = ParseXQuery(query.text);
      if (!parsed.ok()) {
        return Status(parsed.status().code(),
                      "query '" + query.id + "': " +
                          parsed.status().message());
      }
      auto projector = InferProjectorForQuery(dtd, **parsed);
      if (!projector.ok()) {
        return Status(projector.status().code(),
                      "query '" + query.id + "': " +
                          projector.status().message());
      }
      merged |= *projector;
    }
  }
  return merged;
}

ProjectionService::ProjectionService() = default;

ProjectionService::~ProjectionService() { Stop(); }

bool ProjectionService::RegisterDtd(const std::string& name,
                                    std::string_view dtd_text,
                                    const std::string& root_tag,
                                    std::string* error) {
  if (name.empty()) {
    if (error != nullptr) *error = "DTD name must be non-empty";
    return false;
  }
  uint64_t hash = Fnv1a64(dtd_text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dtds_.find(name);
    if (it != dtds_.end()) {
      if (it->second->hash == hash && it->second->root == root_tag) {
        return true;  // idempotent re-registration
      }
      if (error != nullptr) {
        *error = "DTD '" + name + "' already registered with different text";
      }
      return false;
    }
  }
  Result<Dtd> parsed = ParseDtd(dtd_text, root_tag);
  if (!parsed.ok()) {
    if (error != nullptr) *error = parsed.status().ToString();
    return false;
  }
  auto entry = std::make_shared<DtdEntry>();
  entry->name = name;
  entry->root = root_tag;
  entry->hash = hash;
  entry->dtd = std::move(*parsed);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = dtds_.emplace(name, std::move(entry));
  if (!inserted && it->second->hash != hash) {
    // Lost a race to a different registration of the same name.
    if (error != nullptr) {
      *error = "DTD '" + name + "' already registered with different text";
    }
    return false;
  }
  return true;
}

std::shared_ptr<const ProjectionService::DtdEntry> ProjectionService::FindDtd(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!name.empty()) {
    auto it = dtds_.find(name);
    return it == dtds_.end() ? nullptr : it->second;
  }
  // No name: unambiguous only when exactly one DTD is registered.
  if (dtds_.size() == 1) return dtds_.begin()->second;
  return nullptr;
}

std::shared_ptr<ProjectionService::WorkloadEntry>
ProjectionService::FindWorkload(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workloads_.find(id);
  return it == workloads_.end() ? nullptr : it->second;
}

HttpResponse ProjectionService::HandleRegisterDtd(const HttpRequest& request) {
  if (request.body.size() > options_.limits.max_spec_bytes) {
    return ErrorJson(413, "DTD text exceeds the spec cap");
  }
  std::string name = request.QueryParam("name");
  std::string root = request.QueryParam("root");
  if (name.empty() || root.empty()) {
    return ErrorJson(400, "POST /dtds requires ?name= and ?root=");
  }
  std::string error;
  if (!RegisterDtd(name, request.body, root, &error)) {
    int status = error.find("already registered") != std::string::npos
                     ? 409
                     : 400;
    return ErrorJson(status, error);
  }
  std::shared_ptr<const DtdEntry> entry = FindDtd(name);
  std::string body = "{\"dtd\":";
  AppendJsonString(name, &body);
  body.append(",\"root\":");
  AppendJsonString(root, &body);
  body.append(",\"names\":");
  AppendU64(entry->dtd.name_count(), &body);
  body.append(",\"hash\":");
  AppendJsonString(HexId(entry->hash), &body);
  body.append("}\n");
  return JsonResponse(201, std::move(body));
}

HttpResponse ProjectionService::HandleRegisterWorkload(
    const HttpRequest& request) {
  if (request.body.size() > options_.limits.max_spec_bytes) {
    return ErrorJson(413, "workload spec exceeds the spec cap");
  }
  std::shared_ptr<const DtdEntry> dtd = FindDtd(request.QueryParam("dtd"));
  if (dtd == nullptr) {
    if (request.QueryParam("dtd").empty()) {
      return ErrorJson(400,
                       "POST /workloads requires ?dtd= when more than one "
                       "DTD is registered");
    }
    return ErrorJson(404,
                     "unknown DTD '" + request.QueryParam("dtd") + "'");
  }
  Result<std::vector<WorkloadQuery>> queries = ParseWorkloadSpec(request.body);
  if (!queries.ok()) {
    return ErrorJson(400, queries.status().message(),
                     StatusCodeName(queries.status().code()));
  }
  uint64_t fingerprint = WorkloadFingerprint(*queries);
  // The workload id covers both halves of the cache key, so the same
  // queries against two DTDs are two workloads.
  std::string id = HexId(Fnv1a64(HexId(fingerprint), dtd->hash));

  ProjectorCacheKey key{dtd->hash, fingerprint};
  const Dtd* dtd_ptr = &dtd->dtd;
  const std::vector<WorkloadQuery>* queries_ptr = &*queries;
  bool hit = false;
  Result<std::shared_ptr<const NameSet>> projector = cache_->GetOrCompile(
      key,
      [dtd_ptr, queries_ptr] {
        return CompileWorkloadProjector(*dtd_ptr, *queries_ptr);
      },
      &hit);
  if (!projector.ok()) {
    // The workload parsed but a query failed analysis: unprocessable.
    return ErrorJson(422, projector.status().message(),
                     StatusCodeName(projector.status().code()));
  }

  std::shared_ptr<WorkloadEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workloads_.find(id);
    if (it != workloads_.end()) {
      entry = it->second;  // idempotent re-registration keeps the stats
    } else {
      entry = std::make_shared<WorkloadEntry>();
      entry->id = id;
      entry->dtd = dtd;
      entry->queries = std::move(*queries);
      entry->fingerprint = fingerprint;
      entry->projector_names = (*projector)->Count();
      workloads_[id] = entry;
    }
  }

  std::string body = "{\"workload\":";
  AppendJsonString(entry->id, &body);
  body.append(",\"dtd\":");
  AppendJsonString(dtd->name, &body);
  body.append(",\"queries\":");
  AppendU64(entry->queries.size(), &body);
  body.append(",\"projector_names\":");
  AppendU64(entry->projector_names, &body);
  body.append(",\"dtd_names\":");
  AppendU64(dtd->dtd.name_count(), &body);
  body.append(",\"cache\":\"");
  body.append(hit ? "hit" : "miss");
  body.append("\"}\n");
  return JsonResponse(200, std::move(body));
}

HttpResponse ProjectionService::HandlePrune(const HttpRequest& request) {
  std::string id = request.QueryParam("workload");
  if (id.empty()) return ErrorJson(400, "POST /prune requires ?workload=");
  std::shared_ptr<WorkloadEntry> entry = FindWorkload(id);
  if (entry == nullptr) return ErrorJson(404, "unknown workload '" + id + "'");

  // Admission: an open breaker fast-fails before any parsing work, and
  // /healthz (same breaker) reports open/503 in agreement.
  if (options_.breaker != nullptr && !options_.breaker->Allow()) {
    HttpResponse response =
        ErrorJson(503, "circuit breaker open; retry after cooldown");
    response.headers.emplace_back("Retry-After", "1");
    return response;
  }

  TaskBudget budget;
  budget.max_bytes = options_.limits.default_max_bytes;
  budget.deadline_ms = options_.limits.default_deadline_ms;
  uint64_t max_bytes = budget.max_bytes;
  uint64_t deadline_ms = budget.deadline_ms;
  if (!ParseU64Param(request, "max_bytes", &max_bytes) ||
      !ParseU64Param(request, "deadline_ms", &deadline_ms)) {
    return ErrorJson(400, "max_bytes/deadline_ms must be integers");
  }
  budget.max_bytes = static_cast<size_t>(max_bytes);
  budget.deadline_ms = deadline_ms;
  std::string validate = request.QueryParam("validate");
  if (!validate.empty() && validate != "0" && validate != "1") {
    return ErrorJson(400, "validate must be 0 or 1");
  }

  // Projector lookup: usually a cache hit; a miss (first prune, or
  // evicted since) recompiles from the registered workload text.
  ProjectorCacheKey key{entry->dtd->hash, entry->fingerprint};
  const WorkloadEntry* entry_ptr = entry.get();
  bool hit = false;
  Result<std::shared_ptr<const NameSet>> projector = cache_->GetOrCompile(
      key,
      [entry_ptr] {
        return CompileWorkloadProjector(entry_ptr->dtd->dtd,
                                        entry_ptr->queries);
      },
      &hit);
  if (!projector.ok()) {
    entry->failures.fetch_add(1, std::memory_order_relaxed);
    return ErrorJson(500, projector.status().message(),
                     StatusCodeName(projector.status().code()));
  }
  if (hit) entry->cache_hits.fetch_add(1, std::memory_order_relaxed);

  PipelineOptions popts;
  popts.validate = validate == "1";
  popts.budget = budget;
  popts.metrics = options_.metrics;
  popts.trace = options_.trace;
  popts.logger = options_.logger;
  popts.meter_memory = true;  // feeds the journal's peak for auto-tuning
  popts.corpus_label = entry->id;

  // The pipeline runs inline on this worker thread, so a thread-scoped
  // span context makes its parse/prune/serialize spans children of the
  // request span the HTTP observer records for this same request.
  ScopedSpanContext span_scope(
      request.trace.valid() ? options_.trace : nullptr,
      SpanContext{request.trace.trace_id, request.trace.span_id,
                  request.trace.parent_id, entry->id});

  Result<PipelineRun> run =
      PruneDocument(request.body, entry->dtd->dtd, **projector, popts);
  if (!run.ok()) {
    entry->failures.fetch_add(1, std::memory_order_relaxed);
    bool server_fault = false;
    int status = PruneErrorHttpStatus(run.status().code(), &server_fault);
    if (options_.breaker != nullptr && server_fault) {
      options_.breaker->RecordFailure();
    }
    if (options_.logger != nullptr) {
      options_.logger->Log(server_fault ? LogLevel::kError : LogLevel::kWarn,
                           "prune.error",
                           {{"workload", entry->id},
                            {"trace_id", request.trace.trace_id},
                            {"request_id", request.request_id},
                            {"code", StatusCodeName(run.status().code())},
                            {"http_status", status},
                            {"input_bytes",
                             static_cast<uint64_t>(request.body.size())}});
    }
    JournalPrune(*entry, /*wall_us=*/0, request.body.size(),
                 /*output_bytes=*/0, /*peak_bytes=*/0, /*failed=*/true,
                 PruneErrorStage(run.status().code()));
    return ErrorJson(status, run.status().message(),
                     StatusCodeName(run.status().code()));
  }

  const PipelineResult& result = run->results[0];
  entry->prunes.fetch_add(1, std::memory_order_relaxed);
  entry->input_bytes.fetch_add(request.body.size(),
                               std::memory_order_relaxed);
  entry->output_bytes.fetch_add(result.output.size(),
                                std::memory_order_relaxed);
  if (options_.breaker != nullptr) options_.breaker->RecordSuccess();
  JournalPrune(*entry,
               static_cast<uint64_t>(run->summary.wall_seconds * 1e6),
               request.body.size(), result.output.size(),
               run->summary.max_task_peak_bytes, /*failed=*/false,
               /*stage=*/"");

  HttpResponse response;
  response.status = 200;
  response.content_type = "application/xml";
  response.headers.emplace_back("X-Xmlproj-Workload", entry->id);
  response.headers.emplace_back("X-Xmlproj-Cache", hit ? "hit" : "miss");
  response.body = std::move(run->results[0].output);
  return response;
}

HttpResponse ProjectionService::HandleListWorkloads(const HttpRequest&) {
  std::string body = "{\"cache\":{\"capacity\":";
  AppendU64(cache_->capacity(), &body);
  body.append(",\"size\":");
  AppendU64(cache_->size(), &body);
  body.append(",\"hits\":");
  AppendU64(cache_->hits(), &body);
  body.append(",\"misses\":");
  AppendU64(cache_->misses(), &body);
  body.append(",\"evictions\":");
  AppendU64(cache_->evictions(), &body);
  body.append("},\"workloads\":[");
  bool first = true;
  for (const WorkloadInfo& info : ListWorkloads()) {
    if (!first) body.push_back(',');
    first = false;
    body.append("{\"id\":");
    AppendJsonString(info.id, &body);
    body.append(",\"dtd\":");
    AppendJsonString(info.dtd, &body);
    body.append(",\"queries\":");
    AppendU64(info.queries, &body);
    body.append(",\"projector_names\":");
    AppendU64(info.projector_names, &body);
    body.append(",\"prunes\":");
    AppendU64(info.prunes, &body);
    body.append(",\"cache_hits\":");
    AppendU64(info.cache_hits, &body);
    body.append(",\"failures\":");
    AppendU64(info.failures, &body);
    body.append(",\"input_bytes\":");
    AppendU64(info.input_bytes, &body);
    body.append(",\"output_bytes\":");
    AppendU64(info.output_bytes, &body);
    body.append(",\"byte_ratio\":");
    char ratio[32];
    double r = info.input_bytes == 0
                   ? 1.0
                   : static_cast<double>(info.output_bytes) /
                         static_cast<double>(info.input_bytes);
    std::snprintf(ratio, sizeof(ratio), "%.4f", r);
    body.append(ratio);
    body.push_back('}');
  }
  body.append("]}\n");
  return JsonResponse(200, std::move(body));
}

HttpResponse ProjectionService::HandleListDtds(const HttpRequest&) {
  std::vector<std::shared_ptr<const DtdEntry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : dtds_) entries.push_back(entry);
  }
  std::string body = "{\"dtds\":[";
  bool first = true;
  for (const auto& entry : entries) {
    if (!first) body.push_back(',');
    first = false;
    body.append("{\"name\":");
    AppendJsonString(entry->name, &body);
    body.append(",\"root\":");
    AppendJsonString(entry->root, &body);
    body.append(",\"names\":");
    AppendU64(entry->dtd.name_count(), &body);
    body.append(",\"hash\":");
    AppendJsonString(HexId(entry->hash), &body);
    body.push_back('}');
  }
  body.append("]}\n");
  return JsonResponse(200, std::move(body));
}

void ProjectionService::ObserveRequest(const HttpRequest& request,
                                       const HttpResponse& response,
                                       uint64_t start_ns,
                                       uint64_t duration_ns) {
  const char* route = RouteLabel(request.path);
  // Workload attribution: only /prune carries a tenant, and an id lands
  // in the label set only when it is actually registered — unknown ids
  // fold to "other" so a client probing random ids cannot mint series.
  std::string workload = "none";
  if (request.path == "/prune") {
    std::string id = request.QueryParam("workload");
    workload = !id.empty() && FindWorkload(id) != nullptr ? id : "other";
  }
  char code[8];
  std::snprintf(code, sizeof(code), "%d", response.status);
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetHistogram(
            "xmlproj_request_duration_seconds",
            {{"workload", workload}, {"route", route}, {"code", code}})
        ->Record(duration_ns);
  }
  if (options_.slo != nullptr && request.path == "/prune") {
    options_.slo->Record(workload, duration_ns, response.status >= 500);
  }
  if (options_.trace != nullptr && request.trace.valid()) {
    options_.trace->AddSpanEvent(
        request.method + " " + route, "request", start_ns, duration_ns,
        SpanContext{request.trace.trace_id, request.trace.span_id,
                    request.trace.parent_id, workload},
        {{"status", static_cast<int64_t>(response.status)}});
  }
  if (options_.logger != nullptr) {
    options_.logger->Log(
        response.status >= 500 ? LogLevel::kError : LogLevel::kInfo,
        "http.access",
        {{"method", request.method},
         {"path", request.path},
         {"status", response.status},
         {"duration_us", duration_ns / 1000},
         {"bytes", static_cast<uint64_t>(response.body.size())},
         {"trace_id", request.trace.trace_id},
         {"request_id", request.request_id},
         {"workload", workload}});
  }
}

std::vector<WorkloadInfo> ProjectionService::ListWorkloads() const {
  std::vector<std::shared_ptr<WorkloadEntry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : workloads_) entries.push_back(entry);
  }
  std::vector<WorkloadInfo> infos;
  infos.reserve(entries.size());
  for (const auto& entry : entries) {
    WorkloadInfo info;
    info.id = entry->id;
    info.dtd = entry->dtd->name;
    info.queries = entry->queries.size();
    info.projector_names = entry->projector_names;
    info.prunes = entry->prunes.load(std::memory_order_relaxed);
    info.cache_hits = entry->cache_hits.load(std::memory_order_relaxed);
    info.failures = entry->failures.load(std::memory_order_relaxed);
    info.input_bytes = entry->input_bytes.load(std::memory_order_relaxed);
    info.output_bytes = entry->output_bytes.load(std::memory_order_relaxed);
    infos.push_back(std::move(info));
  }
  return infos;
}

void ProjectionService::JournalPrune(const WorkloadEntry& entry,
                                     uint64_t wall_us, size_t input_bytes,
                                     size_t output_bytes, size_t peak_bytes,
                                     bool failed, const std::string& stage) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (journal_ == nullptr) return;
  PendingBatch& batch = pending_[entry.id];
  if (batch.prunes + batch.failed == 0) batch.start_unix_ms = UnixNowMs();
  if (failed) {
    ++batch.failed;
    ++batch.quarantine[stage];
  } else {
    ++batch.prunes;
    batch.input_bytes += input_bytes;
    batch.output_bytes += output_bytes;
  }
  batch.wall_us += wall_us;
  if (peak_bytes > batch.peak_bytes) batch.peak_bytes = peak_bytes;
  if (batch.prunes + batch.failed < options_.limits.journal_batch) return;

  std::string error;
  // Advisory: a failed append is not worth failing a served prune over.
  journal_->Append(RecordForBatch(entry.id, batch), &error);
  pending_.erase(entry.id);
}

void ProjectionService::FlushJournal() {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (journal_ == nullptr) return;
  for (auto& [id, batch] : pending_) {
    if (batch.prunes + batch.failed == 0) continue;
    std::string error;
    journal_->Append(RecordForBatch(id, batch), &error);
  }
  pending_.clear();
}

RunRecord ProjectionService::RecordForBatch(const std::string& workload_id,
                                            const PendingBatch& batch) {
  RunRecord record;
  record.run_id = GenerateRunId();
  record.corpus = workload_id;
  record.start_unix_ms = batch.start_unix_ms;
  record.end_unix_ms = UnixNowMs();
  record.wall_seconds = static_cast<double>(batch.wall_us) / 1e6;
  record.tasks = batch.prunes;
  record.failed = batch.failed;
  record.input_bytes = batch.input_bytes;
  record.output_bytes = batch.output_bytes;
  record.peak_memory_bytes = batch.peak_bytes;
  for (const auto& [name, count] : batch.quarantine) {
    if (name == "budget" || name == "deadline") record.budget_trips += count;
    record.quarantine.emplace_back(name, count);
  }
  return record;
}

bool ProjectionService::Start(const ProjectionServiceOptions& options,
                              std::string* error) {
  if (http_.running()) {
    if (error != nullptr) *error = "service already running";
    return false;
  }
  if (options.metrics == nullptr) {
    if (error != nullptr) {
      *error = "ProjectionServiceOptions.metrics is required";
    }
    return false;
  }
  options_ = options;
  if (cache_ == nullptr) {
    cache_ = std::make_unique<ProjectorCache>(
        options_.limits.projector_cache_capacity, options_.metrics);
  }
  if (!options_.journal_dir.empty() && journal_ == nullptr) {
    auto journal = std::make_unique<RunJournal>();
    if (!journal->Open(options_.journal_dir, error)) return false;
    std::lock_guard<std::mutex> lock(journal_mu_);
    journal_ = std::move(journal);
  }

  if (!mounted_) {
    http_.Handle("POST", "/dtds",
                 [this](const HttpRequest& r) { return HandleRegisterDtd(r); });
    http_.Handle("GET", "/dtds",
                 [this](const HttpRequest& r) { return HandleListDtds(r); });
    http_.Handle("POST", "/workloads", [this](const HttpRequest& r) {
      return HandleRegisterWorkload(r);
    });
    http_.Handle("GET", "/workloads", [this](const HttpRequest& r) {
      return HandleListWorkloads(r);
    });
    http_.Handle("POST", "/prune",
                 [this](const HttpRequest& r) { return HandlePrune(r); });
    http_.Handle("GET", "/", [](const HttpRequest&) {
      return TextResponse(
          200,
          "xmlproj projection service\n"
          "data plane: POST /dtds POST /workloads POST /prune "
          "GET /workloads GET /dtds\n"
          "obs plane: /metrics /metrics.json /healthz /statusz /tracez\n");
    });

    // Observability plane on the same router — one port, both planes.
    ObsServerOptions obs;
    obs.registry = options_.metrics;
    obs.trace = options_.trace;
    obs.slo = options_.slo;
    if (options_.breaker != nullptr) {
      CircuitBreaker* breaker = options_.breaker;
      obs.circuit_state = [breaker] { return breaker->state_int(); };
    }
    MountObsEndpoints(&http_, obs);
    mounted_ = true;
  }

  options_.metrics->SetHelp(
      "xmlproj_request_duration_seconds",
      "HTTP request duration by workload, route and status code.");
  http_.SetObserver([this](const HttpRequest& request,
                           const HttpResponse& response, uint64_t start_ns,
                           uint64_t duration_ns) {
    ObserveRequest(request, response, start_ns, duration_ns);
  });

  HttpServerOptions http_options;
  http_options.port = options_.port;
  http_options.worker_threads = options_.limits.worker_threads;
  http_options.max_body_bytes = options_.limits.max_document_bytes;
  http_options.connection_deadline_ms =
      static_cast<int>(options_.limits.connection_deadline_ms);
  return http_.Start(http_options, error);
}

void ProjectionService::Stop() {
  http_.Stop();
  FlushJournal();
}

}  // namespace xmlproj
