// Blocking client library for the projection service (service/service.h):
// the programmatic face of the daemon's HTTP API, built on the capped
// HTTP client in common/http/http.h (the generalization of obs/server.h's
// HttpGet). Used by the xmlproj-client example binary, the service tests,
// and anything that wants to prune documents against a resident daemon
// without hand-rolling HTTP.
//
// Every call is one request/response exchange against 127.0.0.1:<port>
// with a wall-clock timeout and a response-size cap — a wedged or
// misbehaving daemon surfaces as a clean error, never a hang or an OOM.
// Non-2xx responses map back onto Status codes (503 → kUnavailable with
// the Retry-After hint in the message, 404 → kNotFound, 413 →
// kResourceExhausted, ...), so callers branch on code, not HTTP.

#ifndef XMLPROJ_SERVICE_CLIENT_H_
#define XMLPROJ_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xmlproj {

struct ProjectionClientOptions {
  uint16_t port = 0;
  // Per-request wall budget (connect + send + full response).
  int timeout_ms = 30000;
  // Response cap; pruned documents can be large but bounded.
  size_t max_response_bytes = 256u << 20;
};

// POST /workloads response, decoded.
struct WorkloadRegistration {
  std::string id;
  bool cache_hit = false;
  uint64_t queries = 0;
  uint64_t projector_names = 0;
  std::string raw_json;  // the full response body
};

// POST /prune response, decoded.
struct PruneOutcome {
  std::string output;     // the projected document bytes
  bool cache_hit = false; // X-Xmlproj-Cache header
  // Request identity echoed by the server: the trace id from the
  // response `traceparent` (the one the caller injected, or the one the
  // server minted) and the `X-Request-Id` header.
  std::string trace_id;
  std::string request_id;
};

// Optional per-prune knobs, mapped onto the service's query params
// (which map onto the pipeline's TaskBudget).
struct PruneRequestOptions {
  bool validate = false;
  size_t max_bytes = 0;      // 0 = server default
  uint64_t deadline_ms = 0;  // 0 = server default
  // W3C trace context to propagate ("00-<32 hex>-<16 hex>-<2 hex>");
  // empty sends none and the server mints a fresh trace.
  std::string traceparent;
};

class ProjectionClient {
 public:
  explicit ProjectionClient(const ProjectionClientOptions& options)
      : options_(options) {}

  // POST /dtds?name=&root= with the DTD text. Returns the response JSON.
  Result<std::string> RegisterDtd(const std::string& name,
                                  const std::string& root,
                                  std::string_view dtd_text);

  // POST /workloads[?dtd=] with the spec ("lang<TAB>query" lines).
  Result<WorkloadRegistration> RegisterWorkload(
      std::string_view spec, const std::string& dtd_name = "");

  // POST /prune?workload=<id> with the document.
  Result<PruneOutcome> Prune(const std::string& workload_id,
                             std::string_view document,
                             const PruneRequestOptions& options = {});

  // GET /workloads (registrations + cache stats), raw JSON.
  Result<std::string> ListWorkloads();

  // GET /healthz, raw JSON; ok() even when the service reports
  // degraded/open (the body says so) — only transport failures and
  // non-healthz HTTP errors are Status errors.
  Result<std::string> Healthz();

  // Any GET, raw body ("/metrics", "/statusz", ...).
  Result<std::string> Get(const std::string& path);

 private:
  ProjectionClientOptions options_;
};

// Best-effort scalar field extraction from the service's flat JSON
// responses (exposed for the client binary; not a JSON parser).
bool ExtractJsonStringField(std::string_view json, std::string_view key,
                            std::string* out);
bool ExtractJsonU64Field(std::string_view json, std::string_view key,
                         uint64_t* out);

}  // namespace xmlproj

#endif  // XMLPROJ_SERVICE_CLIENT_H_
