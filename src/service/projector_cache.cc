#include "service/projector_cache.h"

namespace xmlproj {

ProjectorCache::ProjectorCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (metrics != nullptr) {
    metrics->SetHelp("xmlproj_projector_cache_hits_total",
                     "Projector cache lookups served from cache.");
    metrics->SetHelp("xmlproj_projector_cache_misses_total",
                     "Projector cache lookups that required compilation.");
    metrics->SetHelp("xmlproj_projector_cache_evictions_total",
                     "Projectors evicted by the LRU policy.");
    metrics->SetHelp("xmlproj_projector_cache_size",
                     "Compiled projectors currently cached.");
    hits_counter_ = metrics->GetCounter("xmlproj_projector_cache_hits_total");
    misses_counter_ =
        metrics->GetCounter("xmlproj_projector_cache_misses_total");
    evictions_counter_ =
        metrics->GetCounter("xmlproj_projector_cache_evictions_total");
    size_gauge_ = metrics->GetGauge("xmlproj_projector_cache_size");
  }
}

std::shared_ptr<const NameSet> ProjectorCache::Get(
    const ProjectorCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
    return nullptr;
  }
  ++hits_;
  if (hits_counter_ != nullptr) hits_counter_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ProjectorCache::Put(const ProjectorCacheKey& key,
                         std::shared_ptr<const NameSet> projector) {
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(key, std::move(projector));
}

void ProjectorCache::PutLocked(const ProjectorCacheKey& key,
                               std::shared_ptr<const NameSet> projector) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(projector);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(projector));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    if (evictions_counter_ != nullptr) evictions_counter_->Increment();
  }
  if (size_gauge_ != nullptr) {
    size_gauge_->Set(static_cast<int64_t>(lru_.size()));
  }
}

Result<std::shared_ptr<const NameSet>> ProjectorCache::GetOrCompile(
    const ProjectorCacheKey& key,
    const std::function<Result<NameSet>()>& compile, bool* hit) {
  if (std::shared_ptr<const NameSet> cached = Get(key)) {
    if (hit != nullptr) *hit = true;
    return cached;
  }
  // Compile outside the lock: a slow inference must not block unrelated
  // lookups, and a duplicate concurrent compile is benign (deterministic
  // result, last insert wins).
  Result<NameSet> compiled = compile();
  if (!compiled.ok()) return compiled.status();
  auto projector = std::make_shared<const NameSet>(std::move(*compiled));
  {
    std::lock_guard<std::mutex> lock(mu_);
    PutLocked(key, projector);
  }
  if (hit != nullptr) *hit = false;
  return projector;
}

size_t ProjectorCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ProjectorCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ProjectorCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ProjectorCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace xmlproj
