// Projection-as-a-service: the long-lived pruning daemon core.
//
// The batch pipeline (projection/pipeline.h) answers "prune this corpus
// once"; ProjectionService turns the same fused pass into a resident
// server a client talks HTTP to:
//
//   POST /dtds?name=N&root=R        register a DTD (body: DTD text)
//   POST /workloads?dtd=N           register a query workload (body: one
//                                   query per line, "lang<TAB>query" or
//                                   "id<TAB>lang<TAB>query"; lang is
//                                   xpath or xquery) → workload id
//   POST /prune?workload=ID         prune the POSTed document with the
//                                   workload's cached projector → the
//                                   projected XML bytes
//   GET  /workloads                 registrations + per-workload stats
//   GET  /dtds                      registered DTDs
//   GET  /metrics /metrics.json /healthz /statusz /tracez
//                                   the obs plane (obs/server.h), mounted
//                                   on the same router — one port serves
//                                   both planes
//
// /prune runs PruneDocument(): a one-document corpus through the exact
// batch pass, so the bytes a client gets back are byte-identical to what
// the batch tool writes for the same document + workload (the parity the
// service tests and the CI smoke job diff). Per-request query params map
// onto the PR 3 budgets (?max_bytes=, ?deadline_ms=, ?validate=1).
//
// Admission control: when a CircuitBreaker is attached, /prune consults
// Allow() before doing any work — while the breaker is open the request
// fast-fails with 503 + Retry-After, and /healthz (same process, same
// breaker) truthfully reports "open"/503. Prune outcomes feed the
// breaker: server-side failures (deadline, budget, internal) record
// failures; client-input errors (malformed XML, invalid document) do
// not — a client sending garbage must not open the breaker for everyone.
//
// Persistence: with a journal directory configured the daemon appends
// one RunRecord per `journal_batch` completed prunes per workload (and
// flushes the remainder on Stop), so service traffic lands in the same
// journal the batch pipeline writes and SuggestBudgets()/breaker seeding
// read back.

#ifndef XMLPROJ_SERVICE_SERVICE_H_
#define XMLPROJ_SERVICE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/circuit.h"
#include "common/http/http.h"
#include "common/status.h"
#include "dtd/dtd.h"
#include "dtd/name_set.h"
#include "obs/journal.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/projector_cache.h"

namespace xmlproj {

// One parsed workload query line.
struct WorkloadQuery {
  std::string id;    // optional client-chosen label ("" = positional)
  std::string lang;  // "xpath" | "xquery"
  std::string text;
};

// Parses the POST /workloads body: one query per line, tab-separated
// "lang<TAB>query" or "id<TAB>lang<TAB>query"; blank lines and
// #-comments skipped. Errors on empty specs and unknown languages.
Result<std::vector<WorkloadQuery>> ParseWorkloadSpec(std::string_view spec);

// The workload fingerprint: an FNV-1a chain over the canonical query
// lines (lang + text, in registration order). Together with the DTD
// hash this keys the projector cache — identical workload text against
// the same DTD always lands on the same compiled projector.
uint64_t WorkloadFingerprint(const std::vector<WorkloadQuery>& queries);

// Compiles a workload into its merged type projector against `dtd`:
// per-query inference (XPath via projection/projection.h, XQuery via
// xquery/path_extraction.h, both materializing results since the service
// returns serialized bytes), union over the workload (projectors are
// closed under union, §1.2), plus the document root.
Result<NameSet> CompileWorkloadProjector(
    const Dtd& dtd, const std::vector<WorkloadQuery>& queries);

struct ServiceLimits {
  // Cap on a POSTed document (the HTTP server's body cap; larger
  // documents get 413 before the body is read).
  size_t max_document_bytes = 64u << 20;
  // Cap on a POST /workloads or /dtds body.
  size_t max_spec_bytes = 1u << 20;
  // HTTP worker threads (concurrent in-flight requests).
  int worker_threads = 4;
  // Per-connection read deadline (header + body), milliseconds.
  uint64_t connection_deadline_ms = 10000;
  // Compiled projectors kept by the LRU cache.
  size_t projector_cache_capacity = 64;
  // Completed prunes per workload folded into one journal RunRecord.
  // The remainder flushes on Stop.
  size_t journal_batch = 32;
  // Default per-request budgets when the client sends none (0 = none).
  size_t default_max_bytes = 0;
  uint64_t default_deadline_ms = 0;
};

struct ProjectionServiceOptions {
  // TCP port on 127.0.0.1; 0 picks an ephemeral port (port() after
  // Start).
  uint16_t port = 0;
  // Required; must outlive the service. The pipeline publishes its
  // metrics here, the cache its counters, and /metrics serves it.
  MetricsRegistry* metrics = nullptr;
  // Optional trace collector for /tracez and per-prune spans.
  TraceCollector* trace = nullptr;
  // Optional admission breaker; must outlive the service. Wired into
  // /healthz via ObsServerOptions::circuit_state automatically.
  CircuitBreaker* breaker = nullptr;
  // Optional structured log (obs/log.h): one "http.access" line per
  // parsed request, "prune.error" on failed prunes. Borrowed.
  StructuredLogger* logger = nullptr;
  // Optional per-workload SLO tracker (obs/slo.h): every /prune response
  // feeds it (5xx burns availability budget), and /statusz gains the
  // "slo" block. Borrowed.
  SloTracker* slo = nullptr;
  // Optional journal directory ("" = no journal).
  std::string journal_dir;
  ServiceLimits limits;
};

// Per-workload registration + live stats, as GET /workloads reports.
struct WorkloadInfo {
  std::string id;
  std::string dtd;
  size_t queries = 0;
  size_t projector_names = 0;
  uint64_t prunes = 0;       // completed prunes
  uint64_t cache_hits = 0;   // prunes served by a cached projector
  uint64_t failures = 0;     // prunes that returned an error
  uint64_t input_bytes = 0;  // over completed prunes
  uint64_t output_bytes = 0;
};

class ProjectionService {
 public:
  ProjectionService();
  ~ProjectionService();
  ProjectionService(const ProjectionService&) = delete;
  ProjectionService& operator=(const ProjectionService&) = delete;

  // Programmatic DTD registration (what the daemon uses for the builtin
  // "xmark" DTD); POST /dtds is the remote equivalent. Re-registering a
  // name with identical text is idempotent; with different text it
  // fails. May be called before or after Start.
  bool RegisterDtd(const std::string& name, std::string_view dtd_text,
                   const std::string& root_tag, std::string* error);

  // Binds and serves. False with a description in *error (bad options,
  // port in use, journal unopenable); Start may then be retried.
  bool Start(const ProjectionServiceOptions& options, std::string* error);

  // Drains in-flight requests, flushes pending journal batches, stops.
  // Idempotent.
  void Stop();

  bool running() const { return http_.running(); }
  uint16_t port() const { return http_.port(); }
  uint64_t requests_served() const { return http_.requests_served(); }

  // Introspection for tests and GET /workloads.
  std::vector<WorkloadInfo> ListWorkloads() const;
  const ProjectorCache* cache() const { return cache_.get(); }

 private:
  struct DtdEntry {
    std::string name;
    std::string root;
    uint64_t hash = 0;  // Fnv1a64 over the DTD text
    Dtd dtd;
  };
  struct WorkloadEntry;

  std::shared_ptr<const DtdEntry> FindDtd(const std::string& name) const;
  std::shared_ptr<WorkloadEntry> FindWorkload(const std::string& id) const;

  // The HttpServer observer: per-request RED histogram sample, SLO
  // record (/prune only), request span, and the access-log line.
  void ObserveRequest(const HttpRequest& request,
                      const HttpResponse& response, uint64_t start_ns,
                      uint64_t duration_ns);

  HttpResponse HandleRegisterDtd(const HttpRequest& request);
  HttpResponse HandleRegisterWorkload(const HttpRequest& request);
  HttpResponse HandlePrune(const HttpRequest& request);
  HttpResponse HandleListWorkloads(const HttpRequest& request);
  HttpResponse HandleListDtds(const HttpRequest& request);

  // Folds one completed prune into the workload's pending journal batch,
  // appending a RunRecord once the batch fills. FlushJournalLocked
  // writes out whatever is pending for every workload.
  void JournalPrune(const WorkloadEntry& entry, uint64_t wall_us,
                    size_t input_bytes, size_t output_bytes,
                    size_t peak_bytes, bool failed, const std::string& stage);
  void FlushJournal();

  ProjectionServiceOptions options_;
  HttpServer http_;
  bool mounted_ = false;
  std::unique_ptr<ProjectorCache> cache_;

  mutable std::mutex mu_;  // guards dtds_ and workloads_ maps
  std::map<std::string, std::shared_ptr<const DtdEntry>> dtds_;
  std::map<std::string, std::shared_ptr<WorkloadEntry>> workloads_;

  std::mutex journal_mu_;
  std::unique_ptr<RunJournal> journal_;
  struct PendingBatch {
    uint64_t start_unix_ms = 0;
    uint64_t prunes = 0;
    uint64_t failed = 0;
    uint64_t wall_us = 0;
    uint64_t input_bytes = 0;
    uint64_t output_bytes = 0;
    uint64_t peak_bytes = 0;
    std::map<std::string, uint64_t> quarantine;  // stage → count
  };
  std::map<std::string, PendingBatch> pending_;  // workload id → batch

  static RunRecord RecordForBatch(const std::string& workload_id,
                                  const PendingBatch& batch);
};

}  // namespace xmlproj

#endif  // XMLPROJ_SERVICE_SERVICE_H_
