// Reproduces Figure 5: memory used to process each query on the original
// vs the pruned document. Memory = loaded document arena + evaluator peak
// (see common/memory_meter.h for the substitution rationale: the paper
// measured process memory of Galax; we meter the engine deterministically
// — the original-vs-pruned ratio is the reported quantity).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace xmlproj {
namespace bench {
namespace {

int Main() {
  double scale = ScaleFromEnv();
  std::printf("=== Figure 5: memory use, original vs pruned ===\n");
  Workload w = LoadWorkload(scale);
  std::printf("document: %.2f MB on disk, %.2f MB loaded\n\n",
              Mb(w.text_bytes), Mb(w.doc.MemoryBytes()));
  std::printf("%-6s %14s %14s %9s\n", "query", "original(MB)",
              "pruned(MB)", "ratio");

  // Evaluator MemoryMeter peaks flow into gauges: the worst query's
  // footprint on each side is the Fig. 5 quantity a deployment would
  // alert on. XMLPROJ_METRICS_OUT=PATH dumps the registry as JSON.
  MetricsRegistry registry;
  Gauge* peak_original =
      registry.GetGauge("xmlproj_memory_peak_bytes_original");
  Gauge* peak_pruned = registry.GetGauge("xmlproj_memory_peak_bytes_pruned");

  double worst_ratio = 1e30;
  for (const BenchmarkQuery& query : AllBenchmarkQueries()) {
    auto projector = AnalyzeBenchmarkQuery(query, w.dtd);
    if (!projector.ok()) continue;
    auto pruned = PruneDocument(w.doc, w.interp, *projector);
    if (!pruned.ok()) continue;
    auto run_orig = RunBenchmarkQuery(query, w.doc);
    auto run_pruned = RunBenchmarkQuery(query, *pruned);
    if (!run_orig.ok() || !run_pruned.ok()) {
      std::printf("%-6s evaluation failed\n", query.id.c_str());
      continue;
    }
    peak_original->SetMax(static_cast<int64_t>(run_orig->memory_bytes));
    peak_pruned->SetMax(static_cast<int64_t>(run_pruned->memory_bytes));
    double ratio =
        static_cast<double>(run_orig->memory_bytes) /
        static_cast<double>(std::max<size_t>(1, run_pruned->memory_bytes));
    worst_ratio = std::min(worst_ratio, ratio);
    std::printf("%-6s %14.2f %14.2f %8.1fx\n", query.id.c_str(),
                Mb(run_orig->memory_bytes), Mb(run_pruned->memory_bytes),
                ratio);
  }
  std::printf(
      "\npaper shape check: every query processes the pruned document "
      "with less memory\n(worst ratio above: %.2fx >= 1).\n",
      worst_ratio);
  if (const char* path = std::getenv("XMLPROJ_METRICS_OUT")) {
    std::string json;
    AppendMetricsJson(registry, &json);
    if (!WriteTextFile(path, json)) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xmlproj

int main() { return xmlproj::bench::Main(); }
