#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_pruning.json.

Compares a freshly generated candidate sweep against the committed
baseline and fails (exit 1) when single-thread pruning throughput —
the zero-copy hot path, free of scheduling noise — regresses by more
than the threshold on either sweep:

  * results[threads==1].bytes_per_second          (multi-document corpus)
  * intra_doc.results[threads==1].bytes_per_second (single >=64MB doc)

Multi-thread points are reported for context but never gate: their
variance on shared CI runners swamps a 10% threshold.

Additionally gates the candidate's durable-checkpoint arm as an
absolute bound: obs_overhead.checkpoint_pct — what checkpoint
bookkeeping (content hash, record formatting, one fsync'd append per
task) adds on top of a run that already commits every output durably
(README "Checkpoint & resume") — must stay at or below
--checkpoint-threshold-pct (default 5). The bound is absolute, not
baseline-relative, so baselines recorded before the arm existed still
compare cleanly; a candidate lacking the field skips the check.

The traced-service arm gates the same way: obs_overhead.traced_pct —
what per-request tracing, structured access logging, and SLO accounting
add to serial /prune requests over a metrics-only service (README
"Request-scoped observability") — must stay at or below
--traced-threshold-pct (default 5), absolute, skip-if-absent.

Usage:
  compare_bench.py BASELINE CANDIDATE [--threshold 0.10] [--out diff.json]
                   [--checkpoint-threshold-pct 5] [--traced-threshold-pct 5]

Exit codes: 0 ok (improvements are reported), 1 regression beyond the
threshold, 2 malformed input (missing file / key / single-thread point).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def single_thread_bps(doc, sweep_name, results):
    for point in results:
        if point.get("threads") == 1:
            bps = point.get("bytes_per_second")
            if not isinstance(bps, (int, float)) or bps <= 0:
                print(f"compare_bench: {doc}: {sweep_name}: bad "
                      f"bytes_per_second {bps!r}", file=sys.stderr)
                sys.exit(2)
            return float(bps)
    print(f"compare_bench: {doc}: {sweep_name}: no threads==1 point",
          file=sys.stderr)
    sys.exit(2)


def sweeps(doc, label):
    out = {}
    if "results" not in doc:
        print(f"compare_bench: {label}: missing 'results'", file=sys.stderr)
        sys.exit(2)
    out["corpus_1t"] = single_thread_bps(label, "results", doc["results"])
    intra = doc.get("intra_doc")
    if intra and intra.get("results"):
        out["intra_doc_1t"] = single_thread_bps(
            label, "intra_doc.results", intra["results"])
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed fractional regression (default 0.10)")
    parser.add_argument("--out", default="",
                        help="write the comparison as JSON to this path")
    parser.add_argument("--checkpoint-threshold-pct", type=float, default=5.0,
                        help="max allowed obs_overhead.checkpoint_pct in the "
                             "candidate (absolute bound, default 5)")
    parser.add_argument("--traced-threshold-pct", type=float, default=5.0,
                        help="max allowed obs_overhead.traced_pct in the "
                             "candidate (absolute bound, default 5)")
    args = parser.parse_args()

    cand_doc = load(args.candidate)
    base = sweeps(load(args.baseline), args.baseline)
    cand = sweeps(cand_doc, args.candidate)

    comparisons = []
    failed = False
    for name, base_bps in sorted(base.items()):
        if name not in cand:
            print(f"compare_bench: candidate lacks sweep '{name}'",
                  file=sys.stderr)
            sys.exit(2)
        cand_bps = cand[name]
        delta = (cand_bps - base_bps) / base_bps
        regressed = delta < -args.threshold
        failed = failed or regressed
        comparisons.append({
            "sweep": name,
            "baseline_bytes_per_second": base_bps,
            "candidate_bytes_per_second": cand_bps,
            "delta_pct": round(delta * 100, 2),
            "regressed": regressed,
        })
        verdict = ("REGRESSION" if regressed
                   else "improved" if delta > args.threshold
                   else "ok")
        print(f"{name}: {base_bps / 1e6:8.1f} -> {cand_bps / 1e6:8.1f} MB/s "
              f"({delta * 100:+.1f}%) {verdict}")

    checkpoint = None
    checkpoint_pct = cand_doc.get("obs_overhead", {}).get("checkpoint_pct")
    if isinstance(checkpoint_pct, (int, float)):
        # Negative deltas are measurement noise (the arm ran faster than
        # bare); only a positive cost can breach the bound.
        over = checkpoint_pct > args.checkpoint_threshold_pct
        failed = failed or over
        checkpoint = {
            "checkpoint_pct": round(float(checkpoint_pct), 2),
            "threshold_pct": args.checkpoint_threshold_pct,
            "regressed": over,
        }
        verdict = "REGRESSION" if over else "ok"
        print(f"checkpoint overhead: {checkpoint_pct:+.1f}% vs durable "
              f"writes (bound {args.checkpoint_threshold_pct:.0f}%) "
              f"{verdict}")
        if over:
            print(f"compare_bench: checkpoint bookkeeping costs "
                  f"{checkpoint_pct:.1f}% over durable output writes, "
                  f"above the {args.checkpoint_threshold_pct:.0f}% bound",
                  file=sys.stderr)

    traced = None
    traced_pct = cand_doc.get("obs_overhead", {}).get("traced_pct")
    if isinstance(traced_pct, (int, float)):
        over = traced_pct > args.traced_threshold_pct
        failed = failed or over
        traced = {
            "traced_pct": round(float(traced_pct), 2),
            "threshold_pct": args.traced_threshold_pct,
            "regressed": over,
        }
        verdict = "REGRESSION" if over else "ok"
        print(f"traced-request overhead: {traced_pct:+.1f}% vs metrics-only "
              f"/prune (bound {args.traced_threshold_pct:.0f}%) {verdict}")
        if over:
            print(f"compare_bench: request tracing+logging+SLO accounting "
                  f"costs {traced_pct:.1f}% over a metrics-only service, "
                  f"above the {args.traced_threshold_pct:.0f}% bound",
                  file=sys.stderr)

    report = {
        "threshold_pct": args.threshold * 100,
        "passed": not failed,
        "comparisons": comparisons,
    }
    if checkpoint is not None:
        report["checkpoint_overhead"] = checkpoint
    if traced is not None:
        report["traced_overhead"] = traced
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    if failed:
        print(f"compare_bench: single-thread throughput regressed more than "
              f"{args.threshold * 100:.0f}% vs {args.baseline}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
