// Shared setup for the paper-reproduction benchmark binaries.
//
// Scale control: the XMLPROJ_SCALE environment variable sets the xmlgen
// scale factor (default 0.01 ≈ 1MB so that `for b in build/bench/*; do $b;
// done` completes quickly; the paper's 56MB document corresponds to
// XMLPROJ_SCALE=0.5).

#ifndef XMLPROJ_BENCH_BENCH_UTIL_H_
#define XMLPROJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dtd/validator.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xmark/workbench.h"
#include "xmark/xmark_dtd.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace bench {

inline double ScaleFromEnv(double default_scale = 0.01) {
  const char* env = std::getenv("XMLPROJ_SCALE");
  if (env == nullptr) return default_scale;
  double scale = std::atof(env);
  return scale > 0 ? scale : default_scale;
}

struct Workload {
  Dtd dtd;
  Document doc;
  Interpretation interp;
  size_t text_bytes = 0;  // serialized (on-disk) size of the document
};

// Generates and validates the benchmark document; exits on failure.
inline Workload LoadWorkload(double scale) {
  auto dtd = LoadXMarkDtd();
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    std::exit(1);
  }
  XMarkOptions options;
  options.scale = scale;
  auto doc = GenerateXMark(options);
  if (!doc.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 doc.status().ToString().c_str());
    std::exit(1);
  }
  auto interp = Interpret(*doc, *dtd);
  if (!interp.ok()) {
    std::fprintf(stderr, "interpretation: %s\n",
                 interp.status().ToString().c_str());
    std::exit(1);
  }
  Workload w{std::move(*dtd), std::move(*doc), std::move(*interp), 0};
  w.text_bytes = SerializeDocument(w.doc).size();
  return w;
}

// Serialized size of a document (the paper reports on-disk MB).
inline size_t SerializedBytes(const Document& doc) {
  return SerializeDocument(doc).size();
}

inline double Mb(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace bench
}  // namespace xmlproj

#endif  // XMLPROJ_BENCH_BENCH_UTIL_H_
