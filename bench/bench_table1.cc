// Reproduces Table 1 of the paper: per benchmark query, the size of the
// pruned document relative to the original ("Gain in Size"), the speedup
// of running the query on the pruned document ("Gain in Speed"), and the
// memory needed to process the pruned document.
//
// The paper's first two rows (largest processable document) depended on a
// 512MB/3GHz 2006 desktop; we report the deterministic, size-independent
// quantities (size %, speed ×, memory ratio) that define the result's
// shape. Run with XMLPROJ_SCALE=0.5 for the paper's 56MB setting.

#include <cstdio>

#include "bench/bench_util.h"

namespace xmlproj {
namespace bench {
namespace {

int Main() {
  double scale = ScaleFromEnv();
  std::printf("=== Table 1: pruning gains per benchmark query ===\n");
  Workload w = LoadWorkload(scale);
  std::printf(
      "document: XMark scale %.4g, %.2f MB on disk, %zu nodes, "
      "%.2f MB in memory\n\n",
      scale, Mb(w.text_bytes), w.doc.content_node_count(),
      Mb(w.doc.MemoryBytes()));
  // The paper's first Table-1 row reports the largest document its 512MB
  // machine could process per query after pruning; we estimate the same
  // quantity from engine memory per input MB.
  constexpr double kBudgetMb = 512.0;
  std::printf("%-6s %10s %10s %8s %8s %11s %11s %7s %9s\n", "query",
              "orig(MB)", "pruned(MB)", "size%", "speedx", "mem-orig",
              "mem-pruned", "mem-x", "max@512MB");

  double repeat_floor_seconds = 0.05;
  for (const BenchmarkQuery& query : AllBenchmarkQueries()) {
    auto projector = AnalyzeBenchmarkQuery(query, w.dtd);
    if (!projector.ok()) {
      std::printf("%-6s analysis failed: %s\n", query.id.c_str(),
                  projector.status().ToString().c_str());
      continue;
    }
    PruneStats stats;
    auto pruned = PruneDocument(w.doc, w.interp, *projector, &stats);
    if (!pruned.ok()) {
      std::printf("%-6s pruning failed\n", query.id.c_str());
      continue;
    }
    size_t pruned_bytes = SerializedBytes(*pruned);

    // Repeat fast queries to stabilize timings.
    auto measure = [&](const Document& doc) -> Result<QueryRun> {
      XMLPROJ_ASSIGN_OR_RETURN(QueryRun run,
                               RunBenchmarkQuery(query, doc));
      int reps = 1;
      while (run.seconds * reps < repeat_floor_seconds && reps < 64) {
        XMLPROJ_ASSIGN_OR_RETURN(QueryRun again,
                                 RunBenchmarkQuery(query, doc));
        run.seconds = std::min(run.seconds, again.seconds);
        reps *= 2;
      }
      return run;
    };
    auto run_orig = measure(w.doc);
    auto run_pruned = measure(*pruned);
    if (!run_orig.ok() || !run_pruned.ok()) {
      std::printf("%-6s evaluation failed\n", query.id.c_str());
      continue;
    }
    if (run_orig->serialized != run_pruned->serialized) {
      std::printf("%-6s UNSOUND: results differ!\n", query.id.c_str());
      continue;
    }
    double size_pct = 100.0 * static_cast<double>(pruned_bytes) /
                      static_cast<double>(w.text_bytes);
    double speedup = run_pruned->seconds > 0
                         ? run_orig->seconds / run_pruned->seconds
                         : 1.0;
    double mem_ratio =
        static_cast<double>(run_orig->memory_bytes) /
        static_cast<double>(std::max<size_t>(1, run_pruned->memory_bytes));
    double mem_per_input_mb =
        Mb(run_pruned->memory_bytes) / Mb(w.text_bytes);
    double max_doc_mb =
        mem_per_input_mb > 0 ? kBudgetMb / mem_per_input_mb : 0;
    std::printf("%-6s %10.2f %10.2f %7.1f%% %7.1fx %9.2fMB %9.2fMB "
                "%6.1fx %7.0fMB\n",
                query.id.c_str(), Mb(w.text_bytes), Mb(pruned_bytes),
                size_pct, speedup, Mb(run_orig->memory_bytes),
                Mb(run_pruned->memory_bytes), mem_ratio, max_doc_mb);
  }
  std::printf(
      "\npaper shape check: structure-only queries (QM06, QM07) prune to "
      "a few %%;\ndescription-reading queries (QM14, QP21) keep ~2/3 of "
      "the bytes but still win\non memory (~3x less); the unselective "
      "QP13 keeps the whole document.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xmlproj

int main() { return xmlproj::bench::Main(); }
