// Reproduces the §6 static-analysis claim: "the time of the static
// analysis is always negligible (lower than half a second) even for
// complex queries and DTDs", including the text's stress setting of long
// (~20-step) XPath expressions.
//
// google-benchmark binary: each benchmark measures the full pipeline from
// query text to type projector against the XMark DTD.

#include <string>

#include <benchmark/benchmark.h>

#include "projection/projection.h"
#include "xmark/queries.h"
#include "xmark/workbench.h"
#include "xmark/xmark_dtd.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

namespace xmlproj {
namespace {

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

const std::vector<BenchmarkQuery>& Queries() {
  static const std::vector<BenchmarkQuery>* queries =
      new std::vector<BenchmarkQuery>(AllBenchmarkQueries());
  return *queries;
}

void BM_AnalyzeBenchmarkQuery(benchmark::State& state) {
  const BenchmarkQuery& query =
      Queries()[static_cast<size_t>(state.range(0))];
  const Dtd& dtd = XmarkDtd();
  for (auto _ : state) {
    auto projector = AnalyzeBenchmarkQuery(query, dtd);
    if (!projector.ok()) {
      state.SkipWithError("analysis failed");
      return;
    }
    benchmark::DoNotOptimize(projector);
  }
  state.SetLabel(query.id);
}
BENCHMARK(BM_AnalyzeBenchmarkQuery)->DenseRange(0, 42);

// The §6 stress case: a twenty-step descendant-heavy path.
void BM_AnalyzeLongPath(benchmark::State& state) {
  std::string query =
      "/site/regions/*/item/mailbox/mail/text//keyword/ancestor::item/"
      "description//listitem//text/keyword/ancestor::listitem/"
      "parent::parlist/parent::description/text//emph/"
      "keyword[ancestor::mail or ancestor::annotation]";
  const Dtd& dtd = XmarkDtd();
  for (auto _ : state) {
    auto analysis = AnalyzeXPathQuery(dtd, query);
    if (!analysis.ok()) state.SkipWithError("analysis failed");
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(BM_AnalyzeLongPath);

// DTD loading and relation precomputation.
void BM_LoadXMarkDtd(benchmark::State& state) {
  for (auto _ : state) {
    auto dtd = LoadXMarkDtd();
    benchmark::DoNotOptimize(dtd);
  }
}
BENCHMARK(BM_LoadXMarkDtd);

// Path extraction alone for the most complex XQuery (QM10).
void BM_ExtractPathsQM10(benchmark::State& state) {
  auto parsed = ParseXQuery(XMarkQueries()[9].text);
  if (!parsed.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    auto paths = ExtractPaths(**parsed);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_ExtractPathsQM10);

}  // namespace
}  // namespace xmlproj

BENCHMARK_MAIN();
