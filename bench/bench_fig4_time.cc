// Reproduces Figure 4: query processing time on the original vs the
// pruned document, per benchmark query (the paper plots both bars for a
// 56MB document; XMLPROJ_SCALE=0.5 matches that size).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace xmlproj {
namespace bench {
namespace {

int Main() {
  double scale = ScaleFromEnv();
  std::printf("=== Figure 4: processing time, original vs pruned ===\n");
  Workload w = LoadWorkload(scale);
  std::printf("document: %.2f MB on disk\n\n", Mb(w.text_bytes));
  std::printf("%-6s %14s %14s %9s\n", "query", "original(ms)",
              "pruned(ms)", "speedup");

  for (const BenchmarkQuery& query : AllBenchmarkQueries()) {
    auto projector = AnalyzeBenchmarkQuery(query, w.dtd);
    if (!projector.ok()) continue;
    auto pruned = PruneDocument(w.doc, w.interp, *projector);
    if (!pruned.ok()) continue;

    auto best_of = [&](const Document& doc) -> double {
      double best = 1e30;
      for (int i = 0; i < 3; ++i) {
        auto run = RunBenchmarkQuery(query, doc);
        if (!run.ok()) return -1;
        best = std::min(best, run->seconds);
      }
      return best;
    };
    double t_orig = best_of(w.doc);
    double t_pruned = best_of(*pruned);
    if (t_orig < 0 || t_pruned < 0) {
      std::printf("%-6s evaluation failed\n", query.id.c_str());
      continue;
    }
    std::printf("%-6s %14.3f %14.3f %8.1fx\n", query.id.c_str(),
                t_orig * 1000, t_pruned * 1000,
                t_pruned > 0 ? t_orig / t_pruned : 1.0);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xmlproj

int main() { return xmlproj::bench::Main(); }
