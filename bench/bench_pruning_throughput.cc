// Reproduces the §6 pruning-cost claims: pruning is a single bufferless
// one-pass traversal whose time is linear in the document size (the paper:
// computing the projector ~0.5s, pruning a 60MB document < 10s, constant
// memory), and pruning-while-parsing costs no more than parsing alone.
//
// google-benchmark binary; bytes/sec rates make the linearity visible
// across scales.

#include <string>

#include <benchmark/benchmark.h>

#include "projection/pruner.h"
#include "projection/projection.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xmark/workbench.h"

namespace xmlproj {
namespace {

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

const std::string& DocText(int which) {
  static std::string* texts[3] = {nullptr, nullptr, nullptr};
  static const double kScales[3] = {0.002, 0.008, 0.032};
  if (texts[which] == nullptr) {
    XMarkOptions options;
    options.scale = kScales[which];
    texts[which] = new std::string(GenerateXMarkText(options));
  }
  return *texts[which];
}

const NameSet& SampleProjector() {
  // A moderately selective query: QM02's data needs.
  static const NameSet* projector = [] {
    auto analysis = AnalyzeXPathQuery(
        XmarkDtd(),
        "/site/open_auctions/open_auction/bidder/increase");
    return new NameSet(analysis->projector);
  }();
  return *projector;
}

// Baseline: parsing alone (pruning-during-parsing is compared to this).
void BM_ParseOnly(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc = ParseXml(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseOnly)->DenseRange(0, 2);

// Prune while parsing (the paper's "no overhead" deployment).
void BM_ParseAndPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc = ParseAndPrune(text, XmarkDtd(), SampleProjector());
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseAndPrune)->DenseRange(0, 2);

// Validate-and-prune fused in one pass (§6's "pruning can be executed
// during parsing and/or validation").
void BM_ParseValidateAndPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc =
        ParseValidateAndPrune(text, XmarkDtd(), SampleProjector());
    if (!doc.ok()) state.SkipWithError("invalid document");
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseValidateAndPrune)->DenseRange(0, 2);

// Streaming prune of an in-memory document (SAX replay, no parsing).
void BM_StreamingPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  Document doc = std::move(ParseXml(text)).value();
  for (auto _ : state) {
    auto pruned = PruneViaStreaming(doc, XmarkDtd(), SampleProjector());
    benchmark::DoNotOptimize(pruned);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StreamingPrune)->DenseRange(0, 2);

// DOM prune given a validated interpretation (Def 2.7 verbatim).
void BM_DomPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  Document doc = std::move(ParseXml(text)).value();
  Interpretation interp =
      std::move(Interpret(doc, XmarkDtd())).value();
  for (auto _ : state) {
    auto pruned = PruneDocument(doc, interp, SampleProjector());
    benchmark::DoNotOptimize(pruned);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_DomPrune)->DenseRange(0, 2);

// Validation throughput (pruning can piggy-back on it, §6).
void BM_Validate(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  Document doc = std::move(ParseXml(text)).value();
  for (auto _ : state) {
    auto interp = Validate(doc, XmarkDtd());
    benchmark::DoNotOptimize(interp);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Validate)->DenseRange(0, 2);

}  // namespace
}  // namespace xmlproj

BENCHMARK_MAIN();
