// Reproduces the §6 pruning-cost claims: pruning is a single bufferless
// one-pass traversal whose time is linear in the document size (the paper:
// computing the projector ~0.5s, pruning a 60MB document < 10s, constant
// memory), and pruning-while-parsing costs no more than parsing alone.
// On top of the single-document numbers, BM_PipelineCorpus* sweep the
// parallel pipeline (projection/pipeline.h) across worker counts on a
// multi-document XMark corpus.
//
// google-benchmark binary; bytes/sec rates make the linearity visible
// across scales. In addition to the google-benchmark output, the binary
// runs a pipeline thread sweep and writes machine-readable results to
// BENCH_pruning.json (the repo's perf trajectory) — including the corpus
// pruning summary (Table 1 quantities) — plus a full MetricsRegistry dump
// (stage latency histograms, pool queue stats; see README
// "Observability") of one instrumented max-thread run, and an
// obs-overhead A/B point (bare run vs. labeled registry + live /metrics
// server with a validating self-scrape, plus a durable-checkpoint arm
// whose bookkeeping cost over plain durable output writes
// compare_bench.py gates at <=5%, plus a service-prune arm measuring the
// request-scoped observability tax — traceparent propagation, span
// recording, access logging, SLO accounting — over a metrics-only
// /prune baseline, gated at <=5% too). Extra flags, consumed before
// google-benchmark sees the command line:
//   --bench_json=PATH        output path (default BENCH_pruning.json)
//   --metrics_json=PATH      registry dump path
//                            (default BENCH_pruning.metrics.json)
//   --sweep_docs=N           corpus size for the sweep (default 16)
//   --sweep_scale=S          per-document xmlgen scale (default 0.002)
//   --sweep_reps=R           repetitions per thread count, best-of (default 3)
//   --sweep_max_threads=T    top of the 1..T sweep (default max(4, cores))
//   --intra_scale=S          xmlgen scale of the single large document for
//                            the intra-doc sweep (default 0.16, ~11MB; CI
//                            and the recorded JSON use 1.0, ~71MB, for the
//                            >=64MB contract)
//   --intra_max_threads=T    top of the intra-doc 1..T sweep
//                            (default max(4, cores))
//   --intra_chunk_bytes=N    target chunk size (default 4MB)
//   --intra_reps=R           repetitions per point, best-of (default 3)
//   --no_sweep               skip the sweep/JSON (pure google-benchmark run)
//
// The intra-doc sweep shards ONE document across cores (chunked pruning,
// projection/chunked.h) instead of fanning documents out, and verifies
// every point's output byte-identical to the 1-thread sequential pass
// before recording it.
//
// The timed sweep runs are uninstrumented (metrics stay out of the
// measurement); the instrumented run happens once afterwards.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/http/http.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/push.h"
#include "obs/server.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/service.h"
#include "projection/checkpoint.h"
#include "projection/chunked.h"
#include "projection/pipeline.h"
#include "projection/pruner.h"
#include "projection/projection.h"
#include "xmark/corpus.h"
#include "xmark/generator.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xmark/workbench.h"

namespace xmlproj {
namespace {

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

const std::string& DocText(int which) {
  static std::string* texts[3] = {nullptr, nullptr, nullptr};
  static const double kScales[3] = {0.002, 0.008, 0.032};
  if (texts[which] == nullptr) {
    XMarkOptions options;
    options.scale = kScales[which];
    texts[which] = new std::string(GenerateXMarkText(options));
  }
  return *texts[which];
}

const NameSet& SampleProjector() {
  // A moderately selective query: QM02's data needs.
  static const NameSet* projector = [] {
    auto analysis = AnalyzeXPathQuery(
        XmarkDtd(),
        "/site/open_auctions/open_auction/bidder/increase");
    return new NameSet(analysis->projector);
  }();
  return *projector;
}

// Baseline: parsing alone (pruning-during-parsing is compared to this).
void BM_ParseOnly(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc = ParseXml(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseOnly)->DenseRange(0, 2);

// Prune while parsing (the paper's "no overhead" deployment).
void BM_ParseAndPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc = ParseAndPrune(text, XmarkDtd(), SampleProjector());
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseAndPrune)->DenseRange(0, 2);

// Validate-and-prune fused in one pass (§6's "pruning can be executed
// during parsing and/or validation").
void BM_ParseValidateAndPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto doc =
        ParseValidateAndPrune(text, XmarkDtd(), SampleProjector());
    if (!doc.ok()) state.SkipWithError("invalid document");
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseValidateAndPrune)->DenseRange(0, 2);

// Streaming prune of an in-memory document (SAX replay, no parsing).
void BM_StreamingPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  Document doc = std::move(ParseXml(text)).value();
  for (auto _ : state) {
    auto pruned = PruneViaStreaming(doc, XmarkDtd(), SampleProjector());
    benchmark::DoNotOptimize(pruned);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StreamingPrune)->DenseRange(0, 2);

// DOM prune given a validated interpretation (Def 2.7 verbatim).
void BM_DomPrune(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  Document doc = std::move(ParseXml(text)).value();
  Interpretation interp =
      std::move(Interpret(doc, XmarkDtd())).value();
  for (auto _ : state) {
    auto pruned = PruneDocument(doc, interp, SampleProjector());
    benchmark::DoNotOptimize(pruned);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_DomPrune)->DenseRange(0, 2);

// Validation throughput (pruning can piggy-back on it, §6).
void BM_Validate(benchmark::State& state) {
  const std::string& text = DocText(static_cast<int>(state.range(0)));
  Document doc = std::move(ParseXml(text)).value();
  for (auto _ : state) {
    auto interp = Validate(doc, XmarkDtd());
    benchmark::DoNotOptimize(interp);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Validate)->DenseRange(0, 2);

// --- Parallel pipeline: corpus × merged workload projector --------------

const std::vector<std::string>& PipelineCorpus() {
  static const std::vector<std::string>* corpus = [] {
    XMarkCorpusOptions options;
    options.documents = 8;
    options.scale = 0.002;
    return new std::vector<std::string>(GenerateXMarkCorpus(options));
  }();
  return *corpus;
}

const NameSet& WorkloadMergedProjector() {
  static const NameSet* projector = new NameSet(
      std::move(WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload()))
          .value());
  return *projector;
}

const std::vector<NameSet>& WorkloadPerQueryProjectors() {
  static const std::vector<NameSet>* projectors =
      new std::vector<NameSet>(std::move(WorkloadProjectors(
                                             XmarkDtd(),
                                             XMarkDashboardWorkload()))
                                   .value());
  return *projectors;
}

// Aggregate throughput of the fan-out across documents; range(0) is the
// worker count. UseRealTime: the work happens on pool threads.
void BM_PipelineCorpus(benchmark::State& state) {
  const std::vector<std::string>& corpus = PipelineCorpus();
  PipelineOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto results =
        PruneCorpus(corpus, XmarkDtd(), WorkloadMergedProjector(), options);
    if (!results.ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(CorpusBytes(corpus)));
}
BENCHMARK(BM_PipelineCorpus)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Multi-query deployment: every document pruned once per query with the
// per-query projectors (documents × queries independent tasks).
void BM_PipelineMultiQuery(benchmark::State& state) {
  const std::vector<std::string>& corpus = PipelineCorpus();
  PipelineOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto results = PruneCorpusPerQuery(corpus, XmarkDtd(),
                                       WorkloadPerQueryProjectors(), options);
    if (!results.ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(CorpusBytes(corpus) *
                           WorkloadPerQueryProjectors().size()));
}
BENCHMARK(BM_PipelineMultiQuery)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- Thread sweep + BENCH_pruning.json ----------------------------------

struct SweepConfig {
  std::string json_path = "BENCH_pruning.json";
  std::string metrics_json_path = "BENCH_pruning.metrics.json";
  int docs = 16;
  double scale = 0.002;
  int reps = 3;
  int max_threads = 0;  // 0: max(4, hardware)
  // Intra-document (single large doc, chunked) sweep.
  double intra_scale = 0.16;      // ~11MB; CI uses 1.0 (>=64MB)
  int intra_max_threads = 0;      // 0: max(4, hardware)
  size_t intra_chunk_bytes = 4u << 20;
  int intra_reps = 3;
  bool enabled = true;
};

struct SweepPoint {
  int threads = 0;
  double seconds = 0;
  double bytes_per_second = 0;
  double speedup = 1.0;
};

// Intra-document sweep: ONE large XMark document, chunked across 1..T
// threads (projection/chunked.h via PipelineOptions::intra_doc). Every
// point's output is diffed against the 1-thread sequential baseline —
// a byte mismatch fails the bench, so the recorded curve is also a
// correctness witness. Returns false on failure.
bool RunIntraDocSweep(const SweepConfig& config,
                      std::vector<SweepPoint>* points, size_t* doc_bytes,
                      size_t* chunks_planned) {
  XMarkOptions doc_options;
  doc_options.scale = config.intra_scale;
  std::string doc = GenerateXMarkText(doc_options);
  *doc_bytes = doc.size();
  const NameSet& projector = WorkloadMergedProjector();

  IntraDocOptions plan_options;
  plan_options.threads = 2;  // planner needs chunking enabled
  plan_options.chunk_bytes = config.intra_chunk_bytes;
  auto plan = PlanChunks(doc, XmarkDtd(), projector, /*validate=*/false,
                         plan_options);
  *chunks_planned = plan.has_value() ? plan->chunks.size() : 0;

  int hardware = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  int max_threads = config.intra_max_threads > 0 ? config.intra_max_threads
                                                 : std::max(4, hardware);
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) {
    thread_counts.push_back(max_threads);
  }

  std::printf("\nintra-doc sweep: one %.1f MB document, chunk target %.1f MB,"
              " %zu chunks planned, best of %d\n",
              doc.size() / (1024.0 * 1024.0),
              config.intra_chunk_bytes / (1024.0 * 1024.0), *chunks_planned,
              std::max(config.intra_reps, 1));
  std::vector<std::string> corpus = {std::move(doc)};
  std::string baseline;
  for (int threads : thread_counts) {
    PipelineOptions options;
    options.num_threads = 1;  // one document: parallelism is intra-doc
    options.intra_doc.threads = threads;
    options.intra_doc.chunk_bytes = config.intra_chunk_bytes;
    double best = 0;
    for (int rep = 0; rep < std::max(config.intra_reps, 1); ++rep) {
      auto run = PruneCorpus(corpus, XmarkDtd(), projector, options);
      if (!run.ok()) {
        std::fprintf(stderr, "intra-doc sweep failed at %d threads: %s\n",
                     threads, run.status().ToString().c_str());
        return false;
      }
      if (threads == 1 && rep == 0) {
        baseline = run->results[0].output;
      } else if (run->results[0].output != baseline) {
        std::fprintf(stderr,
                     "intra-doc sweep: %d-thread output diverges from the "
                     "sequential baseline\n",
                     threads);
        return false;
      }
      double seconds = run->summary.wall_seconds;
      if (rep == 0 || seconds < best) best = seconds;
    }
    SweepPoint point;
    point.threads = threads;
    point.seconds = best;
    point.bytes_per_second = static_cast<double>(*doc_bytes) / best;
    point.speedup = points->empty() ? 1.0 : (*points)[0].seconds / best;
    points->push_back(point);
    std::printf("  intra-doc threads=%-2d  %8.1f ms  %7.1f MB/s  "
                "speedup %.2fx\n",
                threads, best * 1e3,
                point.bytes_per_second / (1024.0 * 1024.0), point.speedup);
  }
  return true;
}

// --- Obs overhead A/B ---------------------------------------------------
//
// Same per-query workload three ways:
//   bare        — no registry, no server: the zero-instrumentation
//                 configuration where the pipeline reads no clocks and
//                 opens no sockets.
//   A (baseline)— unlabeled MetricsRegistry attached. This carries the
//                 documented cost of the per-event stage-split timers
//                 (two clock reads per SAX event, projection/pipeline.cc)
//                 that have shipped since the observability layer landed.
//   B (observed)— the same registry with query_id/corpus labels on and a
//                 live ObsServer attached; the self-scrape of /metrics
//                 happens after the timed reps and validates the
//                 end-to-end scrape path (status line, labeled series).
// The recorded A→B delta isolates exactly what labels + the server add
// and is expected to sit within run-to-run noise: labels cost one
// registry lookup per counter per *task*, never per SAX event, and the
// idle listener thread only polls its socket. The bare→A delta is
// reported separately as the (pre-existing) instrumentation cost.
struct ObsOverheadResult {
  double bare_seconds = 0;      // best-of, no instrumentation
  double baseline_seconds = 0;  // best-of A: unlabeled registry
  double observed_seconds = 0;  // best-of B: labeled + live server
  double push_seconds = 0;      // best-of C: B + statsd push flusher
  double overhead_pct = 0;      // (B - A) / A * 100
  double instrumentation_pct = 0;  // (A - bare) / bare * 100
  double push_pct = 0;          // (C - B) / B * 100 — the push-sink cost
  double written_seconds = 0;     // best-of W: bare + durable output writes
  double checkpoint_seconds = 0;  // best-of D: full durable checkpoint
  double checkpoint_pct = 0;      // (D - W) / W * 100 — the bookkeeping tax
  double service_seconds = 0;     // best-of S: /prune, metrics only
  double traced_seconds = 0;      // best-of T: /prune, trace+log+slo on
  double traced_pct = 0;          // (T - S) / S * 100 — request obs cost
  uint64_t traced_spans = 0;      // spans the traced arm recorded
  uint64_t push_flushes = 0;
  uint64_t push_datagrams = 0;
  bool scrape_ok = false;
  size_t scrape_bytes = 0;
};

// S vs T: the request-scoped observability tax on the service hot path.
// The same corpus is pruned serially over loopback HTTP two ways:
//   S — ProjectionService with the (mandatory) MetricsRegistry only.
//   T — the same service with the full PR-10 request plane on: a
//       TraceCollector (request span + stage spans per prune), a
//       StructuredLogger writing access lines to a real file, an
//       SloTracker, and a client-injected W3C traceparent per request.
// compare_bench.py gates (T - S) / S at <=5%: per-request tracing and
// logging must stay a constant few-microsecond cost per prune, never a
// per-byte one. Single worker thread, serial client — the arm measures
// per-request overhead, not scheduling. The arm generates its own
// corpus of paper-scale documents (~700KB each, vs the sweep's ~140KB)
// so the constant per-request cost is judged against realistic request
// work, and prunes it several passes per timed window to push the
// window well past scheduler noise.
bool RunTracedServiceArm(int reps, ObsOverheadResult* result) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 4;
  corpus_options.scale = 0.01;
  const std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  constexpr int kPassesPerWindow = 3;
  std::string spec;
  for (const BenchmarkQuery& query : XMarkDashboardWorkload()) {
    spec += query.id;
    spec += '\t';
    spec += query.language == QueryLanguage::kXQuery ? "xquery" : "xpath";
    spec += '\t';
    spec += query.text;
    spec += '\n';
  }

  // One resident service per arm; the timed windows ALTERNATE between
  // the two. Running arm S to completion and then arm T hands whichever
  // arm goes first a systematic (CPU frequency / cache state) edge that
  // dwarfs the effect being measured — interleaving gives both arms the
  // same drift and best-of-reps takes each arm's quietest window.
  struct Arm {
    MetricsRegistry registry;
    TraceCollector trace;
    StructuredLogger logger;
    SloTracker slo;
    ProjectionService service;
    std::string workload_id;
    std::string log_dir, log_path;
    bool traced = false;
    double best_seconds = 0;
  };
  Arm arms[2];
  arms[1].traced = true;

  for (Arm& arm : arms) {
    std::string error;
    if (arm.traced) {
      char templ[] = "/tmp/xmlproj_bench_obs_XXXXXX";
      const char* dir = mkdtemp(templ);
      if (dir == nullptr) {
        std::fprintf(stderr, "traced arm: mkdtemp failed\n");
        return false;
      }
      arm.log_dir = dir;
      arm.log_path = arm.log_dir + "/access.log";
      if (!arm.logger.Open(arm.log_path, &error)) {
        std::fprintf(stderr, "traced arm: log open failed: %s\n",
                     error.c_str());
        return false;
      }
    }
    if (!arm.service.RegisterDtd("xmark", XMarkDtdText(), "site", &error)) {
      std::fprintf(stderr, "traced arm: DTD registration failed: %s\n",
                   error.c_str());
      return false;
    }
    ProjectionServiceOptions options;
    options.metrics = &arm.registry;
    options.limits.worker_threads = 1;
    if (arm.traced) {
      options.trace = &arm.trace;
      options.logger = &arm.logger;
      options.slo = &arm.slo;
    }
    if (!arm.service.Start(options, &error)) {
      std::fprintf(stderr, "traced arm: service start failed: %s\n",
                   error.c_str());
      return false;
    }
  }

  // Serial prune pass against one arm; timed windows and warm-up share it.
  auto run_window = [&](Arm* arm) -> bool {
    ProjectionClientOptions client_options;
    client_options.port = arm->service.port();
    ProjectionClient client(client_options);
    for (int pass = 0; pass < kPassesPerWindow; ++pass) {
      for (const std::string& doc : corpus) {
        PruneRequestOptions prune_options;
        if (arm->traced) {
          prune_options.traceparent = FormatTraceparent(MintTraceContext());
        }
        auto outcome = client.Prune(arm->workload_id, doc, prune_options);
        if (!outcome.ok()) {
          std::fprintf(stderr, "traced arm: prune failed: %s\n",
                       outcome.status().ToString().c_str());
          return false;
        }
      }
    }
    return true;
  };

  bool ok = true;
  for (Arm& arm : arms) {
    ProjectionClientOptions client_options;
    client_options.port = arm.service.port();
    ProjectionClient client(client_options);
    auto registration = client.RegisterWorkload(spec);
    if (!registration.ok()) {
      std::fprintf(stderr, "traced arm: registration failed: %s\n",
                   registration.status().ToString().c_str());
      ok = false;
      break;
    }
    arm.workload_id = registration->id;
    // Warm pass (projector cache, allocator, page cache) outside the
    // timed windows.
    if (!run_window(&arm)) {
      ok = false;
      break;
    }
  }
  for (int rep = 0; rep < reps && ok; ++rep) {
    for (Arm& arm : arms) {
      auto start = std::chrono::steady_clock::now();
      if (!run_window(&arm)) {
        ok = false;
        break;
      }
      double seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (rep == 0 || seconds < arm.best_seconds) arm.best_seconds = seconds;
    }
  }
  for (Arm& arm : arms) {
    arm.service.Stop();
    if (arm.traced) {
      arm.logger.Close();
      std::remove(arm.log_path.c_str());
      ::rmdir(arm.log_dir.c_str());
    }
  }
  if (!ok) return false;
  result->service_seconds = arms[0].best_seconds;
  result->traced_seconds = arms[1].best_seconds;
  result->traced_spans = arms[1].trace.event_count();
  result->traced_pct =
      result->service_seconds > 0
          ? 100.0 * (result->traced_seconds - result->service_seconds) /
                result->service_seconds
          : 0;
  std::printf("service obs A/B (%zu docs x %d passes, 1 worker, serial "
              "client): metrics-only %.1f ms, traced+logged %.1f ms "
              "(%+.1f%%, %llu spans)\n",
              corpus.size(), kPassesPerWindow, result->service_seconds * 1e3,
              result->traced_seconds * 1e3, result->traced_pct,
              static_cast<unsigned long long>(result->traced_spans));
  return true;
}

bool RunObsOverhead(const std::vector<std::string>& corpus, int max_threads,
                    int reps, ObsOverheadResult* result) {
  const std::vector<NameSet>& projectors = WorkloadPerQueryProjectors();

  auto best_of = [&](const PipelineOptions& options, const char* what,
                     double* best) {
    for (int rep = 0; rep < reps; ++rep) {
      auto run = PruneCorpusPerQuery(corpus, XmarkDtd(), projectors, options);
      if (!run.ok()) {
        std::fprintf(stderr, "obs A/B %s run failed: %s\n", what,
                     run.status().ToString().c_str());
        return false;
      }
      double seconds = run->summary.wall_seconds;
      if (rep == 0 || seconds < *best) *best = seconds;
    }
    return true;
  };

  PipelineOptions bare;
  bare.num_threads = max_threads;
  if (!best_of(bare, "bare", &result->bare_seconds)) return false;

  MetricsRegistry baseline_registry;
  PipelineOptions baseline;
  baseline.num_threads = max_threads;
  baseline.metrics = &baseline_registry;
  if (!best_of(baseline, "baseline", &result->baseline_seconds)) return false;

  MetricsRegistry registry;
  ObsServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.registry = &registry;
  ObsServer server;
  std::string error;
  if (!server.Start(server_options, &error)) {
    std::fprintf(stderr, "obs A/B server start failed: %s\n", error.c_str());
    return false;
  }
  PipelineOptions observed;
  observed.num_threads = max_threads;
  observed.metrics = &registry;
  observed.label_queries = true;
  observed.corpus_label = "bench";
  if (!best_of(observed, "observed", &result->observed_seconds)) {
    server.Stop();
    return false;
  }

  std::string status_line, body;
  result->scrape_ok =
      HttpGet(server.port(), "/metrics", &status_line, &body) &&
      status_line.find("200") != std::string::npos &&
      body.find("xmlproj_pipeline_tasks_total{") != std::string::npos &&
      body.find("query_id=\"0\"") != std::string::npos;
  result->scrape_bytes = body.size();
  server.Stop();

  // C: the B configuration plus a live statsd push flusher. The UDP
  // target is a dead loopback port — fire-and-forget sockets make a
  // receiverless push free of backpressure by design, so this measures
  // exactly the sender-side cost: registry snapshots, delta computation,
  // line formatting and sendto().
  MetricsRegistry push_registry;
  StatsdSink statsd;
  if (!statsd.Open("127.0.0.1:9", &error)) {
    std::fprintf(stderr, "obs A/B statsd open failed: %s\n", error.c_str());
    return false;
  }
  PushFlusher flusher;
  PushFlusherOptions flush_options;
  flush_options.registry = &push_registry;
  flush_options.sinks = {&statsd};
  flush_options.interval_ms = 100;  // aggressive: 10 flushes/sec
  if (!flusher.Start(flush_options, &error)) {
    std::fprintf(stderr, "obs A/B flusher start failed: %s\n", error.c_str());
    return false;
  }
  PipelineOptions pushed;
  pushed.num_threads = max_threads;
  pushed.metrics = &push_registry;
  pushed.label_queries = true;
  pushed.corpus_label = "bench";
  bool push_ok = best_of(pushed, "push", &result->push_seconds);
  flusher.Stop();
  if (!push_ok) return false;
  result->push_flushes = flusher.flushes();
  result->push_datagrams = statsd.datagrams_sent();

  // W vs D: the crash-safety tax. Durable output I/O is not what the
  // gate watches — fsync'ing pruned bytes runs at disk speed, the same
  // order as pruning itself, so ANY run that persists outputs durably
  // pays it. What must stay cheap is the checkpoint *bookkeeping* —
  // the content hash, the record formatting, and the one fsync'd JSONL
  // append per task (never per event). So:
  //   W — bare pipeline + the same atomic tmp+fsync+rename output
  //       commit per task, no checkpoint machinery.
  //   D — the full durable checkpoint (commit + hash + append).
  // compare_bench.py gates (D - W) / W at <=5%. The arm runs
  // single-threaded on its own corpus of realistically-sized documents
  // (~11MB, independent of --sweep_scale): the append fsync is a fixed
  // few hundred microseconds per task, so against the sweep's
  // deliberately tiny documents it reads as a huge ratio while meaning
  // nothing — off-the-hot-path is a claim about real documents. Each
  // rep gets a fresh scratch dir so every commit and append hits the
  // disk for real.
  XMarkCorpusOptions gate_corpus_options;
  gate_corpus_options.documents = 2;
  gate_corpus_options.scale = 0.16;
  std::vector<std::string> gate_corpus =
      GenerateXMarkCorpus(gate_corpus_options);
  // Best-of-3 floor regardless of --sweep_reps: the arm is disk-bound,
  // and a single ~170ms sample has more than 5% of noise on a shared
  // runner — one outlier must not trip the gate.
  const int gate_reps = std::max(reps, 3);
  for (int rep = 0; rep < gate_reps; ++rep) {
    char templ[] = "/tmp/xmlproj_bench_ck_XXXXXX";
    const char* dir = mkdtemp(templ);
    if (dir == nullptr) {
      std::fprintf(stderr, "obs A/B checkpoint: mkdtemp failed\n");
      return false;
    }
    std::string out_dir = std::string(dir) + "/out";
    ::mkdir(out_dir.c_str(), 0777);

    // W: prune in memory, then commit every output durably. The writes
    // sit inside the timed window, exactly where the checkpointed
    // pipeline performs them.
    auto w_start = std::chrono::steady_clock::now();
    PipelineOptions plain;
    plain.num_threads = 1;
    auto w_run = PruneCorpusPerQuery(gate_corpus, XmarkDtd(), projectors, plain);
    if (!w_run.ok()) {
      std::fprintf(stderr, "obs A/B write-baseline run failed: %s\n",
                   w_run.status().ToString().c_str());
      return false;
    }
    for (size_t i = 0; i < w_run->results.size(); ++i) {
      std::string error;
      if (!AtomicWriteTextFile(RunCheckpoint::TaskOutputPath(dir, i),
                               w_run->results[i].output,
                               /*fsync_file=*/true, &error)) {
        std::fprintf(stderr, "obs A/B write-baseline commit failed: %s\n",
                     error.c_str());
        return false;
      }
    }
    double w_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - w_start)
                           .count();
    if (rep == 0 || w_seconds < result->written_seconds) {
      result->written_seconds = w_seconds;
    }
    for (size_t i = 0; i < w_run->results.size(); ++i) {
      std::remove(RunCheckpoint::TaskOutputPath(dir, i).c_str());
    }

    // D: the real thing — same commits plus hash + record + append.
    PipelineOptions durable;
    durable.num_threads = 1;
    CheckpointHeader header;
    header.run_id = "bench-obs-ab";
    header.binding =
        ComputeCorpusBinding(gate_corpus, projectors, durable,
                             "bench-obs-ab");
    RunCheckpoint checkpoint;
    Status created = checkpoint.Create(dir, header);
    if (!created.ok()) {
      std::fprintf(stderr, "obs A/B checkpoint create failed: %s\n",
                   created.ToString().c_str());
      return false;
    }
    durable.checkpoint = &checkpoint;
    auto d_start = std::chrono::steady_clock::now();
    auto run = PruneCorpusPerQuery(gate_corpus, XmarkDtd(), projectors, durable);
    if (!run.ok()) {
      std::fprintf(stderr, "obs A/B checkpoint run failed: %s\n",
                   run.status().ToString().c_str());
      return false;
    }
    double d_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - d_start)
                           .count();
    if (rep == 0 || d_seconds < result->checkpoint_seconds) {
      result->checkpoint_seconds = d_seconds;
    }
    // Scrub the scratch tree; every committed path is known by index.
    for (size_t i = 0; i < run->results.size(); ++i) {
      std::remove(RunCheckpoint::TaskOutputPath(dir, i).c_str());
    }
    std::remove(RunCheckpoint::PathFor(dir).c_str());
    ::rmdir(out_dir.c_str());
    ::rmdir(dir);
  }

  result->overhead_pct =
      result->baseline_seconds > 0
          ? 100.0 * (result->observed_seconds - result->baseline_seconds) /
                result->baseline_seconds
          : 0;
  result->instrumentation_pct =
      result->bare_seconds > 0
          ? 100.0 * (result->baseline_seconds - result->bare_seconds) /
                result->bare_seconds
          : 0;
  result->push_pct =
      result->observed_seconds > 0
          ? 100.0 * (result->push_seconds - result->observed_seconds) /
                result->observed_seconds
          : 0;
  result->checkpoint_pct =
      result->written_seconds > 0
          ? 100.0 * (result->checkpoint_seconds - result->written_seconds) /
                result->written_seconds
          : 0;
  std::printf("obs overhead A/B (%zu queries x %zu docs, %d threads): "
              "bare %.1f ms, instrumented %.1f ms (%+.1f%%), "
              "labeled+served %.1f ms (%+.1f%% vs instrumented), "
              "pushed %.1f ms (%+.1f%% vs labeled+served, %llu flushes, "
              "%llu datagrams), durable writes %.1f ms, checkpointed "
              "%.1f ms (%+.1f%% vs durable writes), "
              "self-scrape %s (%zu bytes)\n",
              projectors.size(), corpus.size(), max_threads,
              result->bare_seconds * 1e3, result->baseline_seconds * 1e3,
              result->instrumentation_pct, result->observed_seconds * 1e3,
              result->overhead_pct, result->push_seconds * 1e3,
              result->push_pct,
              static_cast<unsigned long long>(result->push_flushes),
              static_cast<unsigned long long>(result->push_datagrams),
              result->written_seconds * 1e3,
              result->checkpoint_seconds * 1e3, result->checkpoint_pct,
              result->scrape_ok ? "ok" : "FAILED", result->scrape_bytes);
  return result->scrape_ok;
}

int RunSweep(SweepConfig config) {
  config.docs = std::max(config.docs, 1);
  config.reps = std::max(config.reps, 1);
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = config.docs;
  corpus_options.scale = config.scale;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  const size_t corpus_bytes = CorpusBytes(corpus);
  const NameSet& projector = WorkloadMergedProjector();

  int hardware = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  int max_threads =
      config.max_threads > 0 ? config.max_threads : std::max(4, hardware);
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) {
    thread_counts.push_back(max_threads);
  }

  std::printf("\npipeline sweep: %d docs x %.1f KB = %.1f MB, best of %d\n",
              config.docs, corpus_bytes / 1024.0 / config.docs,
              corpus_bytes / (1024.0 * 1024.0), config.reps);
  std::vector<SweepPoint> points;
  for (int threads : thread_counts) {
    PipelineOptions options;
    options.num_threads = threads;
    double best = 0;
    for (int rep = 0; rep < config.reps; ++rep) {
      auto run = PruneCorpus(corpus, XmarkDtd(), projector, options);
      if (!run.ok()) {
        std::fprintf(stderr, "sweep failed at %d threads: %s\n", threads,
                     run.status().ToString().c_str());
        return 1;
      }
      double seconds = run->summary.wall_seconds;
      if (rep == 0 || seconds < best) best = seconds;
    }
    SweepPoint point;
    point.threads = threads;
    point.seconds = best;
    point.bytes_per_second = static_cast<double>(corpus_bytes) / best;
    point.speedup = points.empty() ? 1.0 : points[0].seconds / best;
    points.push_back(point);
    std::printf("  threads=%-2d  %8.1f ms  %7.1f MB/s  speedup %.2fx\n",
                threads, best * 1e3,
                point.bytes_per_second / (1024.0 * 1024.0), point.speedup);
  }

  std::vector<SweepPoint> intra_points;
  size_t intra_doc_bytes = 0;
  size_t intra_chunks = 0;
  if (!RunIntraDocSweep(config, &intra_points, &intra_doc_bytes,
                        &intra_chunks)) {
    return 1;
  }

  ObsOverheadResult obs;
  if (!RunObsOverhead(corpus, max_threads, config.reps, &obs)) return 1;
  if (!RunTracedServiceArm(config.reps, &obs)) return 1;

  // One instrumented run at max threads: its summary lands in the sweep
  // JSON (the Table 1 quantities), the full registry in the metrics dump.
  MetricsRegistry registry;
  PipelineOptions instrumented;
  instrumented.num_threads = max_threads;
  instrumented.metrics = &registry;
  auto observed = PruneCorpus(corpus, XmarkDtd(), projector, instrumented);
  if (!observed.ok()) {
    std::fprintf(stderr, "instrumented run failed: %s\n",
                 observed.status().ToString().c_str());
    return 1;
  }
  const PipelineSummary& summary = observed->summary;
  std::printf("pruning: %zu -> %zu nodes (%.1f%% kept), %zu -> %zu bytes "
              "(%.1f%% kept)\n",
              summary.input_nodes, summary.kept_nodes,
              100.0 * summary.NodeRatio(), summary.input_bytes,
              summary.output_bytes, 100.0 * summary.ByteRatio());

  std::FILE* out = std::fopen(config.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", config.json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"pruning_pipeline\",\n"
               "  \"workload\": \"xmark_multi_document\",\n"
               "  \"documents\": %d,\n"
               "  \"scale_per_document\": %g,\n"
               "  \"corpus_bytes\": %zu,\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"repetitions\": %d,\n"
               "  \"pruning\": {\n"
               "    \"tasks\": %zu,\n"
               "    \"input_bytes\": %zu,\n"
               "    \"output_bytes\": %zu,\n"
               "    \"byte_ratio_kept\": %.4f,\n"
               "    \"input_nodes\": %zu,\n"
               "    \"kept_nodes\": %zu,\n"
               "    \"node_ratio_kept\": %.4f\n"
               "  },\n"
               "  \"metrics_json\": \"%s\",\n"
               "  \"results\": [\n",
               config.docs, config.scale, corpus_bytes, hardware,
               config.reps, summary.tasks, summary.input_bytes,
               summary.output_bytes, summary.ByteRatio(),
               summary.input_nodes, summary.kept_nodes, summary.NodeRatio(),
               config.metrics_json_path.c_str());
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"seconds\": %.6f, "
                 "\"bytes_per_second\": %.1f, "
                 "\"speedup_vs_1_thread\": %.3f}%s\n",
                 points[i].threads, points[i].seconds,
                 points[i].bytes_per_second, points[i].speedup,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"intra_doc\": {\n"
               "    \"workload\": \"xmark_single_document_chunked\",\n"
               "    \"scale\": %g,\n"
               "    \"document_bytes\": %zu,\n"
               "    \"chunk_bytes_target\": %zu,\n"
               "    \"chunks_planned\": %zu,\n"
               "    \"repetitions\": %d,\n"
               "    \"results\": [\n",
               config.intra_scale, intra_doc_bytes, config.intra_chunk_bytes,
               intra_chunks, std::max(config.intra_reps, 1));
  for (size_t i = 0; i < intra_points.size(); ++i) {
    std::fprintf(out,
                 "      {\"threads\": %d, \"seconds\": %.6f, "
                 "\"bytes_per_second\": %.1f, "
                 "\"speedup_vs_1_thread\": %.3f}%s\n",
                 intra_points[i].threads, intra_points[i].seconds,
                 intra_points[i].bytes_per_second, intra_points[i].speedup,
                 i + 1 < intra_points.size() ? "," : "");
  }
  std::fprintf(out,
               "    ]\n"
               "  },\n"
               "  \"obs_overhead\": {\n"
               "    \"workload\": \"xmark_multi_query\",\n"
               "    \"threads\": %d,\n"
               "    \"repetitions\": %d,\n"
               "    \"bare_seconds\": %.6f,\n"
               "    \"instrumented_seconds\": %.6f,\n"
               "    \"instrumentation_pct\": %.2f,\n"
               "    \"labeled_served_seconds\": %.6f,\n"
               "    \"labels_and_server_pct\": %.2f,\n"
               "    \"push_seconds\": %.6f,\n"
               "    \"push_pct\": %.2f,\n"
               "    \"push_flushes\": %llu,\n"
               "    \"push_datagrams\": %llu,\n"
               "    \"durable_write_seconds\": %.6f,\n"
               "    \"checkpoint_seconds\": %.6f,\n"
               "    \"checkpoint_pct\": %.2f,\n"
               "    \"service_prune_seconds\": %.6f,\n"
               "    \"traced_prune_seconds\": %.6f,\n"
               "    \"traced_pct\": %.2f,\n"
               "    \"traced_spans\": %llu,\n"
               "    \"self_scrape_ok\": %s,\n"
               "    \"self_scrape_bytes\": %zu\n"
               "  }\n"
               "}\n",
               max_threads, config.reps, obs.bare_seconds,
               obs.baseline_seconds, obs.instrumentation_pct,
               obs.observed_seconds, obs.overhead_pct, obs.push_seconds,
               obs.push_pct,
               static_cast<unsigned long long>(obs.push_flushes),
               static_cast<unsigned long long>(obs.push_datagrams),
               obs.written_seconds, obs.checkpoint_seconds,
               obs.checkpoint_pct, obs.service_seconds, obs.traced_seconds,
               obs.traced_pct,
               static_cast<unsigned long long>(obs.traced_spans),
               obs.scrape_ok ? "true" : "false", obs.scrape_bytes);
  std::fclose(out);
  std::printf("wrote %s\n", config.json_path.c_str());

  std::string metrics_json;
  AppendMetricsJson(registry, &metrics_json);
  if (!WriteTextFile(config.metrics_json_path, metrics_json)) {
    std::fprintf(stderr, "cannot write %s\n",
                 config.metrics_json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", config.metrics_json_path.c_str());
  return 0;
}

bool ParseSweepFlag(const char* arg, SweepConfig* config) {
  auto value = [arg](const char* prefix) -> const char* {
    size_t len = std::strlen(prefix);
    return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
  };
  if (const char* v = value("--bench_json=")) {
    config->json_path = v;
  } else if (const char* v = value("--metrics_json=")) {
    config->metrics_json_path = v;
  } else if (const char* v = value("--sweep_docs=")) {
    config->docs = std::atoi(v);
  } else if (const char* v = value("--sweep_scale=")) {
    config->scale = std::atof(v);
  } else if (const char* v = value("--sweep_reps=")) {
    config->reps = std::atoi(v);
  } else if (const char* v = value("--sweep_max_threads=")) {
    config->max_threads = std::atoi(v);
  } else if (const char* v = value("--intra_scale=")) {
    config->intra_scale = std::atof(v);
  } else if (const char* v = value("--intra_max_threads=")) {
    config->intra_max_threads = std::atoi(v);
  } else if (const char* v = value("--intra_chunk_bytes=")) {
    config->intra_chunk_bytes = static_cast<size_t>(std::atoll(v));
  } else if (const char* v = value("--intra_reps=")) {
    config->intra_reps = std::atoi(v);
  } else if (std::strcmp(arg, "--no_sweep") == 0) {
    config->enabled = false;
  } else {
    return false;
  }
  return true;
}

}  // namespace
}  // namespace xmlproj

int main(int argc, char** argv) {
  xmlproj::SweepConfig config;
  // Peel off sweep flags; everything else goes to google-benchmark.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (!xmlproj::ParseSweepFlag(argv[i], &config)) argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (config.enabled) return xmlproj::RunSweep(config);
  return 0;
}
