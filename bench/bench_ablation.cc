// Ablation study for the design choices DESIGN.md calls out:
//
//  A1 — predicate analysis (§3.3): re-infer projectors with every step
//       condition neutralized (a self::node() disjunct is added, so the
//       condition keeps its data but can no longer restrict the type).
//       This models a pruner that cannot use predicates — one of the
//       paper's headline improvements over Marian & Siméon.
//  A2 — the §5 for/if heuristic: extraction with the heuristic disabled.
//       Queries binding Q//node() degenerate to keeping everything.
//  A3 — backward-axis support (§4, the new type system): queries using
//       parent/ancestor cannot be analyzed at all by path-based pruners;
//       the baseline is "no pruning" (100%).
//
// Each section prints pruned-size percentages with and without the
// feature.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "projection/projection.h"
#include "projection/projector_inference.h"
#include "xpath/approximate.h"
#include "xpath/parser.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

namespace xmlproj {
namespace bench {
namespace {

// Adds a self::node() disjunct to every condition, recursively: the
// condition can no longer restrict the inferred type.
void NeutralizeConditions(LPath* path) {
  for (LStep& step : path->steps) {
    if (step.cond.empty()) continue;
    for (LPath& c : step.cond) NeutralizeConditions(&c);
    step.cond.push_back(
        MakeLPath({MakeLStep(Axis::kSelf, TestKind::kNode)}));
  }
}

double PrunedPercent(const Workload& w, const NameSet& projector) {
  auto pruned = PruneDocument(w.doc, w.interp, projector);
  if (!pruned.ok()) return -1;
  return 100.0 * static_cast<double>(SerializedBytes(*pruned)) /
         static_cast<double>(w.text_bytes);
}

int Main() {
  double scale = ScaleFromEnv();
  Workload w = LoadWorkload(scale);
  std::printf("=== Ablations (document: %.2f MB) ===\n\n",
              Mb(w.text_bytes));

  // --- A1: predicate analysis -------------------------------------------
  // The restriction matters most when a predicate narrows a descendant
  // step (the paper's descendant::node[cond] discussion in §1.1/§5):
  // without it, the whole descendant spine stays.
  std::printf("A1: predicate analysis (pruned size %% of original)\n");
  std::printf("%-34s %14s %14s\n", "query", "with-preds", "without");
  struct A1Case {
    const char* label;
    const char* text;
  };
  const A1Case a1_cases[] = {
      {"QP09 item[parent::namerica|..]",
       "/site/regions/*/item[parent::namerica or parent::samerica]/name"},
      {"//node()[emailaddress]",
       "/site/descendant-or-self::node()[emailaddress]/emailaddress"},
      {"//node()[reserve]/initial", "//*[reserve]/initial"},
      {"//node()[zipcode]", "/site//node()[zipcode]"},
      {"QP06 person[gender and age]",
       "/site/people/person[profile/gender and profile/age]/name"},
  };
  for (const A1Case& c : a1_cases) {
    auto path = ParseXPath(c.text);
    if (!path.ok()) continue;
    auto full = AnalyzeXPath(w.dtd, *path, /*materialize_result=*/true);
    if (!full.ok()) continue;

    auto approx = ApproximateQuery(*path);
    if (!approx.ok()) continue;
    NeutralizeConditions(&approx->main);
    ProjectorInference inference(w.dtd);
    auto neutered = inference.InferForPath(approx->main, true,
                                           approx->from_document_node);
    if (!neutered.ok()) continue;
    NameSet without = *neutered | full->projector;  // data needs preserved

    std::printf("%-34s %13.1f%% %13.1f%%\n", c.label,
                PrunedPercent(w, full->projector),
                PrunedPercent(w, without));
  }

  // --- A2: the §5 for/if heuristic ---------------------------------------
  std::printf("\nA2: for/if heuristic (pruned size %% of original)\n");
  std::printf("%-28s %10s %10s\n", "query", "with", "without");
  struct HeuristicCase {
    const char* label;
    const char* text;
  };
  const HeuristicCase cases[] = {
      {"dos-binding + if",
       "for $y in /site/regions/descendant-or-self::node() "
       "return if ($y/keyword) then $y/keyword else ()"},
      {"dos-binding + where",
       "for $y in /site//node() where $y/zipcode "
       "return $y/zipcode/text()"},
      {"QM14-like contains",
       "for $i in /site//item "
       "where contains(string($i/description), 'gold') "
       "return $i/name/text()"},
  };
  for (const HeuristicCase& c : cases) {
    auto parsed = ParseXQuery(c.text);
    if (!parsed.ok()) continue;
    ExtractOptions on;
    ExtractOptions off;
    off.enable_for_if_heuristic = false;
    ProjectorInference inference(w.dtd);
    auto run = [&](const ExtractOptions& options) -> double {
      auto paths = ExtractPaths(**parsed, options);
      if (!paths.ok()) return -1;
      auto projector = inference.InferForPaths(*paths, false, true);
      if (!projector.ok()) return -1;
      return PrunedPercent(w, *projector);
    };
    std::printf("%-28s %9.1f%% %9.1f%%\n", c.label, run(on), run(off));
  }

  // --- A3: backward axes --------------------------------------------------
  std::printf(
      "\nA3: backward axes (path-based pruners keep 100%%; the type "
      "system analyzes them)\n");
  std::printf("%-6s %16s %16s\n", "query", "type-projector",
              "path-based");
  for (const char* id : {"QP09", "QP10", "QP11", "QP12", "QP16"}) {
    const BenchmarkQuery* query = nullptr;
    for (const BenchmarkQuery& q : XPathMarkQueries()) {
      if (q.id == id) query = &q;
    }
    if (query == nullptr) continue;
    auto projector = AnalyzeBenchmarkQuery(*query, w.dtd);
    if (!projector.ok()) continue;
    std::printf("%-6s %15.1f%% %15.1f%%\n", query->id.c_str(),
                PrunedPercent(w, *projector), 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xmlproj

int main() { return xmlproj::bench::Main(); }
