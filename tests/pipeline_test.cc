// Tests for the parallel pruning pipeline (projection/pipeline.h).
//
// The load-bearing property: parallelism is across documents/queries, so
// the parallel output must be byte-for-byte the sequential
// StreamingPruner / ValidatingPruner output, in task order — Theorem 4.5
// soundness then carries over to the parallel deployment unchanged. Also
// covered: first-error cancellation (no deadlock, deterministic error),
// the multi-query per-projector fan-out, and input validation.

#include "projection/pipeline.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "projection/projection.h"
#include "random_xml.h"
#include "xmark/corpus.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmark/generator.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::QueryGenerator;
using testing_random::RandomDtd;

// The sequential reference: one fused StreamingPruner pass straight into
// the serializer, exactly what each pipeline worker runs.
std::string ReferencePrune(const std::string& xml_text, const Dtd& dtd,
                           const NameSet& projector) {
  std::string out;
  SerializingHandler sink(&out);
  StreamingPruner pruner(dtd, projector, &sink);
  Status status = ParseXmlStream(xml_text, &pruner);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

std::string ReferenceValidatePrune(const std::string& xml_text,
                                   const Dtd& dtd, const NameSet& projector) {
  std::string out;
  SerializingHandler sink(&out);
  ValidatingPruner pruner(dtd, projector, &sink);
  Status status = ParseXmlStream(xml_text, &pruner);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

const Dtd& XmarkDtd() {
  static const Dtd* dtd = new Dtd(std::move(LoadXMarkDtd()).value());
  return *dtd;
}

TEST(PipelineTest, ParallelMatchesSequentialOnXMarkCorpus) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 6;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  PipelineOptions parallel;
  parallel.num_threads = 4;
  auto results = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->results.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    std::string expected = ReferencePrune(corpus[i], XmarkDtd(), *projector);
    EXPECT_EQ(results->results[i].output, expected) << "document " << i;
    EXPECT_LT(results->results[i].output.size(), corpus[i].size());
    EXPECT_GT(results->results[i].stats.kept_nodes, 0u);
  }
}

TEST(PipelineTest, ValidateModeMatchesValidatingPruner) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 4;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  PipelineOptions parallel;
  parallel.num_threads = 3;
  parallel.validate = true;
  auto results = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(results->results[i].output,
              ReferenceValidatePrune(corpus[i], XmarkDtd(), *projector))
        << "document " << i;
  }
}

// Randomized grammars × documents × query-derived projectors: the
// parallel pipeline must agree with the sequential pass on all of them.
TEST(PipelineTest, ParallelMatchesSequentialOnRandomCorpora) {
  int checked = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    int name_count = 0;
    Dtd dtd = RandomDtd(seed, &name_count);
    std::vector<std::string> corpus;
    for (uint64_t d = 0; d < 5; ++d) {
      DocGenerator gen(dtd, seed * 100 + d);
      auto doc = gen.Generate();
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
      corpus.push_back(SerializeDocument(*doc));
    }
    QueryGenerator queries(name_count, seed * 7 + 3);
    auto analysis = AnalyzeXPath(dtd, queries.Generate());
    if (!analysis.ok()) continue;  // query outside the supported fragment
    NameSet projector = analysis->projector;
    projector.Add(dtd.root());

    PipelineOptions parallel;
    parallel.num_threads = 4;
    parallel.queue_capacity = 2;  // force submission back-pressure
    auto results = PruneCorpus(corpus, dtd, projector, parallel);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->results.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(results->results[i].output,
                ReferencePrune(corpus[i], dtd, projector))
          << "seed " << seed << " document " << i;
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(PipelineTest, PerQueryFanOutMatchesPerProjectorReference) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 3;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projectors = WorkloadProjectors(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projectors.ok()) << projectors.status().ToString();
  const size_t queries = projectors->size();
  ASSERT_EQ(queries, XMarkDashboardWorkload().size());

  PipelineOptions parallel;
  parallel.num_threads = 4;
  auto results = PruneCorpusPerQuery(corpus, XmarkDtd(), *projectors,
                                     parallel);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->results.size(), corpus.size() * queries);
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (size_t q = 0; q < queries; ++q) {
      EXPECT_EQ(results->results[d * queries + q].output,
                ReferencePrune(corpus[d], XmarkDtd(), (*projectors)[q]))
          << "document " << d << " query " << q;
    }
  }
}

TEST(PipelineTest, MalformedDocumentCancelsWithoutDeadlock) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 8;
  corpus_options.scale = 0.0002;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  corpus[3] = "<site><open_auctions>";  // never closed
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  PipelineOptions parallel;
  parallel.num_threads = 4;
  parallel.queue_capacity = 2;
  auto results = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kParseError)
      << results.status().ToString();
  EXPECT_NE(results.status().message().find("pipeline task 3"),
            std::string::npos)
      << results.status().ToString();
}

TEST(PipelineTest, InvalidDocumentFailsValidateModeOnly) {
  // Well-formed XML that violates the XMark DTD (bogus root): the plain
  // pruner rejects it too (undeclared structure is an error), but the
  // validating pass reports the precise validity violation.
  std::vector<std::string> corpus = {"<site></site>", "<not_xmark/>"};
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok());
  PipelineOptions parallel;
  parallel.num_threads = 2;
  parallel.validate = true;
  auto results = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInvalid)
      << results.status().ToString();
}

TEST(PipelineTest, SequentialPathAnnotatesFailingTask) {
  std::vector<std::string> corpus = {"<site></site>", "<site><bad"};
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok());
  PipelineOptions sequential;
  sequential.num_threads = 1;
  auto results = PruneCorpus(corpus, XmarkDtd(), *projector, sequential);
  ASSERT_FALSE(results.ok());
  EXPECT_NE(results.status().message().find("pipeline task 1"),
            std::string::npos)
      << results.status().ToString();
}

TEST(PipelineTest, EmptyCorpusYieldsEmptyResults) {
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok());
  auto results = PruneCorpus({}, XmarkDtd(), *projector, {});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->results.empty());
  EXPECT_EQ(results->summary.tasks, 0u);
}

TEST(PipelineTest, NullTaskPointersAreRejected) {
  PipelineTask task;  // both pointers null
  auto results =
      RunPruningPipeline(std::span<const PipelineTask>(&task, 1), XmarkDtd());
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInvalid);
}

TEST(PipelineTest, TotalOutputBytesSumsResults) {
  std::vector<PipelineResult> results(2);
  results[0].output = "<a/>";
  results[1].output = "<bb/>";
  EXPECT_EQ(TotalOutputBytes(results), 9u);
}

// The summary returned with the run must equal the sequential fold of the
// per-task stats — callers no longer fold themselves, so this is the
// contract that keeps corpus-level telemetry honest.
TEST(PipelineTest, SummaryEqualsSequentialFoldOfTaskStats) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 5;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  PipelineOptions parallel;
  parallel.num_threads = 4;
  auto run = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  PipelineSummary fold;
  for (size_t i = 0; i < corpus.size(); ++i) {
    fold.AddTask(corpus[i].size(), run->results[i]);
  }
  const PipelineSummary& summary = run->summary;
  EXPECT_EQ(summary.tasks, fold.tasks);
  EXPECT_EQ(summary.tasks, corpus.size());
  EXPECT_EQ(summary.input_bytes, fold.input_bytes);
  EXPECT_EQ(summary.input_bytes, CorpusBytes(corpus));
  EXPECT_EQ(summary.output_bytes, fold.output_bytes);
  EXPECT_EQ(summary.output_bytes, TotalOutputBytes(run->results));
  EXPECT_EQ(summary.input_nodes, fold.input_nodes);
  EXPECT_EQ(summary.kept_nodes, fold.kept_nodes);
  EXPECT_EQ(summary.input_text_bytes, fold.input_text_bytes);
  EXPECT_EQ(summary.kept_text_bytes, fold.kept_text_bytes);
  EXPECT_GT(summary.wall_seconds, 0.0);
  EXPECT_GT(summary.NodeRatio(), 0.0);
  EXPECT_LT(summary.NodeRatio(), 1.0);
  EXPECT_LT(summary.ByteRatio(), 1.0);

  // Same corpus sequentially: identical totals (wall time aside).
  PipelineOptions sequential;
  sequential.num_threads = 1;
  auto seq = PruneCorpus(corpus, XmarkDtd(), *projector, sequential);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq->summary.input_nodes, summary.input_nodes);
  EXPECT_EQ(seq->summary.kept_nodes, summary.kept_nodes);
  EXPECT_EQ(seq->summary.output_bytes, summary.output_bytes);
}

// With a registry attached, the pipeline counters must agree with the
// summary, and the stage histograms must hold one sample per task.
TEST(PipelineTest, MetricsRegistryMatchesSummary) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 4;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  MetricsRegistry registry;
  PipelineOptions parallel;
  parallel.num_threads = 3;
  parallel.metrics = &registry;
  auto run = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const PipelineSummary& summary = run->summary;
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_tasks_total")->Value(),
            summary.tasks);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_input_bytes_total")->Value(),
            summary.input_bytes);
  EXPECT_EQ(
      registry.GetCounter("xmlproj_pipeline_output_bytes_total")->Value(),
      summary.output_bytes);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_input_nodes_total")->Value(),
            summary.input_nodes);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_kept_nodes_total")->Value(),
            summary.kept_nodes);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_errors_total")->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("xmlproj_pipeline_threads")->Value(), 3);

  for (const char* stage :
       {"xmlproj_stage_parse_ns", "xmlproj_stage_prune_ns",
        "xmlproj_stage_serialize_ns", "xmlproj_stage_task_ns"}) {
    EXPECT_EQ(registry.GetHistogram(stage)->Count(), summary.tasks) << stage;
  }
  // Stage attribution tiles the task: parse+prune+serialize == task total.
  EXPECT_EQ(registry.GetHistogram("xmlproj_stage_parse_ns")->Sum() +
                registry.GetHistogram("xmlproj_stage_prune_ns")->Sum() +
                registry.GetHistogram("xmlproj_stage_serialize_ns")->Sum(),
            registry.GetHistogram("xmlproj_stage_task_ns")->Sum());
  // Pool telemetry: every task ran on a worker.
  EXPECT_EQ(registry.GetCounter("xmlproj_pool_tasks_total")->Value(),
            summary.tasks);
  EXPECT_EQ(registry.GetHistogram("xmlproj_pool_task_wait_ns")->Count(),
            summary.tasks);

  // Instrumentation must not perturb the output.
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(run->results[i].output,
              ReferencePrune(corpus[i], XmarkDtd(), *projector))
        << "document " << i;
  }
}

// Tracing emits queue-wait plus the three stage spans per task, and the
// chrome trace serialization is well-formed JSON.
TEST(PipelineTest, TraceCollectorRecordsStageSpans) {
  XMarkCorpusOptions corpus_options;
  corpus_options.documents = 3;
  corpus_options.scale = 0.0005;
  std::vector<std::string> corpus = GenerateXMarkCorpus(corpus_options);
  auto projector = WorkloadProjector(XmarkDtd(), XMarkDashboardWorkload());
  ASSERT_TRUE(projector.ok()) << projector.status().ToString();

  TraceCollector trace;
  PipelineOptions parallel;
  parallel.num_threads = 2;
  parallel.trace = &trace;
  auto run = PruneCorpus(corpus, XmarkDtd(), *projector, parallel);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Per task: queue-wait + parse + prune + serialize, plus pool queue
  // depth counter events.
  EXPECT_GE(trace.event_count(), corpus.size() * 4);
  std::string json;
  trace.AppendChromeTraceJson(&json);
  for (const char* needle :
       {"\"traceEvents\"", "\"queue-wait\"", "\"parse\"", "\"prune\"",
        "\"serialize\"", "\"queue depth\"", "\"ph\":\"X\"", "\"ph\":\"C\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace xmlproj
