// Integration tests over the benchmark substrate: the generated XMark
// documents must validate against the embedded DTD, and every QM/QP
// benchmark query must produce identical results on the original and the
// pruned document (the paper's headline soundness claim, end to end).

#include <gtest/gtest.h>

#include "dtd/validator.h"
#include "projection/projection.h"
#include "projection/pruner.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xmark/workbench.h"
#include "xmark/xmark_dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

struct SharedFixture {
  Dtd dtd;
  Document doc;
  Interpretation interp;
};

const SharedFixture& Fixture() {
  static const SharedFixture* fixture = [] {
    auto dtd = LoadXMarkDtd();
    EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
    XMarkOptions options;
    options.scale = 0.002;
    auto doc = GenerateXMark(options);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    auto interp = Validate(*doc, *dtd);
    EXPECT_TRUE(interp.ok()) << interp.status().ToString();
    return new SharedFixture{std::move(*dtd), std::move(*doc),
                             std::move(*interp)};
  }();
  return *fixture;
}

TEST(XMarkDtd, ParsesAndHasExpectedShape) {
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ("site", dtd->production(dtd->root()).tag);
  EXPECT_NE(kNoName, dtd->NameOfTag("open_auction"));
  EXPECT_NE(kNoName, dtd->NameOfTag("keyword"));
  // The description markup is recursive (bold/keyword/emph nest).
  EXPECT_TRUE(dtd->IsRecursive());
  // description -> (text | parlist) is an unguarded union.
  EXPECT_FALSE(dtd->IsStarGuarded());
  NameId item = dtd->NameOfTag("item");
  EXPECT_TRUE(dtd->AncestorsOf(item).Contains(dtd->NameOfTag("regions")));
}

TEST(XMarkGenerator, DocumentIsValid) {
  const SharedFixture& f = Fixture();
  EXPECT_GT(f.doc.content_node_count(), 1000u);
}

TEST(XMarkGenerator, Deterministic) {
  XMarkOptions options;
  options.scale = 0.0005;
  auto a = GenerateXMark(options);
  auto b = GenerateXMark(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeDocument(*a), SerializeDocument(*b));
  options.seed = 7;
  auto c = GenerateXMark(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(SerializeDocument(*a), SerializeDocument(*c));
}

TEST(XMarkGenerator, ScaleGrowsSize) {
  XMarkOptions small;
  small.scale = 0.0005;
  XMarkOptions bigger;
  bigger.scale = 0.002;
  std::string small_text = GenerateXMarkText(small);
  std::string bigger_text = GenerateXMarkText(bigger);
  EXPECT_GT(bigger_text.size(), 2 * small_text.size());
}

TEST(XMarkGenerator, TextRoundTripsAndValidates) {
  XMarkOptions options;
  options.scale = 0.0005;
  std::string text = GenerateXMarkText(options);
  auto doc = ParseXml(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto dtd = LoadXMarkDtd();
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(Validate(*doc, *dtd).ok());
}

TEST(XMarkGenerator, DescriptionsDominateBytes) {
  // The paper attributes weak pruning on several queries to description
  // content being ~70% of the file; our generator must reproduce that
  // regime (>= 50%).
  const SharedFixture& f = Fixture();
  size_t total = 0;
  size_t under_description = 0;
  NameId desc = f.dtd.NameOfTag("description");
  for (NodeId id = 1; id < f.doc.size(); ++id) {
    if (f.doc.kind(id) != NodeKind::kText) continue;
    size_t bytes = f.doc.text(id).size();
    total += bytes;
    for (NodeId a = f.doc.node(id).parent; a != kNullNode;
         a = f.doc.node(a).parent) {
      if (f.doc.kind(a) == NodeKind::kElement &&
          f.interp[a] == desc) {
        under_description += bytes;
        break;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(under_description) /
                static_cast<double>(total),
            0.5);
}

TEST(XMarkQueries, SuitesAreComplete) {
  EXPECT_EQ(20u, XMarkQueries().size());
  EXPECT_EQ(23u, XPathMarkQueries().size());
  EXPECT_EQ(43u, AllBenchmarkQueries().size());
}

class BenchmarkQuerySoundness
    : public ::testing::TestWithParam<BenchmarkQuery> {};

TEST_P(BenchmarkQuerySoundness, PrunedRunMatchesOriginal) {
  const BenchmarkQuery& query = GetParam();
  const SharedFixture& f = Fixture();

  auto projector = AnalyzeBenchmarkQuery(query, f.dtd);
  ASSERT_TRUE(projector.ok())
      << query.id << ": " << projector.status().ToString();

  PruneStats stats;
  auto pruned = PruneDocument(f.doc, f.interp, *projector, &stats);
  ASSERT_TRUE(pruned.ok()) << query.id;

  auto run_orig = RunBenchmarkQuery(query, f.doc);
  ASSERT_TRUE(run_orig.ok())
      << query.id << ": " << run_orig.status().ToString();
  auto run_pruned = RunBenchmarkQuery(query, *pruned);
  ASSERT_TRUE(run_pruned.ok())
      << query.id << ": " << run_pruned.status().ToString();

  EXPECT_EQ(run_orig->serialized, run_pruned->serialized)
      << query.id << " (" << query.text << ")\nkept " << stats.kept_nodes
      << "/" << stats.input_nodes << " nodes";
  EXPECT_EQ(run_orig->result_items, run_pruned->result_items);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, BenchmarkQuerySoundness,
    ::testing::ValuesIn(AllBenchmarkQueries()),
    [](const ::testing::TestParamInfo<BenchmarkQuery>& info) {
      return info.param.id;
    });

TEST(BenchmarkQueries, SelectiveQueriesPruneHeavily) {
  const SharedFixture& f = Fixture();
  // QM06 is the paper's most selective query: 99.7% of the document
  // discarded. Structure-only queries must prune the description bulk.
  const BenchmarkQuery& qm06 = XMarkQueries()[5];
  ASSERT_EQ("QM06", qm06.id);
  auto projector = AnalyzeBenchmarkQuery(qm06, f.dtd);
  ASSERT_TRUE(projector.ok());
  PruneStats stats;
  auto pruned = PruneDocument(f.doc, f.interp, *projector, &stats);
  ASSERT_TRUE(pruned.ok());
  double kept_fraction = static_cast<double>(stats.kept_text_bytes +
                                             stats.kept_nodes * 16) /
                         static_cast<double>(stats.input_text_bytes +
                                             stats.input_nodes * 16);
  EXPECT_LT(kept_fraction, 0.2) << "QM06 should prune most of the file";
  EXPECT_FALSE(projector->Contains(f.dtd.NameOfTag("description")));
  EXPECT_FALSE(projector->Contains(f.dtd.NameOfTag("person")));
}

TEST(BenchmarkQueries, WeaklySelectiveQueriesKeepDescriptions) {
  const SharedFixture& f = Fixture();
  // QM14 needs string(description): descriptions survive.
  const BenchmarkQuery& qm14 = XMarkQueries()[13];
  ASSERT_EQ("QM14", qm14.id);
  auto projector = AnalyzeBenchmarkQuery(qm14, f.dtd);
  ASSERT_TRUE(projector.ok());
  EXPECT_TRUE(projector->Contains(f.dtd.NameOfTag("description")));
  EXPECT_TRUE(projector->Contains(f.dtd.NameOfTag("keyword")));
}

}  // namespace
}  // namespace xmlproj
