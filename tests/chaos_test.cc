// Chaos suite for the fault-tolerance layer: the deterministic fault
// injector itself (common/fault.h), and the pipeline's error policies
// under injected parse errors, allocation failures, transient worker
// faults, slow tasks, and deadline blowouts (projection/pipeline.h).
//
// The load-bearing properties:
//  - kFailFast surfaces the injected error as the run status (PR 1
//    behavior, unchanged);
//  - kIsolate quarantines exactly the failing documents into structured
//    TaskFailure reports while the survivors' outputs stay byte-identical
//    to a fault-free sequential run;
//  - kRetry recovers from transient (kUnavailable) faults and quarantines
//    only after exhausting its attempts;
//  - degrade_on_invalid answers with the identity (no-prune) pass when
//    the document does not fit the DTD.

#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/circuit.h"
#include "common/fault.h"
#include "dtd/dtd_parser.h"
#include "obs/metrics.h"
#include "projection/pipeline.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlproj {
namespace {

// --- FaultInjector unit tests -------------------------------------------

TEST(FaultInjectorTest, DisarmedFailpointIsAlwaysOk) {
  FaultInjector fault;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fault.MaybeFail("never.armed").ok());
  }
  EXPECT_EQ(fault.HitCount("never.armed"), 0u);
  EXPECT_EQ(fault.FireCount("never.armed"), 0u);
  // Volatile keeps gcc from const-folding the null into the macro's
  // dead branch and tripping -Wnonnull under -Werror.
  FaultInjector* volatile no_injector = nullptr;
  EXPECT_TRUE(XMLPROJ_FAULT_HIT(no_injector, "anything").ok());
}

TEST(FaultInjectorTest, ProbabilisticFiringIsDeterministicPerSeed) {
  auto pattern = [](uint64_t seed) {
    FaultInjector fault(seed);
    FaultSpec spec;
    spec.code = StatusCode::kUnavailable;
    spec.probability = 0.5;
    fault.Arm("p", spec);
    std::string bits;
    for (int i = 0; i < 256; ++i) {
      bits.push_back(fault.MaybeFail("p").ok() ? '0' : '1');
    }
    return bits;
  };
  std::string a = pattern(42);
  EXPECT_EQ(a, pattern(42));          // replayable
  EXPECT_NE(a, pattern(43));          // seed actually matters
  EXPECT_NE(a.find('0'), std::string::npos);  // and p=0.5 is not 0 or 1
  EXPECT_NE(a.find('1'), std::string::npos);
}

TEST(FaultInjectorTest, MaxFiresStopsInjectingButKeepsCounting) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kParseError;
  spec.max_fires = 3;
  spec.message = "injected parse failure";
  fault.Arm("xml.parse", spec);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    Status status = fault.MaybeFail("xml.parse");
    if (!status.ok()) {
      ++failures;
      EXPECT_EQ(status.code(), StatusCode::kParseError);
      EXPECT_EQ(status.message(), "injected parse failure");
    }
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(fault.HitCount("xml.parse"), 10u);
  EXPECT_EQ(fault.FireCount("xml.parse"), 3u);
}

TEST(FaultInjectorTest, DelayOnlyFailpointSleepsAndReturnsOk) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kOk;
  spec.delay_ms = 20;
  fault.Arm("slow", spec);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(fault.MaybeFail("slow").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 15);
}

TEST(FaultInjectorTest, DisarmRestoresOkAndRearmResetsTheRng) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  fault.Arm("x", spec);
  EXPECT_FALSE(fault.MaybeFail("x").ok());
  fault.Disarm("x");
  EXPECT_TRUE(fault.MaybeFail("x").ok());
  fault.Arm("x", spec);
  EXPECT_FALSE(fault.MaybeFail("x").ok());
  fault.DisarmAll();
  EXPECT_TRUE(fault.MaybeFail("x").ok());
}

TEST(FaultInjectorTest, ArmFromSpecParsesTheEnvSyntax) {
  FaultInjector fault;
  ASSERT_TRUE(fault
                  .ArmFromSpec("xml.parse:parse:1:2, pool.task:delay:1:-1:5")
                  .ok());
  EXPECT_EQ(fault.MaybeFail("xml.parse").code(), StatusCode::kParseError);
  EXPECT_EQ(fault.MaybeFail("xml.parse").code(), StatusCode::kParseError);
  EXPECT_TRUE(fault.MaybeFail("xml.parse").ok());  // max_fires=2 spent
  EXPECT_TRUE(fault.MaybeFail("pool.task").ok());  // delay-only
}

TEST(FaultInjectorTest, ArmFromSpecRejectsMalformedEntries) {
  FaultInjector fault;
  EXPECT_FALSE(fault.ArmFromSpec("justaname").ok());       // no code
  EXPECT_FALSE(fault.ArmFromSpec("p:nosuchcode").ok());    // unknown code
  EXPECT_FALSE(fault.ArmFromSpec(":parse").ok());          // empty name
  EXPECT_FALSE(fault.ArmFromSpec("p:parse:notanum").ok()); // bad probability
  EXPECT_FALSE(fault.ArmFromSpec("p:parse:1:x").ok());     // bad max_fires
}

// --- Pipeline chaos ------------------------------------------------------

constexpr const char* kDtdText = R"(
<!ELEMENT root (item*)>
<!ELEMENT item (keep?, drop?)>
<!ELEMENT keep (#PCDATA)>
<!ELEMENT drop (#PCDATA)>
)";

class PipelineChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = ParseDtd(kDtdText, "root");
    ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    dtd_ = std::make_unique<Dtd>(std::move(*dtd));
    projector_ = NameSet(dtd_->name_count());
    projector_.Add(dtd_->NameOfTag("root"));
    projector_.Add(dtd_->NameOfTag("item"));
    NameId keep = dtd_->NameOfTag("keep");
    projector_.Add(keep);
    projector_.Add(dtd_->StringNameOf(keep));
    for (int d = 0; d < 8; ++d) {
      std::string doc = "<root>";
      for (int i = 0; i <= d; ++i) {
        doc += "<item><keep>k" + std::to_string(i) + "</keep><drop>x</drop>"
               "</item>";
      }
      doc += "</root>";
      corpus_.push_back(std::move(doc));
    }
  }

  // Fault-free sequential reference for document i.
  std::string Reference(size_t i) const {
    PipelineOptions sequential;
    sequential.num_threads = 1;
    auto run = PruneCorpus(std::span(&corpus_[i], 1), *dtd_, projector_,
                           sequential);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run->results[0].output;
  }

  std::unique_ptr<Dtd> dtd_;
  NameSet projector_;
  std::vector<std::string> corpus_;
};

TEST_F(PipelineChaosTest, FailFastSurfacesInjectedParseError) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kParseError;
  spec.max_fires = 1;
  spec.message = "injected parse failure";
  fault.Arm("xml.parse", spec);

  PipelineOptions options;
  options.num_threads = 4;
  options.fault = &fault;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kParseError);
  EXPECT_NE(run.status().message().find("pipeline task"), std::string::npos);
  EXPECT_NE(run.status().message().find("injected parse failure"),
            std::string::npos);
}

TEST_F(PipelineChaosTest, IsolateQuarantinesTheFailingDocumentOnly) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kInvalid;  // e.g. a poisoned allocation path
  spec.max_fires = 1;
  fault.Arm("prune.element", spec);

  MetricsRegistry registry;
  PipelineOptions options;
  options.num_threads = 4;
  options.policy = ErrorPolicy::kIsolate;
  options.fault = &fault;
  options.metrics = &registry;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), 1u);
  const TaskFailure& failure = run->failures[0];
  EXPECT_EQ(failure.status.code(), StatusCode::kInvalid);
  EXPECT_EQ(failure.stage, "prune");
  EXPECT_TRUE(run->results[failure.task].output.empty());
  EXPECT_EQ(run->summary.failed, 1u);
  EXPECT_EQ(run->summary.tasks, corpus_.size() - 1);
  for (size_t i = 0; i < corpus_.size(); ++i) {
    if (i == failure.task) continue;
    EXPECT_EQ(run->results[i].output, Reference(i)) << "survivor " << i;
  }
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_isolated_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_errors_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_tasks_total")->Value(),
            corpus_.size());
}

TEST_F(PipelineChaosTest, IsolateSurvivorsMatchSequentialUnderHeavyFaults) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;  // injected allocation failure
  spec.probability = 0.4;
  fault.Arm("pipeline.task", spec);

  PipelineOptions options;
  options.num_threads = 4;
  options.policy = ErrorPolicy::kIsolate;
  options.fault = &fault;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::vector<bool> failed(corpus_.size(), false);
  for (const TaskFailure& f : run->failures) {
    EXPECT_EQ(f.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(f.stage, "budget");
    failed[f.task] = true;
  }
  EXPECT_EQ(run->summary.failed, run->failures.size());
  for (size_t i = 0; i < corpus_.size(); ++i) {
    if (failed[i]) {
      EXPECT_TRUE(run->results[i].output.empty());
    } else {
      EXPECT_EQ(run->results[i].output, Reference(i)) << "survivor " << i;
    }
  }
}

TEST_F(PipelineChaosTest, RetryRecoversFromTransientFaults) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.max_fires = 2;
  spec.message = "transient I/O fault";
  fault.Arm("pipeline.task", spec);

  MetricsRegistry registry;
  PipelineOptions options;
  options.num_threads = 4;
  options.policy = ErrorPolicy::kRetry;
  options.retry.max_attempts = 3;
  options.retry.backoff_ms = 1;
  options.fault = &fault;
  options.metrics = &registry;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->failures.empty());
  EXPECT_EQ(run->summary.tasks, corpus_.size());
  EXPECT_EQ(run->summary.retries, 2u);  // one extra attempt per fire
  for (size_t i = 0; i < corpus_.size(); ++i) {
    EXPECT_EQ(run->results[i].output, Reference(i)) << "document " << i;
  }
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_retries_total")->Value(),
            2u);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_errors_total")->Value(),
            0u);
}

TEST_F(PipelineChaosTest, RetryExhaustionQuarantinesWithAttemptCount) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;  // permanent "transient" fault
  fault.Arm("pipeline.task", spec);

  PipelineOptions options;
  options.num_threads = 2;
  options.policy = ErrorPolicy::kRetry;
  options.retry.max_attempts = 2;
  options.retry.backoff_ms = 0;
  options.fault = &fault;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), corpus_.size());
  for (const TaskFailure& f : run->failures) {
    EXPECT_EQ(f.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(f.stage, "io");
    EXPECT_EQ(f.attempts, 2);
  }
  EXPECT_EQ(run->summary.tasks, 0u);
  EXPECT_EQ(run->summary.failed, corpus_.size());
}

TEST_F(PipelineChaosTest, RetryDoesNotRetryNonTransientFaults) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kParseError;
  spec.max_fires = 1;
  fault.Arm("xml.parse", spec);

  PipelineOptions options;
  options.num_threads = 1;
  options.policy = ErrorPolicy::kRetry;
  options.retry.max_attempts = 5;
  options.fault = &fault;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), 1u);
  EXPECT_EQ(run->failures[0].task, 0u);  // sequential: first doc fails
  EXPECT_EQ(run->failures[0].attempts, 1);  // parse errors are permanent
  EXPECT_EQ(run->failures[0].stage, "parse");
  EXPECT_EQ(run->summary.retries, 0u);
}

TEST_F(PipelineChaosTest, DegradesToIdentityPassWhenDocumentOffGrammar) {
  // Well-formed but off-grammar: <rogue> is not declared in the DTD, so
  // type-based projection is inapplicable (kInvalid from the pruner).
  std::vector<std::string> corpus = corpus_;
  corpus[3] = "<root><item><rogue>data</rogue></item></root>";

  MetricsRegistry registry;
  PipelineOptions options;
  options.num_threads = 1;
  options.policy = ErrorPolicy::kIsolate;
  options.degrade_on_invalid = true;
  options.metrics = &registry;
  auto run = PruneCorpus(corpus, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->failures.empty());
  EXPECT_TRUE(run->results[3].degraded);
  // The degraded output is the *unprojected* document.
  std::string identity;
  {
    SerializingHandler sink(&identity);
    ASSERT_TRUE(ParseXmlStream(corpus[3], &sink).ok());
  }
  EXPECT_EQ(run->results[3].output, identity);
  EXPECT_EQ(run->results[3].stats.input_nodes,
            run->results[3].stats.kept_nodes);
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (i == 3) continue;
    EXPECT_FALSE(run->results[i].degraded);
    EXPECT_EQ(run->results[i].output, Reference(i));
  }
  EXPECT_EQ(run->summary.degraded, 1u);
  EXPECT_EQ(run->summary.tasks, corpus.size());
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_degraded_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_errors_total")->Value(),
            0u);
}

TEST_F(PipelineChaosTest, DegradationDoesNotMaskParseErrors) {
  // A truncated document fails the identity pass too: degradation must
  // not claim to answer it.
  std::vector<std::string> corpus = corpus_;
  corpus[2] = "<root><item><keep>chopped";

  PipelineOptions options;
  options.num_threads = 1;
  options.policy = ErrorPolicy::kIsolate;
  options.degrade_on_invalid = true;
  auto run = PruneCorpus(corpus, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), 1u);
  EXPECT_EQ(run->failures[0].task, 2u);
  EXPECT_EQ(run->failures[0].stage, "parse");
  EXPECT_EQ(run->summary.degraded, 0u);
}

TEST_F(PipelineChaosTest, DeadlineBlowoutSurfacesAsDeadlineExceeded) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kOk;  // delay-only: a wedged, not failing, task
  spec.delay_ms = 30;
  fault.Arm("prune.element", spec);

  MetricsRegistry registry;
  PipelineOptions options;
  options.num_threads = 1;
  options.policy = ErrorPolicy::kIsolate;
  options.budget.deadline_ms = 5;
  options.fault = &fault;
  options.metrics = &registry;
  std::vector<std::string> one = {corpus_.back()};
  auto run = PruneCorpus(one, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), 1u);
  EXPECT_EQ(run->failures[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(run->failures[0].stage, "deadline");
  EXPECT_EQ(
      registry.GetCounter("xmlproj_pipeline_deadline_exceeded_total")->Value(),
      1u);
}

TEST_F(PipelineChaosTest, SlowWorkersStillProduceCorrectOutput) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kOk;
  spec.delay_ms = 5;
  fault.Arm("pool.task", spec);  // every worker dispatch is slow

  PipelineOptions options;
  options.num_threads = 4;
  options.fault = &fault;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (size_t i = 0; i < corpus_.size(); ++i) {
    EXPECT_EQ(run->results[i].output, Reference(i)) << "document " << i;
  }
  EXPECT_GE(fault.FireCount("pool.task"), corpus_.size());
}

TEST_F(PipelineChaosTest, PoolLevelFaultsAreQuarantinedUnderIsolate) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.max_fires = 1;
  fault.Arm("pool.task", spec);  // task never runs; future carries the fault

  PipelineOptions options;
  options.num_threads = 4;
  options.policy = ErrorPolicy::kIsolate;
  options.fault = &fault;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), 1u);
  EXPECT_EQ(run->failures[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(run->failures[0].stage, "io");
  for (size_t i = 0; i < corpus_.size(); ++i) {
    if (i == run->failures[0].task) continue;
    EXPECT_EQ(run->results[i].output, Reference(i)) << "survivor " << i;
  }
}

// --- Circuit breaker in the pipeline ------------------------------------

TEST_F(PipelineChaosTest, OpenBreakerFastFailsAdmissionUnderIsolate) {
  CircuitBreaker breaker;
  breaker.Seed(0, 32);  // journal-style seed from a melting prior run
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);

  MetricsRegistry registry;
  PipelineOptions options;
  options.num_threads = 2;
  options.policy = ErrorPolicy::kIsolate;
  options.breaker = &breaker;
  options.metrics = &registry;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), corpus_.size());
  for (const TaskFailure& failure : run->failures) {
    EXPECT_EQ(failure.stage, "circuit");
    EXPECT_EQ(failure.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(run->results[failure.task].output.empty());
  }
  // Fast-failed tasks never executed: no completed-task accounting.
  EXPECT_EQ(run->summary.tasks, 0u);
  EXPECT_EQ(run->summary.failed, corpus_.size());
  EXPECT_EQ(breaker.denied(), corpus_.size());
  EXPECT_EQ(registry.GetCounter("xmlproj_pipeline_tasks_total")->Value(), 0u);
}

TEST_F(PipelineChaosTest, BreakerTripsMidRunAndQuarantinesTheRest) {
  FaultInjector fault;
  FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  fault.Arm("pipeline.task", spec);  // every executed task fails

  CircuitBreakerOptions breaker_options;
  breaker_options.window = 4;
  breaker_options.min_samples = 2;
  breaker_options.cooldown_ms = 60 * 1000;  // never recovers mid-test
  CircuitBreaker breaker(breaker_options);

  PipelineOptions options;
  options.num_threads = 1;  // deterministic admission order
  options.policy = ErrorPolicy::kIsolate;
  options.fault = &fault;
  options.breaker = &breaker;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->failures.size(), corpus_.size());
  // The first min_samples failures executed (stage "io" for
  // kUnavailable); once the ratio tripped, the rest fast-failed at
  // admission with stage "circuit".
  size_t executed = 0, fast_failed = 0;
  for (const TaskFailure& failure : run->failures) {
    if (failure.stage == "circuit") {
      ++fast_failed;
    } else {
      EXPECT_EQ(failure.stage, "io");
      ++executed;
    }
  }
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fast_failed, corpus_.size() - 2);
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.opened(), 1u);
}

TEST_F(PipelineChaosTest, BreakerIsIgnoredUnderFailFast) {
  // kFailFast already stops at the first failure — admission control
  // would only distort its semantics, so the pipeline drops the breaker.
  CircuitBreaker breaker;
  breaker.Seed(0, 32);
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);

  PipelineOptions options;
  options.num_threads = 2;
  options.breaker = &breaker;  // policy stays kFailFast
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (size_t i = 0; i < corpus_.size(); ++i) {
    EXPECT_EQ(run->results[i].output, Reference(i)) << "document " << i;
  }
  EXPECT_EQ(breaker.denied(), 0u);
}

TEST_F(PipelineChaosTest, HealthySuccessesFeedTheBreakerWindow) {
  CircuitBreakerOptions breaker_options;
  breaker_options.window = 4;
  breaker_options.min_samples = 2;
  CircuitBreaker breaker(breaker_options);

  PipelineOptions options;
  options.num_threads = 2;
  options.policy = ErrorPolicy::kIsolate;
  options.breaker = &breaker;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->failures.empty());
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // A healthy run must leave the breaker ready to trip on real signal,
  // not half-filled: the window saw every outcome.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

TEST_F(PipelineChaosTest, MeterMemoryPopulatesPeakWithoutABudget) {
  MetricsRegistry registry;
  PipelineOptions options;
  options.num_threads = 2;
  options.meter_memory = true;  // no caps — metering only
  options.metrics = &registry;
  auto run = PruneCorpus(corpus_, *dtd_, projector_, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->summary.max_task_peak_bytes, 0u);
  EXPECT_GT(registry.GetGauge("xmlproj_memory_peak_bytes")->Value(), 0);
  // Metering must not perturb output.
  for (size_t i = 0; i < corpus_.size(); ++i) {
    EXPECT_EQ(run->results[i].output, Reference(i)) << "document " << i;
  }
}

}  // namespace
}  // namespace xmlproj
