// Randomized XQuery soundness: templated FLWR queries with random tags
// over random grammars and documents must evaluate identically on the
// original and the pruned document (extraction E + projector inference +
// pruning, end to end).

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "dtd/validator.h"
#include "projection/pruner.h"
#include "random_xml.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xquery/path_extraction.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::RandomDtd;
using testing_random::kTags;
using testing_random::kWords;

std::string InstantiateTemplate(int which, const char* t1, const char* t2,
                                const char* t3, const char* word) {
  switch (which) {
    case 0:
      return StringPrintf("for $x in //%s return $x/%s", t1, t2);
    case 1:
      return StringPrintf(
          "for $x in //%s where $x/%s = '%s' return $x", t1, t2, word);
    case 2:
      return StringPrintf(
          "for $x in //%s return <r n=\"{count($x/%s)}\">{$x/%s}</r>", t1,
          t2, t3);
    case 3:
      return StringPrintf("let $k := //%s return count($k)", t1);
    case 4:
      return StringPrintf(
          "for $x in //%s return if ($x/%s) then $x/%s else <none/>", t1,
          t2, t3);
    case 5:
      return StringPrintf(
          "for $x in /%s/descendant-or-self::node() "
          "return if ($x/%s) then $x/%s else ()",
          kTags[0], t2, t2);
    case 6:
      return StringPrintf(
          "for $x in //%s for $y in //%s where $x/%s = $y/%s "
          "return <pair>{count($x/%s)}</pair>",
          t1, t2, t3, t3, t3);
    case 7:
      return StringPrintf(
          "count(//%s), sum(//%s), for $x in //%s order by $x/%s "
          "return $x/%s/text()",
          t1, t2, t1, t2, t2);
    default:
      return StringPrintf("/%s//%s", kTags[0], t1);
  }
}

class XQueryRandomSoundness : public ::testing::TestWithParam<int> {};

TEST_P(XQueryRandomSoundness, PrunedEvaluationMatches) {
  const uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  int tag_count = 0;
  Dtd dtd = RandomDtd(seed, &tag_count);
  DocGenerator doc_gen(dtd, seed * 131 + 1);
  Document doc = std::move(doc_gen.Generate()).value();
  if (doc.root() == kNullNode) GTEST_SKIP();
  Interpretation interp = std::move(Validate(doc, dtd)).value();

  Rng rng(seed * 977 + 3);
  for (int which = 0; which < 9; ++which) {
    const char* t1 = kTags[rng.Below(static_cast<uint64_t>(tag_count))];
    const char* t2 = kTags[rng.Below(static_cast<uint64_t>(tag_count))];
    const char* t3 = kTags[rng.Below(static_cast<uint64_t>(tag_count))];
    const char* word =
        kWords[rng.Below(sizeof(kWords) / sizeof(kWords[0]))];
    std::string text = InstantiateTemplate(which, t1, t2, t3, word);
    SCOPED_TRACE(text + "\nDTD:\n" + dtd.ToString());

    auto query = ParseXQuery(text);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto projector = InferProjectorForQuery(dtd, **query);
    ASSERT_TRUE(projector.ok()) << projector.status().ToString();
    auto pruned = PruneDocument(doc, interp, *projector);
    ASSERT_TRUE(pruned.ok());

    XQueryEvaluator eval_orig(doc);
    XQueryEvaluator eval_pruned(*pruned);
    auto res_orig = eval_orig.Evaluate(**query);
    ASSERT_TRUE(res_orig.ok()) << res_orig.status().ToString();
    auto res_pruned = eval_pruned.Evaluate(**query);
    ASSERT_TRUE(res_pruned.ok()) << res_pruned.status().ToString();
    EXPECT_EQ(eval_orig.Serialize(*res_orig),
              eval_pruned.Serialize(*res_pruned))
        << "doc: " << SerializeDocument(doc);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrammars, XQueryRandomSoundness,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace xmlproj
