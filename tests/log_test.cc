// Tests for the structured logger (obs/log.h): level parsing, line
// shape (reserved keys, string/number fields, JSON escaping of hostile
// bytes), min-level filtering, the per-second rate limiter with its
// error-level bypass, and open/close lifecycle.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/log.h"

namespace xmlproj {
namespace {

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/xmlproj_log_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/test.log";
  }

  void TearDown() override {
    std::remove(path_.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  std::string path_;
};

TEST(LogLevelTest, ParsesAllLevels) {
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

TEST_F(LogTest, WritesOneJsonObjectPerLine) {
  StructuredLogger logger;
  std::string error;
  ASSERT_TRUE(logger.Open(path_, &error)) << error;
  logger.Log(LogLevel::kInfo, "http.access",
             {{"method", "POST"},
              {"path", "/prune"},
              {"status", 200},
              {"bytes", uint64_t{1234}}});
  logger.Close();

  std::string text = ReadFileText(path_);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("\"ts_unix_ms\":"), std::string::npos);
  EXPECT_NE(text.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"http.access\""), std::string::npos);
  EXPECT_NE(text.find("\"method\":\"POST\""), std::string::npos);
  EXPECT_NE(text.find("\"status\":200"), std::string::npos);
  EXPECT_NE(text.find("\"bytes\":1234"), std::string::npos);
  // One line only.
  EXPECT_EQ(text.find('\n'), text.size() - 1);
}

TEST_F(LogTest, EscapesHostileBytes) {
  StructuredLogger logger;
  std::string error;
  ASSERT_TRUE(logger.Open(path_, &error)) << error;
  logger.Log(LogLevel::kInfo, "evil",
             {{"value", std::string("a\"b\\c\nd\x01" "e")}});
  logger.Close();

  std::string text = ReadFileText(path_);
  EXPECT_NE(text.find("a\\\"b\\\\c\\nd\\u0001e"), std::string::npos);
  // The raw newline must not have split the line.
  EXPECT_EQ(text.find('\n'), text.size() - 1);
}

TEST_F(LogTest, MinLevelFiltersAndEnabledIsCheap) {
  StructuredLogger logger;
  EXPECT_FALSE(logger.enabled(LogLevel::kError));  // not open yet
  StructuredLoggerOptions options;
  options.min_level = LogLevel::kWarn;
  std::string error;
  ASSERT_TRUE(logger.Open(path_, options, &error)) << error;
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));

  logger.Log(LogLevel::kDebug, "dropped.debug", {});
  logger.Log(LogLevel::kInfo, "dropped.info", {});
  logger.Log(LogLevel::kWarn, "kept.warn", {});
  logger.Close();
  EXPECT_FALSE(logger.enabled(LogLevel::kError));  // closed again

  std::string text = ReadFileText(path_);
  EXPECT_EQ(text.find("dropped."), std::string::npos);
  EXPECT_NE(text.find("kept.warn"), std::string::npos);
  EXPECT_EQ(logger.lines_written(), 1u);
}

TEST_F(LogTest, RateLimiterDropsButErrorsBypass) {
  StructuredLogger logger;
  StructuredLoggerOptions options;
  options.max_lines_per_second = 1;
  std::string error;
  ASSERT_TRUE(logger.Open(path_, options, &error)) << error;
  for (int i = 0; i < 50; ++i) logger.Log(LogLevel::kInfo, "flood", {});
  for (int i = 0; i < 5; ++i) logger.Log(LogLevel::kError, "boom", {});
  // 50 info lines in (at most a couple of) wall seconds against a
  // 1-line/s budget: nearly all drop. Errors always land.
  EXPECT_GE(logger.lines_dropped(), 40u);
  logger.Close();

  std::string text = ReadFileText(path_);
  size_t errors = 0;
  for (size_t at = text.find("\"event\":\"boom\""); at != std::string::npos;
       at = text.find("\"event\":\"boom\"", at + 1)) {
    ++errors;
  }
  EXPECT_EQ(errors, 5u);
}

TEST_F(LogTest, ZeroDisablesTheLimiter) {
  StructuredLogger logger;
  StructuredLoggerOptions options;
  options.max_lines_per_second = 0;
  std::string error;
  ASSERT_TRUE(logger.Open(path_, options, &error)) << error;
  for (int i = 0; i < 200; ++i) logger.Log(LogLevel::kInfo, "burst", {});
  EXPECT_EQ(logger.lines_dropped(), 0u);
  EXPECT_EQ(logger.lines_written(), 200u);
}

TEST_F(LogTest, OpenFailsOnUnwritablePath) {
  StructuredLogger logger;
  std::string error;
  EXPECT_FALSE(logger.Open(dir_ + "/no/such/dir/x.log", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(LogStderrTest, StderrDestinationSurvivesClose) {
  StructuredLogger logger;
  std::string error;
  ASSERT_TRUE(logger.Open("stderr", &error)) << error;
  logger.Close();
  // stderr must still be usable after Close (never fclosed).
  std::fflush(stderr);
  ASSERT_TRUE(logger.Open("stderr", &error)) << error;
  logger.Close();
}

}  // namespace
}  // namespace xmlproj
