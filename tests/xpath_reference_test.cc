// Differential testing of the XPath engine: an independently written,
// deliberately naive reference evaluator (recursive set semantics, no
// pre-order tricks, no proximity bookkeeping beyond what the restricted
// query subset needs) is compared against the production evaluator on
// random documents and queries.
//
// The restricted subset avoids features whose naive re-implementation
// would just duplicate the engine (position()/last() proximity order):
// all axes, all node tests, predicates limited to path existence,
// disjunction/conjunction of paths, and path = 'literal' comparisons.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "random_xml.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"

namespace xmlproj {
namespace {

using testing_random::DocGenerator;
using testing_random::RandomDtd;
using testing_random::kTags;
using testing_random::kWords;

// --- Naive reference evaluator -------------------------------------------

class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const Document& doc) : doc_(doc) {}

  std::set<NodeId> EvalPath(const LocationPath& path,
                            const std::set<NodeId>& context) const {
    std::set<NodeId> current =
        path.start == PathStart::kRoot
            ? std::set<NodeId>{doc_.document_node()}
            : context;
    for (const Step& step : path.steps) {
      std::set<NodeId> next;
      for (NodeId n : current) {
        for (NodeId candidate : AxisOf(n, step.axis)) {
          if (!Matches(candidate, step.test)) continue;
          bool keep = true;
          for (const ExprPtr& pred : step.predicates) {
            if (!Holds(*pred, candidate)) {
              keep = false;
              break;
            }
          }
          if (keep) next.insert(candidate);
        }
      }
      current = std::move(next);
    }
    return current;
  }

 private:
  std::vector<NodeId> Children(NodeId n) const {
    std::vector<NodeId> out;
    for (NodeId c = doc_.node(n).first_child; c != kNullNode;
         c = doc_.node(c).next_sibling) {
      out.push_back(c);
    }
    return out;
  }

  void Descendants(NodeId n, std::vector<NodeId>* out) const {
    for (NodeId c : Children(n)) {
      out->push_back(c);
      Descendants(c, out);
    }
  }

  bool IsAncestorOf(NodeId a, NodeId n) const {
    for (NodeId p = doc_.node(n).parent; p != kNullNode;
         p = doc_.node(p).parent) {
      if (p == a) return true;
    }
    return false;
  }

  std::vector<NodeId> AxisOf(NodeId n, Axis axis) const {
    std::vector<NodeId> out;
    switch (axis) {
      case Axis::kChild:
        return Children(n);
      case Axis::kDescendant:
        Descendants(n, &out);
        return out;
      case Axis::kDescendantOrSelf:
        out.push_back(n);
        Descendants(n, &out);
        return out;
      case Axis::kParent:
        if (doc_.node(n).parent != kNullNode) {
          out.push_back(doc_.node(n).parent);
        }
        return out;
      case Axis::kAncestor:
        for (NodeId p = doc_.node(n).parent; p != kNullNode;
             p = doc_.node(p).parent) {
          out.push_back(p);
        }
        return out;
      case Axis::kAncestorOrSelf:
        out.push_back(n);
        for (NodeId p = doc_.node(n).parent; p != kNullNode;
             p = doc_.node(p).parent) {
          out.push_back(p);
        }
        return out;
      case Axis::kSelf:
        return {n};
      case Axis::kFollowingSibling:
        for (NodeId s = doc_.node(n).next_sibling; s != kNullNode;
             s = doc_.node(s).next_sibling) {
          out.push_back(s);
        }
        return out;
      case Axis::kPrecedingSibling:
        for (NodeId s = doc_.node(n).prev_sibling; s != kNullNode;
             s = doc_.node(s).prev_sibling) {
          out.push_back(s);
        }
        return out;
      case Axis::kFollowing:
        // Definition-level: after n in document order, not a descendant.
        for (NodeId i = 1; i < doc_.size(); ++i) {
          if (i > n && !IsAncestorOf(n, i)) out.push_back(i);
        }
        return out;
      case Axis::kPreceding:
        for (NodeId i = 1; i < doc_.size(); ++i) {
          if (i < n && !IsAncestorOf(i, n)) out.push_back(i);
        }
        return out;
      case Axis::kAttribute:
        return {};  // the restricted subset has no attribute steps
    }
    return out;
  }

  bool Matches(NodeId n, const NodeTest& test) const {
    switch (test.kind) {
      case TestKind::kName:
        return doc_.kind(n) == NodeKind::kElement &&
               doc_.tag_name(n) == test.name;
      case TestKind::kAnyElement:
        return doc_.kind(n) == NodeKind::kElement;
      case TestKind::kNode:
        return true;
      case TestKind::kText:
        return doc_.kind(n) == NodeKind::kText;
    }
    return false;
  }

  bool Holds(const Expr& pred, NodeId n) const {
    switch (pred.kind) {
      case ExprKind::kPath:
        return !EvalPath(pred.path, {n}).empty();
      case ExprKind::kBinary:
        if (pred.op == BinaryOp::kOr) {
          return Holds(*pred.args[0], n) || Holds(*pred.args[1], n);
        }
        if (pred.op == BinaryOp::kAnd) {
          return Holds(*pred.args[0], n) && Holds(*pred.args[1], n);
        }
        if (pred.op == BinaryOp::kEq &&
            pred.args[0]->kind == ExprKind::kPath &&
            pred.args[1]->kind == ExprKind::kLiteral) {
          for (NodeId m : EvalPath(pred.args[0]->path, {n})) {
            if (doc_.StringValue(m) == pred.args[1]->literal) return true;
          }
          return false;
        }
        ADD_FAILURE() << "unexpected predicate operator in subset";
        return false;
      default:
        ADD_FAILURE() << "unexpected predicate kind in subset";
        return false;
    }
  }

  const Document& doc_;
};

// --- Restricted random queries -------------------------------------------

class SubsetQueryGenerator {
 public:
  SubsetQueryGenerator(int tag_count, uint64_t seed)
      : tag_count_(tag_count), rng_(seed) {}

  LocationPath Generate() {
    LocationPath path;
    path.start = PathStart::kRoot;
    int steps = rng_.IntIn(1, 4);
    for (int i = 0; i < steps; ++i) {
      path.steps.push_back(RandomStep(true));
    }
    return path;
  }

 private:
  Axis RandomAxis() {
    constexpr Axis kAxes[] = {
        Axis::kChild,           Axis::kChild,
        Axis::kChild,           Axis::kDescendant,
        Axis::kDescendantOrSelf, Axis::kParent,
        Axis::kAncestor,        Axis::kAncestorOrSelf,
        Axis::kSelf,            Axis::kFollowingSibling,
        Axis::kPrecedingSibling, Axis::kFollowing,
        Axis::kPreceding,
    };
    return kAxes[rng_.Below(sizeof(kAxes) / sizeof(kAxes[0]))];
  }

  NodeTest RandomTest() {
    NodeTest test;
    int k = rng_.IntIn(0, 9);
    if (k <= 4) {
      test.kind = TestKind::kName;
      test.name = kTags[rng_.Below(static_cast<uint64_t>(tag_count_))];
    } else if (k <= 6) {
      test.kind = TestKind::kNode;
    } else if (k <= 8) {
      test.kind = TestKind::kAnyElement;
    } else {
      test.kind = TestKind::kText;
    }
    return test;
  }

  Step RandomStep(bool allow_predicates) {
    Step step;
    step.axis = RandomAxis();
    step.test = RandomTest();
    if (allow_predicates && rng_.Chance(1, 3)) {
      step.predicates.push_back(RandomPredicate());
    }
    return step;
  }

  LocationPath RandomSubPath() {
    LocationPath p;
    p.start = PathStart::kContext;
    int steps = rng_.IntIn(1, 2);
    for (int i = 0; i < steps; ++i) {
      p.steps.push_back(RandomStep(false));
    }
    return p;
  }

  ExprPtr RandomPredicate() {
    switch (rng_.IntIn(0, 3)) {
      case 0:
      case 1:
        return MakePath(RandomSubPath());
      case 2:
        return MakeBinary(
            rng_.Chance(1, 2) ? BinaryOp::kOr : BinaryOp::kAnd,
            MakePath(RandomSubPath()), MakePath(RandomSubPath()));
      default:
        return MakeBinary(
            BinaryOp::kEq, MakePath(RandomSubPath()),
            MakeLiteral(kWords[rng_.Below(sizeof(kWords) /
                                          sizeof(kWords[0]))]));
    }
  }

  int tag_count_;
  Rng rng_;
};

class XPathReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(XPathReferenceTest, EngineMatchesNaiveSemantics) {
  const uint64_t seed = 5000 + static_cast<uint64_t>(GetParam());
  int tag_count = 0;
  Dtd dtd = RandomDtd(seed, &tag_count);
  DocGenerator doc_gen(dtd, seed * 31 + 5);
  Document doc = std::move(doc_gen.Generate()).value();
  if (doc.root() == kNullNode) GTEST_SKIP();

  XPathEvaluator engine(doc);
  ReferenceEvaluator reference(doc);
  SubsetQueryGenerator query_gen(tag_count, seed * 17 + 3);

  for (int q = 0; q < 25; ++q) {
    LocationPath query = query_gen.Generate();
    auto engine_result = engine.EvaluateFromRoot(query);
    ASSERT_TRUE(engine_result.ok())
        << ToString(query) << ": " << engine_result.status().ToString();
    std::vector<NodeId> engine_nodes;
    for (const XNode& n : *engine_result) {
      ASSERT_EQ(-1, n.attr);
      engine_nodes.push_back(n.node);
    }
    std::set<NodeId> reference_nodes = reference.EvalPath(query, {});
    std::vector<NodeId> reference_sorted(reference_nodes.begin(),
                                         reference_nodes.end());
    EXPECT_EQ(reference_sorted, engine_nodes)
        << "query: " << ToString(query)
        << "\ndoc: " << SerializeDocument(doc);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDocuments, XPathReferenceTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace xmlproj
